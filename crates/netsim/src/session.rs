//! Session-oriented transport: the layered fetch engine.
//!
//! [`crate::Network::fetch`] models every visit as a fully cold start: each
//! request re-resolves DNS, re-establishes TCP, and re-matches the entire
//! middlebox chain. Real browsers do none of that — they keep per-origin
//! connections alive, cache resolutions in-process, and sit behind a fixed
//! on-path censor set for the lifetime of a browsing session. At Encore's
//! target scale (millions of incidental visits) the cold-start model is
//! also the simulator's hot path.
//!
//! A [`FetchSession`] is the session-layer answer. It belongs to one client
//! and owns three pieces of amortised state:
//!
//! * a **compiled middlebox pipeline** — the subset of the network's
//!   middleboxes whose [`applies_to`](crate::middlebox::Middlebox::applies_to) matches this client,
//!   matched once per session (and re-validated only when the network's
//!   middlebox set changes) instead of once per request per stage;
//! * a **DNS host cache** — the browser/OS-level resolver cache, honouring
//!   record TTLs, sitting in front of the shared per-country resolver
//!   cache in [`crate::dns::DnsSystem`];
//! * a **keep-alive connection pool** — per-destination established
//!   connections with an idle timeout, so repeat fetches to an origin skip
//!   the TCP stage entirely.
//!
//! The cold path through [`FetchSession::fetch`] is *exactly* the §3.1
//! pipeline of the legacy entry point — same stages, same middlebox
//! consultation order, same RNG draw sequence — so `Network::fetch` is now
//! a thin wrapper that runs a single-shot session. Warm-path semantics
//! are deliberately different, and deliberately faithful to real stacks:
//! a cached resolution skips the transient-DNS-failure draw (no query is
//! sent), and a kept-alive connection skips SYN-stage censorship (an
//! established flow sees no new handshake — DNS- and TCP-stage censors are
//! only observable on cold state, exactly the cache-interference effect
//! the paper discusses for DNS).

use crate::dns::{DnsOutcome, NameId};
use crate::fault::FaultDecision;
use crate::host::Host;
use crate::http::{HttpRequest, HttpResponse};
use crate::middlebox::{DnsAction, HttpAction, StageContext, TcpAction};
use crate::network::{FetchError, FetchOutcome, FetchTimings, Network};
use crate::path::PathQuality;
use crate::tcp::{TcpAttempt, CONNECT_TIMEOUT, DNS_TIMEOUT, HTTP_TIMEOUT};
use crate::topology::TransitDecision;
use sim_core::{SimDuration, SimRng, SimTime, TraceLevel};
use std::net::Ipv4Addr;

/// Tuning knobs for a session's amortised state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// How long an idle kept-alive connection survives before the next
    /// fetch must re-establish it. Zero disables connection reuse.
    pub keep_alive: SimDuration,
    /// Whether the session keeps a client-local DNS cache.
    pub dns_cache: bool,
    /// In-process DNS cache lookup cost (a hash probe, not a network
    /// round trip).
    pub dns_cache_hit_cost: SimDuration,
    /// Cap on simultaneously pooled keep-alive connections (browsers
    /// bound their connection pools). Inserting a new destination into a
    /// full pool evicts the connection closest to idle expiry (ties
    /// break on the lower address). `usize::MAX` — the default —
    /// disables the cap.
    pub max_connections: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            // Browsers keep idle HTTP/1.1 connections for roughly a
            // minute; Apache-era servers often closed them sooner. 60 s
            // is the conventional middle ground.
            keep_alive: SimDuration::from_secs(60),
            dns_cache: true,
            dns_cache_hit_cost: SimDuration::from_micros(100),
            max_connections: usize::MAX,
        }
    }
}

impl SessionConfig {
    /// A configuration with all amortisation disabled: every fetch is a
    /// cold start, byte-for-byte equivalent to the legacy pipeline.
    pub fn cold() -> SessionConfig {
        SessionConfig {
            keep_alive: SimDuration::ZERO,
            dns_cache: false,
            dns_cache_hit_cost: SimDuration::ZERO,
            max_connections: usize::MAX,
        }
    }
}

/// Counters describing how much work the session amortised away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Total fetches issued through this session.
    pub fetches: u64,
    /// Fetches whose name resolution was served from the session cache.
    pub dns_cache_hits: u64,
    /// Fetches that reused a kept-alive connection.
    pub connections_reused: u64,
    /// Times the middlebox pipeline was (re)compiled.
    pub pipeline_rebuilds: u64,
}

/// A memoised DNS-stage verdict for one host: the action plus the exact
/// trace line the interfering middlebox emitted (None for `Pass`), so a
/// dispatch-table hit replays the same trace bytes the pattern walk
/// would have produced.
#[derive(Debug, Clone)]
struct DnsVerdictEntry {
    action: DnsAction,
    trace_line: Option<Box<str>>,
}

/// A client's transport session: compiled censor pipeline, DNS host cache,
/// and keep-alive connection pool. See the module docs for semantics.
pub struct FetchSession {
    client: Host,
    config: SessionConfig,
    /// Indices into the network's middlebox list that apply to this
    /// client, in network order. Valid while `pipeline_generation`
    /// matches the network's.
    pipeline: Vec<usize>,
    pipeline_generation: u64,
    /// Whether every middlebox in `pipeline` declares a pure DNS verdict
    /// ([`crate::middlebox::Middlebox::dns_verdict_is_pure`]) — the
    /// precondition for `dns_verdicts` memoisation.
    pipeline_dns_pure: bool,
    /// Network behaviour generation `dns_verdicts` was filled under.
    behavior_generation: u64,
    /// Pre-resolved first-non-`Pass` DNS verdict per [`NameId`] — the
    /// flat per-host dispatch table replacing the per-fetch pattern walk
    /// for pure pipelines. Rebuilt lazily after set/behaviour bumps.
    dns_verdicts: Vec<Option<DnsVerdictEntry>>,
    /// `NameId`-indexed (address, expires-at): the client-local resolver
    /// cache. A warm hit is a single vector index — no hash, no alloc.
    dns_cache: Vec<Option<(Ipv4Addr, SimTime)>>,
    /// (destination, idle-expiry) of established connections. Pools are
    /// small (bounded by `max_connections` / distinct origins), so a
    /// linear scan over a flat vector beats a tree.
    connections: Vec<(Ipv4Addr, SimTime)>,
    /// (destination, path quality) — static per client/destination pair
    /// for a given topology generation.
    quality_cache: Vec<(Ipv4Addr, PathQuality)>,
    /// Topology generation `quality_cache` was filled under (0 = the
    /// flat model / no topology). Regeneration reroutes, so hop-derived
    /// RTTs go stale and the cache must clear.
    topology_generation: u64,
    /// Resolver RTT, a pure function of the client's (fixed) country —
    /// computed on first use so the per-fetch country-record clone the
    /// legacy path paid is gone.
    resolver_rtt: Option<SimDuration>,
    stats: SessionStats,
}

impl FetchSession {
    /// Open a session for `client` with default amortisation.
    pub fn new(client: Host) -> FetchSession {
        FetchSession::with_config(client, SessionConfig::default())
    }

    /// Open a session with explicit configuration.
    pub fn with_config(client: Host, config: SessionConfig) -> FetchSession {
        FetchSession {
            client,
            config,
            pipeline: Vec::new(),
            // Network generations start at 1, so a fresh session always
            // compiles its pipeline on first use.
            pipeline_generation: 0,
            pipeline_dns_pure: true,
            behavior_generation: 0,
            dns_verdicts: Vec::new(),
            dns_cache: Vec::new(),
            connections: Vec::new(),
            quality_cache: Vec::new(),
            topology_generation: 0,
            resolver_rtt: None,
            stats: SessionStats::default(),
        }
    }

    /// The client this session belongs to.
    pub fn client(&self) -> &Host {
        &self.client
    }

    /// Amortisation counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Drop all cached session state (the "new browsing session" reset:
    /// cold DNS, cold connections; the pipeline stays, it only depends on
    /// the network's middlebox set).
    pub fn reset(&mut self) {
        self.dns_cache.clear();
        self.connections.clear();
    }

    /// Whether a live client-local DNS entry for `id` exists at `now`.
    fn dns_cached(&self, id: NameId, now: SimTime) -> Option<Ipv4Addr> {
        match self.dns_cache.get(id.index()) {
            Some(&Some((ip, expires))) if now < expires => Some(ip),
            _ => None,
        }
    }

    /// Cache a resolution for `id` (growing the id-indexed table as the
    /// interner does).
    fn dns_cache_insert(&mut self, id: NameId, ip: Ipv4Addr, expires: SimTime) {
        let idx = id.index();
        if self.dns_cache.len() <= idx {
            self.dns_cache.resize(idx + 1, None);
        }
        self.dns_cache[idx] = Some((ip, expires));
    }

    /// Drop expired session state: DNS entries past their TTL and
    /// kept-alive connections past their idle expiry.
    ///
    /// Behaviour-neutral by construction — the fetch path never serves an
    /// expired entry (both lookups check expiry before use), so pruning
    /// only releases memory. The world engine calls this from its
    /// maintenance-tick events so month-long continuous runs keep pooled
    /// clients' session maps bounded.
    pub fn prune_expired(&mut self, now: SimTime) {
        for slot in &mut self.dns_cache {
            if matches!(slot, Some((_, expires)) if now >= *expires) {
                *slot = None;
            }
        }
        self.connections.retain(|&(_, expiry)| now < expiry);
    }

    /// Pool an established connection, honouring the configured pool
    /// capacity: refreshing an already pooled destination never evicts,
    /// a new destination entering a full pool evicts the connection
    /// closest to its idle expiry (the one worth least; ties break on
    /// the lower address, keeping eviction deterministic), and a
    /// zero-capacity pool simply never retains anything.
    fn pool_connection(&mut self, dst: Ipv4Addr, expiry: SimTime) {
        if self.config.max_connections == 0 {
            return;
        }
        if let Some(slot) = self.connections.iter_mut().find(|(ip, _)| *ip == dst) {
            slot.1 = expiry;
            return;
        }
        if self.connections.len() >= self.config.max_connections {
            let victim = self
                .connections
                .iter()
                .enumerate()
                .min_by_key(|&(_, &(ip, exp))| (exp, ip))
                .map(|(i, _)| i)
                .expect("full pool is non-empty");
            self.connections.swap_remove(victim);
        }
        self.connections.push((dst, expiry));
    }

    /// Number of currently pooled keep-alive connections (live or not
    /// yet pruned).
    pub fn pooled_connections(&self) -> usize {
        self.connections.len()
    }

    /// Whether a kept-alive connection to `dst` is live at `now`.
    pub fn has_connection(&self, dst: Ipv4Addr, now: SimTime) -> bool {
        self.connections
            .iter()
            .any(|&(ip, expiry)| ip == dst && now < expiry)
    }

    /// Re-match the middlebox chain if the network's set changed since we
    /// last compiled (or if this session has never compiled it), and drop
    /// memoised verdicts when middlebox *behaviour* changed (control
    /// signals bump a separate generation — coverage is unchanged, so the
    /// pipeline itself stays valid).
    fn refresh_pipeline(&mut self, net: &Network) {
        if self.behavior_generation != net.behavior_generation() {
            self.behavior_generation = net.behavior_generation();
            self.dns_verdicts.clear();
        }
        if self.topology_generation != net.topology_generation() {
            // A regenerated topology reroutes: hop-derived RTTs in the
            // quality cache are stale. Data-plane only — the pipeline
            // and DNS verdicts are untouched.
            self.topology_generation = net.topology_generation();
            self.quality_cache.clear();
        }
        if self.pipeline_generation == net.middlebox_generation() {
            return;
        }
        self.pipeline.clear();
        self.dns_verdicts.clear();
        let mut pure = true;
        for (i, mb) in net.middleboxes().iter().enumerate() {
            if mb.applies_to(&self.client) {
                pure &= mb.dns_verdict_is_pure();
                self.pipeline.push(i);
            }
        }
        self.pipeline_dns_pure = pure;
        self.pipeline_generation = net.middlebox_generation();
        self.stats.pipeline_rebuilds += 1;
    }

    /// Path quality to `server_ip`, computed once per destination. Quality
    /// is a pure function of (client, destination country), so caching it
    /// never changes outcomes — only skips recomputation.
    fn quality_to(&mut self, net: &Network, server_ip: Ipv4Addr) -> PathQuality {
        if let Some(&(_, q)) = self.quality_cache.iter().find(|(ip, _)| *ip == server_ip) {
            return q;
        }
        let q = net.quality_between(&self.client, server_ip);
        self.quality_cache.push((server_ip, q));
        q
    }

    /// Perform one HTTP fetch through this session at time `now`.
    ///
    /// This is the full §3.1 pipeline (DNS → TCP → HTTP) with the
    /// session's amortisation applied. The five failure timings of the
    /// legacy path are preserved:
    ///
    /// * forged NXDOMAIN — fast (1 local RTT);
    /// * dropped DNS — slow ([`DNS_TIMEOUT`]);
    /// * RST — fast (1 RTT);
    /// * dropped SYN / unroutable sinkhole — slow ([`CONNECT_TIMEOUT`]);
    /// * dropped HTTP — slow ([`HTTP_TIMEOUT`]).
    pub fn fetch(
        &mut self,
        net: &mut Network,
        req: &HttpRequest,
        now: SimTime,
        rng: &mut SimRng,
    ) -> FetchOutcome {
        self.stats.fetches += 1;
        let mut timings = FetchTimings::default();

        let Some(host_name) = req.host() else {
            return FetchOutcome::fail(FetchError::BadUrl, timings, None);
        };

        // Global fault injection (smoltcp-style device wrapper).
        let mut corrupt_body = false;
        match net.fault.decide(now, rng) {
            FaultDecision::Pass => {}
            FaultDecision::Drop => {
                timings.connect = CONNECT_TIMEOUT;
                net.trace
                    .record(now, TraceLevel::Debug, "fault", "fetch dropped by injector");
                return FetchOutcome::fail(FetchError::ConnectTimeout, timings, None);
            }
            FaultDecision::Corrupt => corrupt_body = true,
            FaultDecision::Delay(d) => timings.dns += d,
        }

        self.refresh_pipeline(net);

        // ---------------- Stage 1: DNS ----------------
        let server_ip = match self.dns_stage(net, &host_name, now, rng, &mut timings) {
            Ok(ip) => ip,
            Err(outcome) => return outcome,
        };

        let quality = self.quality_to(net, server_ip);

        // -------------- Transit links (topology) --------------
        // Cross the routed AS path's hotspot links. Without a topology —
        // or with every link on the route under threshold — this is a
        // no-op that consumes no RNG draws, preserving flat-model worlds
        // byte-for-byte.
        match net.transit_decision(&self.client, server_ip, now, rng) {
            TransitDecision::Pass => {}
            TransitDecision::Delay(d) => timings.connect += d,
            TransitDecision::Shed => {
                // Near-source congestion signal: the overloaded transit
                // link sheds the flow and the failure propagates back
                // fast — one RTT, like a reset, not a timeout. The shed
                // flow's connection (if pooled) is gone.
                timings.connect += net.path_model.sample_rtt(&quality, rng);
                self.connections.retain(|&(ip, _)| ip != server_ip);
                return FetchOutcome::fail(FetchError::Congested, timings, Some(server_ip));
            }
        }

        // ---------------- Stage 2: TCP ----------------
        let reused =
            self.has_connection(server_ip, now) && self.config.keep_alive > SimDuration::ZERO;
        if reused {
            self.stats.connections_reused += 1;
            // An established flow: no handshake, no SYN-stage censorship,
            // no connect latency. (The connection must once have passed
            // the full TCP stage to exist.)
        } else if let Err(outcome) =
            self.tcp_stage(net, server_ip, &quality, now, rng, &mut timings)
        {
            return outcome;
        }

        // ---------------- Stage 3: HTTP ----------------
        let outcome = self.http_stage(
            net,
            req,
            server_ip,
            &quality,
            corrupt_body,
            now,
            rng,
            timings,
        );

        // Keep-alive bookkeeping: a completed exchange leaves the
        // connection pooled; a reset or timeout kills it.
        if self.config.keep_alive > SimDuration::ZERO {
            let alive = match &outcome.result {
                Ok(_) => true,
                Err(FetchError::CorruptResponse) => true,
                Err(_) => false,
            };
            if alive {
                let idle_from = now + outcome.timings.total();
                self.pool_connection(server_ip, idle_from + self.config.keep_alive);
            } else {
                self.connections.retain(|&(ip, _)| ip != server_ip);
            }
        }
        outcome
    }

    /// Name resolution with the session cache in front of the shared
    /// per-country resolver. Returns the destination address or a
    /// terminal outcome.
    #[allow(clippy::result_large_err)] // Err is the terminal FetchOutcome, consumed immediately
    fn dns_stage(
        &mut self,
        net: &mut Network,
        host_name: &str,
        now: SimTime,
        rng: &mut SimRng,
        timings: &mut FetchTimings,
    ) -> Result<Ipv4Addr, FetchOutcome> {
        let resolver_rtt = match self.resolver_rtt {
            Some(rtt) => rtt,
            None => {
                let rtt =
                    SimDuration::from_millis_f64(net.access_latency_ms(self.client.country) * 0.6);
                self.resolver_rtt = Some(rtt);
                rtt
            }
        };

        // Censors inspect every query the client *would* send. The session
        // cache sits behind the censor for the first resolution (the query
        // that populates it necessarily crossed the censor), and a session
        // hit skips the wire entirely — so the middlebox is consulted
        // before the cache exactly as a forwarding resolver would be, and
        // cache hits never consult it at all.
        let host_id = net.dns.intern(host_name);
        if self.config.dns_cache {
            if let Some(ip) = self.dns_cached(host_id, now) {
                self.stats.dns_cache_hits += 1;
                timings.dns += self.config.dns_cache_hit_cost;
                return Ok(ip);
            }
        }

        let censor_dns = self.dns_verdict(net, host_name, host_id, now);

        match censor_dns {
            DnsAction::NxDomain => {
                timings.dns += resolver_rtt;
                Err(FetchOutcome::fail(FetchError::DnsNxDomain, *timings, None))
            }
            DnsAction::Drop => {
                timings.dns += DNS_TIMEOUT;
                Err(FetchOutcome::fail(FetchError::DnsTimeout, *timings, None))
            }
            DnsAction::Redirect(ip) => {
                timings.dns += resolver_rtt;
                // A forged answer is an answer: browsers cache it, which
                // is how poisoned resolutions persist for a session.
                if self.config.dns_cache {
                    self.dns_cache_insert(host_id, ip, now + crate::dns::DEFAULT_TTL);
                }
                Ok(ip)
            }
            DnsAction::Poison { ip, ttl } => {
                timings.dns += resolver_rtt;
                // Same as a redirect, except the censor dictates how long
                // the lie is cached — a lying TTL makes the poisoning
                // outlive (or undershoot) the block itself.
                if self.config.dns_cache {
                    self.dns_cache_insert(host_id, ip, now + ttl);
                }
                Ok(ip)
            }
            DnsAction::Pass => {
                // Transient DNS failure (client-side unreliability).
                let q_local = self.quality_to(net, self.client.ip);
                if net.path_model.stage_fails(&q_local, rng) {
                    timings.dns += DNS_TIMEOUT;
                    net.trace
                        .record(now, TraceLevel::Debug, "dns", "transient dns failure");
                    return Err(FetchOutcome::fail(FetchError::DnsTimeout, *timings, None));
                }
                let (outcome, cached) = net.dns.resolve_id(self.client.country, host_id, now);
                timings.dns += if cached {
                    SimDuration::from_millis(1)
                } else {
                    resolver_rtt
                };
                match outcome {
                    DnsOutcome::Resolved(a) => {
                        if self.config.dns_cache {
                            self.dns_cache_insert(host_id, a.ip, now + a.ttl);
                        }
                        Ok(a.ip)
                    }
                    DnsOutcome::NxDomain => {
                        Err(FetchOutcome::fail(FetchError::DnsNxDomain, *timings, None))
                    }
                    DnsOutcome::Timeout => {
                        timings.dns += DNS_TIMEOUT;
                        Err(FetchOutcome::fail(FetchError::DnsTimeout, *timings, None))
                    }
                }
            }
        }
    }

    /// First-non-`Pass` DNS verdict of the compiled pipeline for
    /// `host_name`, via the per-host dispatch table when the pipeline is
    /// pure. Memoisation requires Info-level tracing to be off — the
    /// legacy walk records an interference event per consultation, and a
    /// served memo must not silently swallow those.
    fn dns_verdict(
        &mut self,
        net: &mut Network,
        host_name: &str,
        host_id: NameId,
        now: SimTime,
    ) -> DnsAction {
        let memoise = self.pipeline_dns_pure;
        if memoise {
            if let Some(Some(entry)) = self.dns_verdicts.get(host_id.index()) {
                // Replay the memoised interference line (if any) so the
                // trace is byte-identical to re-running the walk: for a
                // pure pipeline the line depends only on (middlebox,
                // host, verdict), and the timestamp is a separate event
                // field.
                if let Some(line) = &entry.trace_line {
                    net.trace.record_str(now, TraceLevel::Info, "censor", line);
                }
                return entry.action;
            }
        }
        let ctx = StageContext {
            client: &self.client,
            now,
        };
        let mut verdict = DnsAction::Pass;
        let mut trace_line = None;
        for &i in &self.pipeline {
            let mb = &net.middleboxes()[i];
            match mb.on_dns(host_name, &ctx) {
                DnsAction::Pass => continue,
                act => {
                    let line =
                        format!("{} interferes with DNS for {host_name}: {act:?}", mb.name());
                    net.trace.record_str(now, TraceLevel::Info, "censor", &line);
                    trace_line = Some(line.into_boxed_str());
                    verdict = act;
                    break;
                }
            }
        }
        if memoise {
            let idx = host_id.index();
            if self.dns_verdicts.len() <= idx {
                self.dns_verdicts.resize(idx + 1, None);
            }
            self.dns_verdicts[idx] = Some(DnsVerdictEntry {
                action: verdict,
                trace_line,
            });
        }
        verdict
    }

    /// Connection establishment. `Ok(())` leaves an established
    /// connection; the pool entry is written by the caller once the HTTP
    /// exchange settles.
    #[allow(clippy::result_large_err)] // Err is the terminal FetchOutcome, consumed immediately
    fn tcp_stage(
        &mut self,
        net: &mut Network,
        server_ip: Ipv4Addr,
        quality: &PathQuality,
        now: SimTime,
        rng: &mut SimRng,
        timings: &mut FetchTimings,
    ) -> Result<(), FetchOutcome> {
        let ctx = StageContext {
            client: &self.client,
            now,
        };
        let attempt = TcpAttempt::http(server_ip);

        let mut censor_tcp = TcpAction::Pass;
        for &i in &self.pipeline {
            let mb = &net.middleboxes()[i];
            match mb.on_tcp(&attempt, &ctx) {
                TcpAction::Pass => continue,
                act => {
                    net.trace.record(
                        now,
                        TraceLevel::Info,
                        "censor",
                        format!("{} interferes with TCP to {server_ip}: {act:?}", mb.name()),
                    );
                    censor_tcp = act;
                    break;
                }
            }
        }

        match censor_tcp {
            TcpAction::Reset => {
                timings.connect += net.path_model.sample_rtt(quality, rng);
                return Err(FetchOutcome::fail(
                    FetchError::ConnectionReset,
                    *timings,
                    Some(server_ip),
                ));
            }
            TcpAction::Drop => {
                timings.connect += CONNECT_TIMEOUT;
                return Err(FetchOutcome::fail(
                    FetchError::ConnectTimeout,
                    *timings,
                    Some(server_ip),
                ));
            }
            TcpAction::Pass => {}
        }

        // Unroutable / no server listening (e.g. a DNS redirect to a
        // sinkhole): connect times out.
        if !net.has_server(server_ip) {
            timings.connect += CONNECT_TIMEOUT;
            net.trace.record(
                now,
                TraceLevel::Debug,
                "tcp",
                format!("no server at {server_ip}; connect timeout"),
            );
            return Err(FetchOutcome::fail(
                FetchError::ConnectTimeout,
                *timings,
                Some(server_ip),
            ));
        }

        if net.path_model.stage_fails(quality, rng) {
            timings.connect += CONNECT_TIMEOUT;
            net.trace
                .record(now, TraceLevel::Debug, "tcp", "transient connect failure");
            return Err(FetchOutcome::fail(
                FetchError::ConnectTimeout,
                *timings,
                Some(server_ip),
            ));
        }
        timings.connect += net.path_model.sample_rtt(quality, rng);
        Ok(())
    }

    /// The HTTP exchange over an established connection.
    #[allow(clippy::too_many_arguments)]
    fn http_stage(
        &mut self,
        net: &mut Network,
        req: &HttpRequest,
        server_ip: Ipv4Addr,
        quality: &PathQuality,
        corrupt_body: bool,
        now: SimTime,
        rng: &mut SimRng,
        mut timings: FetchTimings,
    ) -> FetchOutcome {
        let ctx = StageContext {
            client: &self.client,
            now,
        };

        let mut censor_req = HttpAction::Pass;
        for &i in &self.pipeline {
            let mb = &net.middleboxes()[i];
            match mb.on_http_request(req, &ctx) {
                HttpAction::Pass => continue,
                act => {
                    net.trace.record(
                        now,
                        TraceLevel::Info,
                        "censor",
                        format!(
                            "{} interferes with HTTP request {}: {act:?}",
                            mb.name(),
                            req.url
                        ),
                    );
                    censor_req = act;
                    break;
                }
            }
        }

        let rtt = net.path_model.sample_rtt(quality, rng);
        match censor_req {
            HttpAction::Drop => {
                timings.ttfb += HTTP_TIMEOUT;
                return FetchOutcome::fail(FetchError::ResponseTimeout, timings, Some(server_ip));
            }
            HttpAction::Reset => {
                timings.ttfb += rtt;
                return FetchOutcome::fail(FetchError::ConnectionReset, timings, Some(server_ip));
            }
            HttpAction::BlockPage => {
                timings.ttfb += rtt;
                let resp = HttpResponse::block_page();
                timings.transfer += net.path_model.transfer_time(quality, resp.body_bytes);
                return FetchOutcome {
                    result: Ok(resp),
                    timings,
                    server_ip: Some(server_ip),
                };
            }
            HttpAction::RedirectTo(loc) => {
                timings.ttfb += rtt;
                return FetchOutcome {
                    result: Ok(HttpResponse::redirect(loc)),
                    timings,
                    server_ip: Some(server_ip),
                };
            }
            HttpAction::Pass => {}
        }

        // The real server answers.
        if net.path_model.stage_fails(quality, rng) {
            timings.ttfb += HTTP_TIMEOUT;
            net.trace
                .record(now, TraceLevel::Debug, "http", "transient response failure");
            return FetchOutcome::fail(FetchError::ResponseTimeout, timings, Some(server_ip));
        }
        let mut resp = net.handle_request(server_ip, req, self.client.ip, now);
        timings.ttfb += rtt;

        // Response-side censorship (keyword filters inspect content here).
        let mut censor_resp = HttpAction::Pass;
        for &i in &self.pipeline {
            let mb = &net.middleboxes()[i];
            match mb.on_http_response(req, &resp, &ctx) {
                HttpAction::Pass => continue,
                act => {
                    net.trace.record(
                        now,
                        TraceLevel::Info,
                        "censor",
                        format!(
                            "{} interferes with HTTP response for {}: {act:?}",
                            mb.name(),
                            req.url
                        ),
                    );
                    censor_resp = act;
                    break;
                }
            }
        }
        match censor_resp {
            HttpAction::Drop => {
                timings.ttfb += HTTP_TIMEOUT;
                return FetchOutcome::fail(FetchError::ResponseTimeout, timings, Some(server_ip));
            }
            HttpAction::Reset => {
                return FetchOutcome::fail(FetchError::ConnectionReset, timings, Some(server_ip));
            }
            HttpAction::BlockPage => {
                resp = HttpResponse::block_page();
            }
            HttpAction::RedirectTo(loc) => {
                resp = HttpResponse::redirect(loc);
            }
            HttpAction::Pass => {}
        }

        timings.transfer += net.path_model.transfer_time(quality, resp.body_bytes);

        if corrupt_body {
            net.trace.record(
                now,
                TraceLevel::Debug,
                "fault",
                "response corrupted by injector",
            );
            return FetchOutcome::fail(FetchError::CorruptResponse, timings, Some(server_ip));
        }

        // The one per-success record: guard it, the format alone is
        // measurable at session throughput.
        if net.trace.enabled(TraceLevel::Trace) {
            net.trace.record(
                now,
                TraceLevel::Trace,
                "http",
                format!(
                    "{} {} -> {} ({} bytes)",
                    req.method, req.url, resp.status, resp.body_bytes
                ),
            );
        }
        FetchOutcome {
            result: Ok(resp),
            timings,
            server_ip: Some(server_ip),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::{country, IspClass, World};
    use crate::http::ContentType;
    use crate::middlebox::Middlebox;
    use crate::network::ConstHandler;

    fn network() -> Network {
        let mut n = Network::ideal(World::builtin());
        n.add_server(
            "origin.example",
            country("US"),
            Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
        );
        n
    }

    fn session(n: &mut Network) -> FetchSession {
        let client = n.add_client(country("DE"), IspClass::Residential);
        FetchSession::new(client)
    }

    #[test]
    fn cold_session_matches_legacy_fetch_exactly() {
        let req = HttpRequest::get("http://origin.example/favicon.ico");

        // Legacy one-shot path.
        let mut n1 = network();
        let c1 = n1.add_client(country("DE"), IspClass::Residential);
        let mut rng1 = SimRng::new(42);
        let legacy = n1.fetch(&c1, &req, SimTime::ZERO, &mut rng1);

        // Explicit cold session.
        let mut n2 = network();
        let c2 = n2.add_client(country("DE"), IspClass::Residential);
        let mut s = FetchSession::with_config(c2, SessionConfig::cold());
        let mut rng2 = SimRng::new(42);
        let via_session = s.fetch(&mut n2, &req, SimTime::ZERO, &mut rng2);

        assert_eq!(legacy, via_session);
        // And the RNG streams stayed in lockstep.
        assert_eq!(rng1.next_u64(), rng2.next_u64());
    }

    #[test]
    fn prune_expired_is_behaviour_neutral() {
        let req = HttpRequest::get("http://origin.example/favicon.ico");
        let run = |prune: bool| {
            let mut n = network();
            let mut s = session(&mut n);
            let mut rng = SimRng::new(11);
            let first = s.fetch(&mut n, &req, SimTime::ZERO, &mut rng);
            // Well past both the DNS TTL and the keep-alive window.
            let later = SimTime::from_secs(7_200);
            if prune {
                s.prune_expired(later);
                assert!(!s.has_connection(first.server_ip.unwrap(), later));
            }
            let second = s.fetch(&mut n, &req, later, &mut rng);
            (first, second, rng.next_u64())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn prune_expired_keeps_live_state() {
        let mut n = network();
        let mut s = session(&mut n);
        let mut rng = SimRng::new(12);
        let req = HttpRequest::get("http://origin.example/favicon.ico");
        let out = s.fetch(&mut n, &req, SimTime::ZERO, &mut rng);
        let soon = SimTime::from_secs(10);
        s.prune_expired(soon);
        assert!(s.has_connection(out.server_ip.unwrap(), soon));
        // The live DNS entry still serves a cache hit.
        let before = s.stats().dns_cache_hits;
        s.fetch(&mut n, &req, soon, &mut rng);
        assert_eq!(s.stats().dns_cache_hits, before + 1);
    }

    #[test]
    fn warm_fetch_skips_dns_and_connect() {
        let mut n = network();
        let mut s = session(&mut n);
        let mut rng = SimRng::new(7);
        let req = HttpRequest::get("http://origin.example/favicon.ico");

        let cold = s.fetch(&mut n, &req, SimTime::ZERO, &mut rng);
        let warm = s.fetch(&mut n, &req, SimTime::from_secs(1), &mut rng);

        assert!(cold.result.is_ok());
        assert!(warm.result.is_ok());
        assert!(warm.timings.dns < cold.timings.dns, "dns amortised");
        assert_eq!(warm.timings.connect, SimDuration::ZERO, "keep-alive");
        assert!(
            warm.timings.total() * 2 < cold.timings.total(),
            "warm {} vs cold {}",
            warm.timings.total(),
            cold.timings.total()
        );
        let stats = s.stats();
        assert_eq!(stats.fetches, 2);
        assert_eq!(stats.dns_cache_hits, 1);
        assert_eq!(stats.connections_reused, 1);
    }

    #[test]
    fn keep_alive_expires_after_idle_timeout() {
        let mut n = network();
        let mut s = session(&mut n);
        let mut rng = SimRng::new(7);
        let req = HttpRequest::get("http://origin.example/i.png");

        s.fetch(&mut n, &req, SimTime::ZERO, &mut rng);
        // Well past the keep-alive window: the connection is gone, but the
        // DNS record (5-minute TTL) is still cached.
        let later = SimTime::from_secs(200);
        let out = s.fetch(&mut n, &req, later, &mut rng);
        assert!(out.result.is_ok());
        assert!(out.timings.connect > SimDuration::ZERO, "re-established");
        assert_eq!(s.stats().connections_reused, 0);
        assert_eq!(s.stats().dns_cache_hits, 1);
    }

    #[test]
    fn dns_cache_respects_ttl() {
        let mut n = network();
        n.dns.register_with_ttl(
            "short.example",
            std::net::Ipv4Addr::new(100, 99, 1, 1),
            SimDuration::from_secs(10),
        );
        let mut s = session(&mut n);
        let mut rng = SimRng::new(3);
        let req = HttpRequest::get("http://short.example/x");
        s.fetch(&mut n, &req, SimTime::ZERO, &mut rng);
        s.fetch(&mut n, &req, SimTime::from_secs(60), &mut rng);
        assert_eq!(s.stats().dns_cache_hits, 0, "expired record not served");
    }

    struct FlipDnsBlocker;
    impl Middlebox for FlipDnsBlocker {
        fn name(&self) -> &str {
            "flip"
        }
        fn applies_to(&self, client: &Host) -> bool {
            client.country == country("DE")
        }
        fn on_dns(&self, _n: &str, _ctx: &StageContext<'_>) -> DnsAction {
            DnsAction::NxDomain
        }
    }

    #[test]
    fn pipeline_recompiles_when_middleboxes_change() {
        let mut n = network();
        let mut s = session(&mut n);
        let mut rng = SimRng::new(11);
        let req = HttpRequest::get("http://origin.example/a.png");

        let before = s.fetch(&mut n, &req, SimTime::ZERO, &mut rng);
        assert!(before.result.is_ok());

        // A censor appears mid-session. The next *cold-DNS* fetch must see
        // it; this fetch is warm, so it sails through on cached state —
        // exactly the cache-interference effect of paper §3.1.
        n.add_middlebox(Box::new(FlipDnsBlocker));
        let warm = s.fetch(&mut n, &req, SimTime::from_secs(1), &mut rng);
        assert!(warm.result.is_ok(), "cached state bypasses the new censor");

        // After the session's caches go cold, the censor bites.
        s.reset();
        let cold = s.fetch(&mut n, &req, SimTime::from_secs(2), &mut rng);
        assert_eq!(cold.result, Err(FetchError::DnsNxDomain));
        assert_eq!(s.stats().pipeline_rebuilds, 2);
    }

    #[test]
    fn reset_connection_is_evicted_from_pool() {
        struct ResetEveryResponse;
        impl Middlebox for ResetEveryResponse {
            fn name(&self) -> &str {
                "rst-resp"
            }
            fn applies_to(&self, _c: &Host) -> bool {
                true
            }
            fn on_http_response(
                &self,
                _req: &HttpRequest,
                _resp: &HttpResponse,
                _ctx: &StageContext<'_>,
            ) -> HttpAction {
                HttpAction::Reset
            }
        }
        let mut n = network();
        n.add_middlebox(Box::new(ResetEveryResponse));
        let mut s = session(&mut n);
        let mut rng = SimRng::new(13);
        let req = HttpRequest::get("http://origin.example/x.png");
        let first = s.fetch(&mut n, &req, SimTime::ZERO, &mut rng);
        assert_eq!(first.result, Err(FetchError::ConnectionReset));
        // The torn-down connection must not be reused.
        let second = s.fetch(&mut n, &req, SimTime::from_secs(1), &mut rng);
        assert!(second.timings.connect > SimDuration::ZERO);
        assert_eq!(s.stats().connections_reused, 0);
    }

    #[test]
    fn dns_entry_expiring_exactly_at_ttl_boundary_is_not_served() {
        let mut n = network();
        n.dns.register_with_ttl(
            "short.example",
            std::net::Ipv4Addr::new(100, 99, 1, 1),
            SimDuration::from_secs(10),
        );
        let mut s = session(&mut n);
        let mut rng = SimRng::new(21);
        let req = HttpRequest::get("http://short.example/x");

        s.fetch(&mut n, &req, SimTime::ZERO, &mut rng);
        // One instant before the boundary the record still serves…
        s.fetch(
            &mut n,
            &req,
            SimTime::from_secs(10) - SimDuration::from_micros(1),
            &mut rng,
        );
        assert_eq!(s.stats().dns_cache_hits, 1, "pre-boundary hit");
        // …but *exactly at* its TTL boundary it must not: expiry is
        // exclusive (`now < expires`), matching prune_expired.
        s.fetch(&mut n, &req, SimTime::from_secs(10), &mut rng);
        assert_eq!(
            s.stats().dns_cache_hits,
            1,
            "an entry expiring exactly now must not be served"
        );
        // prune_expired agrees with the serve path at the same boundary:
        // the re-resolution at t=10 re-cached until t=20; pruning at
        // exactly t=20 drops it, so the next fetch resolves again.
        s.prune_expired(SimTime::from_secs(20));
        s.fetch(&mut n, &req, SimTime::from_secs(20), &mut rng);
        assert_eq!(s.stats().dns_cache_hits, 1, "pruned at the boundary");
    }

    #[test]
    fn keep_alive_pool_evicts_nearest_expiry_at_capacity() {
        let mut n = network();
        for d in ["b.example", "c.example"] {
            n.add_server(
                d,
                country("US"),
                Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
            );
        }
        let client = n.add_client(country("DE"), IspClass::Residential);
        let mut s = FetchSession::with_config(
            client,
            SessionConfig {
                max_connections: 2,
                ..SessionConfig::default()
            },
        );
        let mut rng = SimRng::new(31);
        let a = s
            .fetch(
                &mut n,
                &HttpRequest::get("http://origin.example/x"),
                SimTime::ZERO,
                &mut rng,
            )
            .server_ip
            .unwrap();
        let b = s
            .fetch(
                &mut n,
                &HttpRequest::get("http://b.example/x"),
                SimTime::from_secs(1),
                &mut rng,
            )
            .server_ip
            .unwrap();
        assert_eq!(s.pooled_connections(), 2);

        // Refreshing an already pooled destination never evicts…
        s.fetch(
            &mut n,
            &HttpRequest::get("http://origin.example/y"),
            SimTime::from_secs(2),
            &mut rng,
        );
        assert_eq!(s.pooled_connections(), 2);
        assert_eq!(s.stats().connections_reused, 1);

        // …but a third destination entering the full pool evicts the
        // connection closest to idle expiry — b, since a's expiry was
        // just refreshed.
        let c = s
            .fetch(
                &mut n,
                &HttpRequest::get("http://c.example/x"),
                SimTime::from_secs(3),
                &mut rng,
            )
            .server_ip
            .unwrap();
        let now = SimTime::from_secs(4);
        assert_eq!(s.pooled_connections(), 2);
        assert!(s.has_connection(a, now), "refreshed survivor evicted");
        assert!(s.has_connection(c, now), "newcomer not pooled");
        assert!(!s.has_connection(b, now), "nearest-expiry victim kept");

        // The evicted destination re-establishes from scratch.
        let back = s.fetch(
            &mut n,
            &HttpRequest::get("http://b.example/x"),
            now,
            &mut rng,
        );
        assert!(back.timings.connect > SimDuration::ZERO);

        // A zero-capacity pool never retains connections at all.
        let client = n.add_client(country("DE"), IspClass::Residential);
        let mut none = FetchSession::with_config(
            client,
            SessionConfig {
                max_connections: 0,
                ..SessionConfig::default()
            },
        );
        none.fetch(
            &mut n,
            &HttpRequest::get("http://origin.example/x"),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(none.pooled_connections(), 0);
    }

    #[test]
    fn pipeline_recompiles_on_remove_middlebox_generation_bump() {
        let mut n = network();
        n.add_middlebox(Box::new(FlipDnsBlocker));
        let gen_with_censor = n.middlebox_generation();
        let mut s = session(&mut n);
        let mut rng = SimRng::new(41);
        let req = HttpRequest::get("http://origin.example/a.png");

        // First fetch compiles the pipeline against the censored set.
        let blocked = s.fetch(&mut n, &req, SimTime::ZERO, &mut rng);
        assert_eq!(blocked.result, Err(FetchError::DnsNxDomain));
        assert_eq!(s.stats().pipeline_rebuilds, 1);

        // Removal bumps the generation counter…
        assert!(n.remove_middlebox("flip"));
        assert!(n.middlebox_generation() > gen_with_censor);
        // …so the next fetch recompiles (second rebuild) and the stale
        // censor index is never consulted against the shrunken set.
        let open = s.fetch(&mut n, &req, SimTime::from_secs(1), &mut rng);
        assert!(open.result.is_ok(), "censor gone, fetch must succeed");
        assert_eq!(s.stats().pipeline_rebuilds, 2);

        // Removing an unknown name bumps nothing and triggers no rebuild.
        assert!(!n.remove_middlebox("never-installed"));
        s.fetch(&mut n, &req, SimTime::from_secs(2), &mut rng);
        assert_eq!(s.stats().pipeline_rebuilds, 2);
    }

    #[test]
    fn sessions_are_deterministic() {
        let run = || {
            let mut n = Network::new(World::builtin());
            n.add_server(
                "origin.example",
                country("BR"),
                Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 1_234))),
            );
            let client = n.add_client(country("JP"), IspClass::Mobile);
            let mut s = FetchSession::new(client);
            let mut rng = SimRng::new(99);
            let mut total = SimDuration::ZERO;
            for i in 0..10 {
                let out = s.fetch(
                    &mut n,
                    &HttpRequest::get("http://origin.example/i.png"),
                    SimTime::from_secs(i),
                    &mut rng,
                );
                total += out.timings.total();
            }
            total.as_micros()
        };
        assert_eq!(run(), run());
    }
}
