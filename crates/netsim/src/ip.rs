//! Deterministic IPv4 address allocation.
//!
//! Each country receives disjoint /16 blocks; every allocated host address
//! is unique. The mapping is deterministic, which gives the `encore::geo`
//! GeoIP database (the stand-in for MaxMind, paper §7) ground truth to be
//! derived from — including the ability to inject a configurable error
//! rate to model real-world geolocation imprecision.

use crate::geo::CountryCode;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// An IPv4 network in CIDR form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Net {
    /// Network address (host bits zero).
    pub base: Ipv4Addr,
    /// Prefix length (0–32).
    pub prefix: u8,
}

impl Ipv4Net {
    /// Construct, masking the base to the prefix.
    pub fn new(base: Ipv4Addr, prefix: u8) -> Ipv4Net {
        assert!(prefix <= 32, "prefix must be at most 32");
        let mask = Self::mask(prefix);
        Ipv4Net {
            base: Ipv4Addr::from(u32::from(base) & mask),
            prefix,
        }
    }

    fn mask(prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - prefix)
        }
    }

    /// Whether `ip` falls inside this network.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & Self::mask(self.prefix)) == u32::from(self.base)
    }

    /// Number of addresses in the network.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix)
    }

    /// The `n`-th address in the network (0-based). Returns `None` past the
    /// end.
    pub fn nth(&self, n: u64) -> Option<Ipv4Addr> {
        if n >= self.size() {
            return None;
        }
        Some(Ipv4Addr::from(u32::from(self.base) + n as u32))
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.prefix)
    }
}

/// Deterministic allocator: one or more /16 blocks per country, plus a
/// reserved block for infrastructure (servers, block pages).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IpAllocator {
    /// Country → (block, next host index).
    blocks: BTreeMap<CountryCode, Vec<(Ipv4Net, u64)>>,
    /// Next /16 to hand out, as the second octet pair of 10.x/100.x space.
    next_block: u32,
    /// Step between handed-out block indices. 0 (the serial default) is
    /// treated as 1; a sharded allocator uses the shard count, so sibling
    /// shards draw from interleaved, disjoint /16 sequences.
    block_stride: u32,
    /// Ground truth: allocated ranges per country, for GeoIP derivation.
    assignments: Vec<(Ipv4Net, CountryCode)>,
}

impl IpAllocator {
    /// Create an empty allocator.
    pub fn new() -> IpAllocator {
        IpAllocator::default()
    }

    /// An allocator for shard `index` of `count`: it hands out only the
    /// /16 block indices congruent to `index` modulo `count`, so the
    /// address space of every shard in a parallel run is disjoint from
    /// every sibling's. Shard 0 of 1 is exactly the serial allocator —
    /// the lockstep property the determinism harness relies on.
    pub fn sharded(index: u32, count: u32) -> IpAllocator {
        assert!(count >= 1, "shard count must be at least 1");
        assert!(index < count, "shard index {index} out of range 0..{count}");
        IpAllocator {
            next_block: index,
            block_stride: count,
            ..IpAllocator::default()
        }
    }

    /// Allocate a fresh host address in `country`'s space.
    pub fn allocate(&mut self, country: CountryCode) -> Ipv4Addr {
        loop {
            let blocks = self.blocks.entry(country).or_default();
            if let Some((net, next)) = blocks.last_mut() {
                // Skip network (.0.0) and the first address so hosts start
                // at .0.2, and never run past the block.
                if *next < net.size() - 1 {
                    let ip = net.nth(*next).expect("index in range");
                    *next += 1;
                    return ip;
                }
            }
            // Need a new /16 for this country.
            let idx = self.next_block;
            self.next_block += self.block_stride.max(1);
            // Carve from 100.64.0.0/10-style space upward: 100.(64+hi).(x).y
            // — we just spread across 100.0.0.0/8 and 101.0.0.0/8 etc. to
            // stay clearly outside special-purpose ranges used elsewhere.
            let hi = 100 + (idx / 256) as u8;
            let lo = (idx % 256) as u8;
            let net = Ipv4Net::new(Ipv4Addr::new(hi, lo, 0, 0), 16);
            self.assignments.push((net, country));
            self.blocks.entry(country).or_default().push((net, 2));
        }
    }

    /// Ground-truth country of an address, if it was allocated by us.
    pub fn country_of(&self, ip: Ipv4Addr) -> Option<CountryCode> {
        self.assignments
            .iter()
            .find(|(net, _)| net.contains(ip))
            .map(|&(_, c)| c)
    }

    /// All `(network, country)` assignments made so far, in allocation
    /// order (deterministic).
    pub fn assignments(&self) -> &[(Ipv4Net, CountryCode)] {
        &self.assignments
    }

    /// Total number of /16 blocks handed out.
    pub fn block_count(&self) -> usize {
        self.assignments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::country;

    #[test]
    fn net_masks_base() {
        let n = Ipv4Net::new(Ipv4Addr::new(10, 1, 2, 3), 16);
        assert_eq!(n.base, Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(n.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn net_contains() {
        let n = Ipv4Net::new(Ipv4Addr::new(10, 1, 0, 0), 16);
        assert!(n.contains(Ipv4Addr::new(10, 1, 255, 255)));
        assert!(!n.contains(Ipv4Addr::new(10, 2, 0, 0)));
    }

    #[test]
    fn net_nth_bounds() {
        let n = Ipv4Net::new(Ipv4Addr::new(10, 0, 0, 0), 30);
        assert_eq!(n.size(), 4);
        assert_eq!(n.nth(0), Some(Ipv4Addr::new(10, 0, 0, 0)));
        assert_eq!(n.nth(3), Some(Ipv4Addr::new(10, 0, 0, 3)));
        assert_eq!(n.nth(4), None);
    }

    #[test]
    fn zero_prefix_contains_everything() {
        let n = Ipv4Net::new(Ipv4Addr::new(1, 2, 3, 4), 0);
        assert!(n.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert_eq!(n.size(), 1 << 32);
    }

    #[test]
    fn allocation_is_unique_and_geolocatable() {
        let mut a = IpAllocator::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            let ip = a.allocate(country("PK"));
            assert!(seen.insert(ip), "duplicate {ip}");
            assert_eq!(a.country_of(ip), Some(country("PK")));
        }
        for _ in 0..1_000 {
            let ip = a.allocate(country("CN"));
            assert!(seen.insert(ip), "duplicate {ip}");
            assert_eq!(a.country_of(ip), Some(country("CN")));
        }
    }

    #[test]
    fn countries_get_disjoint_blocks() {
        let mut a = IpAllocator::new();
        a.allocate(country("US"));
        a.allocate(country("CN"));
        let nets: Vec<_> = a.assignments().iter().map(|&(n, _)| n).collect();
        assert_eq!(nets.len(), 2);
        assert!(!nets[0].contains(nets[1].base));
        assert!(!nets[1].contains(nets[0].base));
    }

    #[test]
    fn allocator_grows_new_blocks_when_exhausted() {
        let mut a = IpAllocator::new();
        // Exhaust most of a /16: allocate 70,000 > 65,534 hosts.
        for _ in 0..70_000 {
            a.allocate(country("IN"));
        }
        assert!(a.block_count() >= 2);
    }

    #[test]
    fn unknown_ip_has_no_country() {
        let a = IpAllocator::new();
        assert_eq!(a.country_of(Ipv4Addr::new(8, 8, 8, 8)), None);
    }

    #[test]
    fn sharded_allocators_are_disjoint() {
        let shards = 4u32;
        let mut all = std::collections::BTreeSet::new();
        for i in 0..shards {
            let mut a = IpAllocator::sharded(i, shards);
            for cc in ["US", "CN", "PK"] {
                for _ in 0..50 {
                    let ip = a.allocate(country(cc));
                    assert!(all.insert(ip), "shard {i} reused {ip}");
                    assert_eq!(a.country_of(ip), Some(country(cc)));
                }
            }
        }
    }

    #[test]
    fn shard_zero_of_one_matches_serial_allocator() {
        let mut serial = IpAllocator::new();
        let mut sharded = IpAllocator::sharded(0, 1);
        for cc in ["DE", "BR", "DE"] {
            for _ in 0..10 {
                assert_eq!(serial.allocate(country(cc)), sharded.allocate(country(cc)));
            }
        }
        assert_eq!(serial.assignments(), sharded.assignments());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sharded_rejects_index_past_count() {
        let _ = IpAllocator::sharded(3, 3);
    }

    #[test]
    fn allocation_is_deterministic() {
        let run = || {
            let mut a = IpAllocator::new();
            (0..10)
                .map(|_| a.allocate(country("BR")))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
