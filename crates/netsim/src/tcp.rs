//! TCP connection attempts.
//!
//! Encore never needs full byte-stream semantics: what matters is whether
//! a connection to a (possibly filtered) server establishes, is reset, or
//! times out — and how long each outcome takes, since the browser surfaces
//! failure timing through `onerror`. A censor that injects RSTs produces a
//! *fast* failure; one that silently drops SYNs produces a *slow* timeout.
//! This asymmetry is observable in Encore's timing data.

use serde::{Deserialize, Serialize};
use sim_core::SimDuration;
use std::net::Ipv4Addr;

/// A connection attempt from a client to `dst:port`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpAttempt {
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Destination port (80 for everything in this simulation).
    pub port: u16,
}

impl TcpAttempt {
    /// Attempt to port 80.
    pub fn http(dst: Ipv4Addr) -> TcpAttempt {
        TcpAttempt { dst, port: 80 }
    }
}

/// Outcome of a TCP connection attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TcpOutcome {
    /// Handshake completed.
    Established,
    /// Connection reset (RST received — fast failure).
    Reset,
    /// Packets silently dropped — failure after the connect timeout.
    Timeout,
}

/// Default browser/OS connect timeout. Real stacks retry SYNs with
/// exponential backoff for ~20–120 s; browsers typically give up around
/// 20 s, which is what we model (and what makes dropped-SYN censorship so
/// much slower to observe than RST injection).
pub const CONNECT_TIMEOUT: SimDuration = SimDuration::from_secs(20);

/// Default time a client waits for a DNS answer before giving up.
pub const DNS_TIMEOUT: SimDuration = SimDuration::from_secs(5);

/// Default time a client waits for an HTTP response on an established
/// connection.
pub const HTTP_TIMEOUT: SimDuration = SimDuration::from_secs(30);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_helper_sets_port_80() {
        let a = TcpAttempt::http(Ipv4Addr::new(100, 0, 0, 1));
        assert_eq!(a.port, 80);
    }

    #[test]
    fn timeouts_are_ordered_sensibly() {
        // DNS gives up quickest, then connect, then response read.
        assert!(DNS_TIMEOUT < CONNECT_TIMEOUT);
        assert!(CONNECT_TIMEOUT < HTTP_TIMEOUT);
    }
}
