//! Scale-free AS/ISP topology with congested transit links.
//!
//! The flat path model (`crate::path`) treats every client→server pair as
//! one abstract path: access + backbone + server latency. That is enough
//! for censorship signatures, but it cannot express Encore's hardest
//! confound — *congestion*: a page failing to load through an overloaded
//! transit AS looks exactly like a censored one, and the paper's
//! cross-origin inference must not flag it.
//!
//! This module adds the missing substrate:
//!
//! * a **seeded scale-free AS graph** grown by preferential attachment
//!   with a configurable degree exponent (the Barabási–Albert process
//!   with a tunable attachment offset), connected by construction;
//! * **deterministic shortest-path routing**: BFS from every AS with
//!   lowest-AS-id tie-breaking, precomputed into per-AS-pair route
//!   tables (hop count + the hotspot links each route crosses) keyed to
//!   a **topology generation counter**, so the session layer's
//!   warm-path/zero-alloc contract survives — a route lookup is a table
//!   index, and regenerating the graph bumps the generation so every
//!   memo (network quality memo, session quality cache) revalidates;
//! * **betweenness hotspots**: the links crossed by the most routes
//!   become finite-capacity transit bottlenecks ("Communication
//!   Bottlenecks in Scale-Free Networks": load concentrates on the few
//!   high-betweenness links);
//! * **per-link load state with near-source signaling**: each hotspot
//!   link tracks carried load per epoch plus a background (brownout)
//!   level; past a utilisation threshold it first *delays* and then
//!   *sheds* fetches. A shed fetch fails fast — the congested link
//!   signals back along the path near the source instead of silently
//!   timing out (the SFC idea), which is what gives congestion a
//!   distinguishable failure shape
//!   ([`crate::network::FetchError::Congested`]).
//!
//! Everything is data-plane: marking hotspots, changing background load,
//! and shedding never touch the middlebox set or DNS, so compiled
//! session pipelines stay valid (no generation bump) — only
//! [`AsTopology::regenerate`] (a genuinely new graph) bumps the
//! generation.

use crate::geo::CountryCode;
use serde::{Deserialize, Serialize};
use sim_core::{splitmix_mix, SimDuration, SimRng, SimTime};

/// Hard cap on any shed probability: even a fully saturated link must
/// let a trickle through, so measurement cells on congested paths keep
/// enough samples for the detector's minimum-n guard to stay decisive.
pub const SHED_MAX: f64 = 0.85;

/// Extra one-way latency per AS hop beyond the first, in milliseconds —
/// routed paths through more transit ASes are slower, on top of the flat
/// model's access/backbone terms.
pub const HOP_MS: f64 = 2.0;

/// Maximum queueing delay a single congested (but not shedding) hotspot
/// link adds to a fetch, in milliseconds.
pub const MAX_QUEUE_MS: f64 = 400.0;

/// Length of one carried-load accounting epoch. Sixty seconds matches
/// the keep-alive idle window: load is "simultaneous enough" to contend
/// when it lands within one epoch.
pub const LOAD_EPOCH: SimDuration = SimDuration::from_secs(60);

/// Configuration of a generated topology — plain data, so scenarios can
/// carry it across shard threads and serialize it into artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Seed of the generated graph (independent of the world seed: the
    /// same topology can host many worlds).
    pub seed: u64,
    /// Number of autonomous systems.
    pub ases: usize,
    /// Links each new AS attaches with (the Barabási–Albert `m`).
    pub links_per_as: usize,
    /// Target degree-distribution exponent γ. The attachment kernel is
    /// `degree + a` with `a = m·(γ − 3)`: `γ = 3` is pure preferential
    /// attachment; smaller γ (heavier tail) weights high-degree ASes
    /// harder.
    pub degree_exponent: f64,
    /// How many of the highest-betweenness links become finite-capacity
    /// transit hotspots.
    pub hotspots: usize,
    /// Fetches one hotspot link carries per [`LOAD_EPOCH`] at nominal
    /// capacity (before background load).
    pub hotspot_capacity: u32,
    /// Utilisation above which a hotspot link starts delaying and
    /// shedding.
    pub shed_threshold: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            seed: 1,
            ases: 64,
            links_per_as: 2,
            degree_exponent: 2.5,
            hotspots: 4,
            hotspot_capacity: 600,
            shed_threshold: 0.7,
        }
    }
}

impl TopologyConfig {
    /// The default topology under a specific graph seed.
    pub fn with_seed(seed: u64) -> TopologyConfig {
        TopologyConfig {
            seed,
            ..TopologyConfig::default()
        }
    }
}

/// One inter-AS link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Lower endpoint AS id.
    pub a: u32,
    /// Higher endpoint AS id.
    pub b: u32,
    /// How many shortest-path routes cross this link (the betweenness
    /// approximation hotspot selection ranks by).
    pub route_crossings: u32,
    /// Whether this link is a finite-capacity transit hotspot.
    pub hotspot: bool,
    /// Fetches per [`LOAD_EPOCH`] at nominal capacity (meaningful only
    /// for hotspots).
    pub capacity: u32,
}

/// One precomputed route: everything the per-fetch hot path needs,
/// flattened so a lookup is two slice reads and no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// AS hops (0 when source and destination share an AS).
    pub hops: u32,
    /// Range into [`AsTopology::route_hotspots`] listing the hotspot
    /// links this route crosses.
    hotspot_start: u32,
    hotspot_len: u32,
}

/// What a routed fetch experiences crossing its transit links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitDecision {
    /// All links under threshold: no effect.
    Pass,
    /// Congested but not shed: queueing delay added to connect time.
    Delay(SimDuration),
    /// Shed at a hotspot link with a near-source congestion signal: the
    /// fetch fails fast as [`crate::network::FetchError::Congested`].
    Shed,
}

/// A generated AS topology with routing tables and per-link load state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsTopology {
    config: TopologyConfig,
    /// Bumped by [`AsTopology::regenerate`]; starts at 1 so sessions
    /// (which start at 0) always validate their caches on first use.
    generation: u64,
    /// Per-AS degree.
    degrees: Vec<u32>,
    links: Vec<Link>,
    /// Per-AS-pair route table, indexed `src * ases + dst`.
    routes: Vec<RouteEntry>,
    /// Flattened hotspot-link indices all routes share (see
    /// [`RouteEntry`]).
    route_hotspots: Vec<u32>,
    /// Per-AS-pair link paths, kept so hotspot flags can be re-marked
    /// (e.g. [`AsTopology::ensure_hotspot_between`]) without rerunning
    /// BFS.
    pair_links: Vec<Vec<u32>>,
    /// Per-link background utilisation (the brownout control knob —
    /// data-plane only, never bumps the generation).
    background: Vec<f64>,
    /// Per-link fetches carried in the current epoch.
    carried: Vec<u32>,
    /// Epoch `carried` counts belong to.
    carried_epoch: u64,
}

impl AsTopology {
    /// Grow the graph, compute routes and betweenness, and mark the
    /// top-`hotspots` links as transit bottlenecks.
    pub fn generate(config: TopologyConfig) -> AsTopology {
        let mut topo = AsTopology {
            config,
            generation: 1,
            degrees: Vec::new(),
            links: Vec::new(),
            routes: Vec::new(),
            route_hotspots: Vec::new(),
            pair_links: Vec::new(),
            background: Vec::new(),
            carried: Vec::new(),
            carried_epoch: 0,
        };
        topo.build();
        topo
    }

    /// Replace the graph with one grown from `seed` and bump the
    /// generation counter — every route table, the network quality memo,
    /// and session caches keyed to the old generation revalidate on
    /// next use.
    pub fn regenerate(&mut self, seed: u64) {
        self.config.seed = seed;
        self.generation += 1;
        self.build();
    }

    fn build(&mut self) {
        let cfg = self.config;
        let n = cfg.ases.max(2);
        let m = cfg.links_per_as.clamp(1, n - 1);
        let mut rng = SimRng::new(cfg.seed ^ 0xA5_70_70_10);
        // Attachment offset a = m·(γ − 3): γ = 3 reduces to pure
        // preferential attachment (weight = degree).
        let offset = m as f64 * (cfg.degree_exponent - 3.0);

        self.degrees = vec![0u32; n];
        self.links.clear();
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
        let add_link = |links: &mut Vec<Link>,
                        degrees: &mut Vec<u32>,
                        adjacency: &mut Vec<Vec<u32>>,
                        a: usize,
                        b: usize| {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            links.push(Link {
                a: lo as u32,
                b: hi as u32,
                route_crossings: 0,
                hotspot: false,
                capacity: cfg.hotspot_capacity,
            });
            degrees[lo] += 1;
            degrees[hi] += 1;
            adjacency[lo].push(hi as u32);
            adjacency[hi].push(lo as u32);
        };

        // Seed clique over the first m+1 ASes, then preferential
        // attachment for the rest.
        for a in 0..=m {
            for b in (a + 1)..=m {
                add_link(&mut self.links, &mut self.degrees, &mut adjacency, a, b);
            }
        }
        let mut weights: Vec<f64> = Vec::with_capacity(n);
        for new in (m + 1)..n {
            weights.clear();
            weights.extend(
                self.degrees[..new]
                    .iter()
                    .map(|&d| (d as f64 + offset).max(1e-3)),
            );
            let mut chosen: Vec<usize> = Vec::with_capacity(m);
            while chosen.len() < m {
                let pick = rng
                    .pick_weighted(&weights)
                    .expect("positive attachment weights");
                if !chosen.contains(&pick) {
                    chosen.push(pick);
                    // Zero the weight so the next draw picks a distinct
                    // neighbour without rejection loops.
                    weights[pick] = 0.0;
                }
            }
            // Restore and wire up (order of chosen is draw order —
            // deterministic in the seed).
            for &target in &chosen {
                add_link(
                    &mut self.links,
                    &mut self.degrees,
                    &mut adjacency,
                    new,
                    target,
                );
            }
        }
        // Deterministic neighbour order for the BFS tie-break: lowest AS
        // id wins.
        for neigh in &mut adjacency {
            neigh.sort_unstable();
        }
        self.compute_routes(&adjacency);
        self.mark_hotspots();
        self.background = vec![0.0; self.links.len()];
        self.carried = vec![0; self.links.len()];
        self.carried_epoch = 0;
    }

    /// BFS from every AS (lowest-id tie-break via sorted adjacency and
    /// first-visit-wins), then flatten per-pair routes into the table.
    fn compute_routes(&mut self, adjacency: &[Vec<u32>]) {
        let n = self.degrees.len();
        // Link index lookup: links are few (≈ m·n), a sorted table of
        // endpoint pairs beats a hash map for determinism and locality.
        let mut link_of: std::collections::BTreeMap<(u32, u32), u32> =
            std::collections::BTreeMap::new();
        for (i, l) in self.links.iter_mut().enumerate() {
            l.route_crossings = 0;
            link_of.insert((l.a, l.b), i as u32);
        }
        let key = |x: u32, y: u32| if x < y { (x, y) } else { (y, x) };

        self.routes = vec![
            RouteEntry {
                hops: 0,
                hotspot_start: 0,
                hotspot_len: 0
            };
            n * n
        ];
        // Per-pair link paths, gathered first so crossings are counted
        // before hotspot marking; the hotspot ranges are filled by
        // `reindex_route_hotspots` once hotspot flags exist.
        let mut parent: Vec<u32> = Vec::new();
        let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        let mut pair_links: Vec<Vec<u32>> = vec![Vec::new(); n * n];
        for src in 0..n as u32 {
            parent.clear();
            parent.resize(n, u32::MAX);
            parent[src as usize] = src;
            queue.clear();
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                for &v in &adjacency[u as usize] {
                    if parent[v as usize] == u32::MAX {
                        parent[v as usize] = u;
                        queue.push_back(v);
                    }
                }
            }
            for dst in 0..n as u32 {
                if dst == src || parent[dst as usize] == u32::MAX {
                    continue;
                }
                let mut hops = 0u32;
                let mut cur = dst;
                let links_on_path = &mut pair_links[src as usize * n + dst as usize];
                while cur != src {
                    let p = parent[cur as usize];
                    let li = link_of[&key(cur, p)];
                    links_on_path.push(li);
                    hops += 1;
                    cur = p;
                }
                self.routes[src as usize * n + dst as usize].hops = hops;
                for &li in links_on_path.iter() {
                    self.links[li as usize].route_crossings += 1;
                }
            }
        }
        self.pair_links = pair_links;
    }

    /// Rank links by route crossings (betweenness approximation) and
    /// mark the top `hotspots` as finite-capacity bottlenecks, then
    /// rebuild the flattened per-route hotspot ranges.
    fn mark_hotspots(&mut self) {
        for l in &mut self.links {
            l.hotspot = false;
        }
        let mut order: Vec<usize> = (0..self.links.len()).collect();
        // Highest crossings first; ties break on the lower link index so
        // the selection is deterministic.
        order.sort_by_key(|&i| (std::cmp::Reverse(self.links[i].route_crossings), i));
        for &i in order.iter().take(self.config.hotspots) {
            self.links[i].hotspot = true;
        }
        self.reindex_route_hotspots();
    }

    /// Rebuild [`RouteEntry`] hotspot ranges from the per-pair link
    /// paths and the current hotspot flags.
    fn reindex_route_hotspots(&mut self) {
        self.route_hotspots.clear();
        for (pair, links_on_path) in self.pair_links.iter().enumerate() {
            let start = self.route_hotspots.len() as u32;
            for &li in links_on_path {
                if self.links[li as usize].hotspot {
                    self.route_hotspots.push(li);
                }
            }
            self.routes[pair].hotspot_start = start;
            self.routes[pair].hotspot_len = self.route_hotspots.len() as u32 - start;
        }
    }

    /// The generation counter (starts at 1; bumped by
    /// [`AsTopology::regenerate`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The configuration the current graph was grown from.
    pub fn config(&self) -> &TopologyConfig {
        &self.config
    }

    /// Number of ASes.
    pub fn ases(&self) -> usize {
        self.degrees.len()
    }

    /// The links of the graph.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Per-AS degrees.
    pub fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// Indices of the current hotspot links.
    pub fn hotspot_links(&self) -> Vec<usize> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.hotspot)
            .map(|(i, _)| i)
            .collect()
    }

    /// Deterministic country → AS mapping: a splitmix mix of the graph
    /// seed and the two-byte code, reduced mod the AS count. Stable for
    /// the life of a generation.
    pub fn as_of_country(&self, cc: CountryCode) -> u32 {
        let code = cc.as_str().as_bytes();
        let mixed = splitmix_mix(self.config.seed ^ ((code[0] as u64) << 8 | code[1] as u64));
        (mixed % self.degrees.len() as u64) as u32
    }

    /// The precomputed route between two countries' ASes.
    pub fn route_between(&self, a: CountryCode, b: CountryCode) -> RouteEntry {
        let (src, dst) = (self.as_of_country(a), self.as_of_country(b));
        self.routes[src as usize * self.degrees.len() + dst as usize]
    }

    /// AS-hop count between two countries (0 when co-located).
    pub fn hops_between(&self, a: CountryCode, b: CountryCode) -> u32 {
        self.route_between(a, b).hops
    }

    /// The hotspot links the route between two countries crosses.
    pub fn route_hotspots_between(&self, a: CountryCode, b: CountryCode) -> &[u32] {
        let r = self.route_between(a, b);
        &self.route_hotspots[r.hotspot_start as usize..(r.hotspot_start + r.hotspot_len) as usize]
    }

    /// Force the route between two countries to cross a hotspot: mark
    /// its highest-crossing link as a hotspot if none of its links is
    /// one already. Returns the hotspot link's index, or `None` for a
    /// zero-hop (co-located) route. Routing ignores capacity, so this
    /// never changes any route — data-plane only, no generation bump.
    pub fn ensure_hotspot_between(&mut self, a: CountryCode, b: CountryCode) -> Option<usize> {
        let (src, dst) = (self.as_of_country(a), self.as_of_country(b));
        let n = self.degrees.len();
        let links_on_path = &self.pair_links[src as usize * n + dst as usize];
        if links_on_path.is_empty() {
            return None;
        }
        if let Some(&li) = links_on_path
            .iter()
            .find(|&&li| self.links[li as usize].hotspot)
        {
            return Some(li as usize);
        }
        // Deterministic: the most-crossed link on the route, ties to the
        // lower index.
        let &best = links_on_path
            .iter()
            .min_by_key(|&&li| {
                (
                    std::cmp::Reverse(self.links[li as usize].route_crossings),
                    li,
                )
            })
            .expect("non-empty path");
        self.links[best as usize].hotspot = true;
        self.reindex_route_hotspots();
        Some(best as usize)
    }

    /// Set one link's background utilisation (the brownout knob).
    /// Data-plane only: no generation bump, no pipeline recompiles.
    pub fn set_background(&mut self, link: usize, level: f64) {
        self.background[link] = level.max(0.0);
    }

    /// Set the background utilisation of every *hotspot* link — the
    /// transit-wide brownout a scheduled world mutation flips on and off.
    pub fn set_hotspot_background(&mut self, level: f64) {
        for i in 0..self.links.len() {
            if self.links[i].hotspot {
                self.background[i] = level.max(0.0);
            }
        }
    }

    /// A link's background utilisation.
    pub fn background(&self, link: usize) -> f64 {
        self.background[link]
    }

    /// Divide hotspot capacities by the shard count, so N shards each
    /// seeing 1/N of the offered load reproduce the serial run's
    /// utilisation. Capacity never drops below 1.
    pub fn scale_capacity(&mut self, shards: usize) {
        let shards = shards.max(1) as u32;
        for l in &mut self.links {
            l.capacity = (l.capacity / shards).max(1);
        }
    }

    /// Roll the carried-load epoch forward if `now` left the current
    /// one.
    fn roll_epoch(&mut self, now: SimTime) {
        let epoch = now.as_micros() / LOAD_EPOCH.as_micros();
        if epoch != self.carried_epoch {
            self.carried_epoch = epoch;
            self.carried.iter_mut().for_each(|c| *c = 0);
        }
    }

    /// Account one fetch crossing the route between two countries and
    /// decide its fate. Consumes **at most one** RNG draw, and exactly
    /// zero when no hotspot link on the route is over threshold — so
    /// topologies at rest leave every RNG stream untouched.
    pub fn transit(
        &mut self,
        src: CountryCode,
        dst: CountryCode,
        now: SimTime,
        rng: &mut SimRng,
    ) -> TransitDecision {
        let route = {
            let (s, d) = (self.as_of_country(src), self.as_of_country(dst));
            self.routes[s as usize * self.degrees.len() + d as usize]
        };
        if route.hotspot_len == 0 {
            return TransitDecision::Pass;
        }
        self.roll_epoch(now);
        // Bottleneck semantics: the single worst link on the route sets
        // the shed probability (a fetch squeezed through the tightest
        // hop is not re-lotteried at every other congested hop), while
        // queueing delay accumulates per congested hop. Compounding shed
        // probabilities multiplicatively would make long transit paths
        // shed nearly everything during a brownout, collapsing record
        // volume below any detector's minimum-evidence guard.
        let mut max_over = 0.0f64;
        let mut delay_ms = 0.0f64;
        let threshold = self.config.shed_threshold;
        let range =
            route.hotspot_start as usize..(route.hotspot_start + route.hotspot_len) as usize;
        for k in range {
            let li = self.route_hotspots[k] as usize;
            self.carried[li] += 1;
            let cap = self.links[li].capacity.max(1) as f64;
            let u = self.background[li] + self.carried[li] as f64 / cap;
            if u > threshold {
                let over = ((u - threshold) / (1.0 - threshold).max(1e-9)).min(1.0);
                max_over = max_over.max(over);
                delay_ms += over * over * MAX_QUEUE_MS;
            }
        }
        let shed_prob = (max_over * SHED_MAX).min(SHED_MAX);
        if shed_prob > 0.0 && rng.chance(shed_prob) {
            return TransitDecision::Shed;
        }
        if delay_ms > 0.0 {
            return TransitDecision::Delay(SimDuration::from_millis_f64(delay_ms));
        }
        TransitDecision::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::country;

    fn topo(seed: u64) -> AsTopology {
        AsTopology::generate(TopologyConfig::with_seed(seed))
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            assert_eq!(topo(seed), topo(seed));
        }
        assert_ne!(topo(1).links(), topo(2).links());
    }

    #[test]
    fn graph_is_connected() {
        for seed in 0..8u64 {
            let t = topo(seed);
            let n = t.ases();
            for dst in 1..n as u32 {
                let r = t.routes[dst as usize];
                assert!(r.hops > 0, "AS {dst} unreachable from AS 0 (seed {seed})");
            }
        }
    }

    #[test]
    fn heavier_exponent_concentrates_degree() {
        // Smaller γ → heavier tail → the max degree takes a larger share
        // of all edge endpoints. Averaged over seeds to avoid
        // single-draw noise.
        let share = |gamma: f64| -> f64 {
            let mut total = 0.0;
            for seed in 0..6u64 {
                let t = AsTopology::generate(TopologyConfig {
                    seed,
                    ases: 128,
                    degree_exponent: gamma,
                    ..TopologyConfig::default()
                });
                let max = *t.degrees().iter().max().unwrap() as f64;
                let sum: u32 = t.degrees().iter().sum();
                total += max / sum as f64;
            }
            total / 6.0
        };
        let heavy = share(2.1);
        let light = share(3.0);
        assert!(
            heavy > light,
            "γ=2.1 max-degree share {heavy:.4} must exceed γ=3.0 share {light:.4}"
        );
    }

    #[test]
    fn hotspots_are_the_most_crossed_links() {
        let t = topo(5);
        let hotspots = t.hotspot_links();
        assert_eq!(hotspots.len(), t.config().hotspots);
        let min_hot = hotspots
            .iter()
            .map(|&i| t.links()[i].route_crossings)
            .min()
            .unwrap();
        let max_cold = t
            .links()
            .iter()
            .filter(|l| !l.hotspot)
            .map(|l| l.route_crossings)
            .max()
            .unwrap();
        assert!(min_hot >= max_cold, "{min_hot} < {max_cold}");
    }

    #[test]
    fn regenerate_bumps_generation_and_changes_routes() {
        let mut t = topo(1);
        assert_eq!(t.generation(), 1);
        let before = t.routes.clone();
        t.regenerate(2);
        assert_eq!(t.generation(), 2);
        assert_ne!(t.routes, before, "a new seed must reroute");
    }

    #[test]
    fn ensure_hotspot_between_is_idempotent_and_route_neutral() {
        let mut t = topo(3);
        let (a, b) = (country("TR"), country("US"));
        let hops = t.hops_between(a, b);
        let first = t.ensure_hotspot_between(a, b);
        let second = t.ensure_hotspot_between(a, b);
        assert_eq!(first, second, "idempotent");
        assert_eq!(t.hops_between(a, b), hops, "routing ignores capacity");
        assert_eq!(t.generation(), 1, "data-plane only");
        if hops > 0 {
            assert!(!t.route_hotspots_between(a, b).is_empty());
        }
    }

    #[test]
    fn transit_at_rest_consumes_no_draws() {
        let mut t = topo(4);
        t.ensure_hotspot_between(country("TR"), country("US"));
        let mut rng = SimRng::new(9);
        let reference = SimRng::new(9).next_u64();
        // Low offered load, zero background: below threshold, no draw.
        let d = t.transit(country("TR"), country("US"), SimTime::ZERO, &mut rng);
        assert_eq!(d, TransitDecision::Pass);
        assert_eq!(rng.next_u64(), reference, "RNG stream untouched");
    }

    #[test]
    fn saturated_hotspot_sheds_and_caps_at_shed_max() {
        let mut t = AsTopology::generate(TopologyConfig {
            hotspot_capacity: 10,
            ..TopologyConfig::with_seed(6)
        });
        let (a, b) = (country("TR"), country("US"));
        t.ensure_hotspot_between(a, b).expect("routed pair");
        t.set_hotspot_background(5.0); // far beyond saturation
        let mut rng = SimRng::new(1);
        let mut shed = 0;
        let n = 2_000;
        for i in 0..n {
            if t.transit(a, b, SimTime::from_millis(i), &mut rng) == TransitDecision::Shed {
                shed += 1;
            }
        }
        let rate = shed as f64 / n as f64;
        assert!(rate > 0.5, "saturated link must shed hard (rate {rate})");
        assert!(
            rate < SHED_MAX + 0.05,
            "shed rate {rate} must respect SHED_MAX"
        );
    }

    #[test]
    fn brownout_delay_precedes_shedding() {
        let mut t = AsTopology::generate(TopologyConfig {
            hotspot_capacity: 1_000,
            ..TopologyConfig::with_seed(6)
        });
        let (a, b) = (country("TR"), country("US"));
        t.ensure_hotspot_between(a, b).expect("routed pair");
        // Just over threshold: some delay, shedding possible but rare.
        t.set_hotspot_background(t.config().shed_threshold + 0.05);
        let mut rng = SimRng::new(2);
        let mut delays = 0;
        for i in 0..200 {
            if let TransitDecision::Delay(d) = t.transit(a, b, SimTime::from_millis(i), &mut rng) {
                assert!(d > SimDuration::ZERO);
                delays += 1;
            }
        }
        assert!(delays > 100, "mild congestion should mostly delay");
    }

    #[test]
    fn carried_load_resets_each_epoch() {
        let mut t = AsTopology::generate(TopologyConfig {
            hotspot_capacity: 5,
            ..TopologyConfig::with_seed(8)
        });
        let (a, b) = (country("TR"), country("US"));
        let hot = t.ensure_hotspot_between(a, b).expect("routed pair");
        let mut rng = SimRng::new(3);
        for _ in 0..20 {
            t.transit(a, b, SimTime::ZERO, &mut rng);
        }
        assert!(t.carried[hot] >= 20, "load accumulates within an epoch");
        t.transit(a, b, SimTime::from_secs(120), &mut rng);
        assert!(t.carried[hot] <= 1, "a new epoch starts from zero");
    }

    #[test]
    fn capacity_scaling_never_hits_zero() {
        let mut t = AsTopology::generate(TopologyConfig {
            hotspot_capacity: 3,
            ..TopologyConfig::with_seed(1)
        });
        t.scale_capacity(16);
        assert!(t.links().iter().all(|l| l.capacity >= 1));
    }

    #[test]
    fn country_mapping_is_stable_and_covers_the_graph() {
        let t = topo(11);
        let a = t.as_of_country(country("CN"));
        assert_eq!(a, t.as_of_country(country("CN")));
        assert!((a as usize) < t.ases());
    }
}
