//! HTTP model.
//!
//! We model requests and responses at the granularity Encore cares about:
//! method, URL, a small set of semantically meaningful headers
//! (`Content-Type`, `Cache-Control`, `X-Content-Type-Options`, `Referer`),
//! status codes, and bodies described by size + content class rather than
//! literal bytes. Keyword-based censorship (paper §1: "censorship typically
//! targets specific domains, URLs, keywords, or content") operates on the
//! URL string and on a `keywords` summary of the body.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// HTTP request method. Encore's measurement tasks only ever issue GETs
/// (embedding always fetches); POST exists for result submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// GET — resource fetch.
    Get,
    /// POST — measurement result submission (AJAX per §5.5).
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// HTTP status code (the subset the simulation produces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 302 Found (redirect — used by censors to point at block pages).
    pub const FOUND: StatusCode = StatusCode(302);
    /// 403 Forbidden (some censors answer directly).
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 500 Internal Server Error.
    pub const SERVER_ERROR: StatusCode = StatusCode(500);

    /// Whether this is a 2xx success.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// Whether this is a 3xx redirect.
    pub fn is_redirect(self) -> bool {
        (300..400).contains(&self.0)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Content type of a response body, at the granularity the browser's
/// loaders distinguish (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentType {
    /// An image (`image/*`). Valid images render; `img` fires `onload`.
    Image,
    /// A style sheet (`text/css`).
    Stylesheet,
    /// JavaScript (`application/javascript`).
    Script,
    /// An HTML page (`text/html`).
    Html,
    /// Anything else (video, flash, fonts, JSON, …).
    Other,
}

impl ContentType {
    /// The MIME string this models.
    pub fn mime(self) -> &'static str {
        match self {
            ContentType::Image => "image/png",
            ContentType::Stylesheet => "text/css",
            ContentType::Script => "application/javascript",
            ContentType::Html => "text/html",
            ContentType::Other => "application/octet-stream",
        }
    }
}

/// Cacheability of a response, summarising `Cache-Control`/`Expires`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cacheability {
    /// Cacheable with a long lifetime (typical for static images/CSS).
    Cacheable,
    /// `no-store` / `no-cache` / private.
    NotCacheable,
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HttpRequest {
    /// Method.
    pub method: Method,
    /// Absolute URL string, e.g. `http://censored.com/favicon.ico`.
    pub url: String,
    /// `Referer` header, if the client sends one (origin sites may strip
    /// it — the paper notes ¾ of measurements arrived referrer-less).
    pub referer: Option<String>,
    /// Body size in bytes (0 for GET).
    pub body_bytes: u64,
}

impl HttpRequest {
    /// A GET for `url` with no referer.
    pub fn get(url: impl Into<String>) -> HttpRequest {
        HttpRequest {
            method: Method::Get,
            url: url.into(),
            referer: None,
            body_bytes: 0,
        }
    }

    /// A POST to `url` carrying `bytes` of body.
    pub fn post(url: impl Into<String>, bytes: u64) -> HttpRequest {
        HttpRequest {
            method: Method::Post,
            url: url.into(),
            referer: None,
            body_bytes: bytes,
        }
    }

    /// Set the referer.
    pub fn with_referer(mut self, referer: impl Into<String>) -> HttpRequest {
        self.referer = Some(referer.into());
        self
    }

    /// The host (DNS name) component of the URL, lower-cased, or `None` if
    /// the URL is malformed. Borrows from the URL unless lower-casing
    /// forces a copy (URLs in the simulation are lowercase already, so the
    /// hot path never allocates).
    pub fn host(&self) -> Option<std::borrow::Cow<'_, str>> {
        host_ref(&self.url)
    }

    /// The path component ("/..." part, without query), borrowed.
    pub fn path(&self) -> &str {
        path_ref(&self.url)
    }
}

/// Extract the host from an absolute `http://` URL, borrowing from `url`
/// when it is already lowercase (the common case in the simulation).
pub fn host_ref(url: &str) -> Option<std::borrow::Cow<'_, str>> {
    let rest = url
        .strip_prefix("http://")
        .or_else(|| url.strip_prefix("https://"))
        .or_else(|| url.strip_prefix("//"))?;
    // SWAR byte scan: a multi-char pattern would walk char-by-char, and
    // this runs once per fetch.
    let bytes = rest.as_bytes();
    let end = sim_core::find_any3(bytes, b'/', b'?', b'#').unwrap_or(rest.len());
    let hostport = &rest[..end];
    if hostport.is_empty() {
        return None;
    }
    let host = match sim_core::find_byte(hostport.as_bytes(), b':') {
        Some(colon) => &hostport[..colon],
        None => hostport,
    };
    if host.is_empty() {
        None
    } else if host.bytes().any(|b| b.is_ascii_uppercase()) {
        Some(std::borrow::Cow::Owned(host.to_ascii_lowercase()))
    } else {
        Some(std::borrow::Cow::Borrowed(host))
    }
}

/// Extract the host from an absolute `http://` URL (allocating wrapper
/// over [`host_ref`] for callers that need ownership).
pub fn host_of(url: &str) -> Option<String> {
    host_ref(url).map(std::borrow::Cow::into_owned)
}

/// Extract the path from an absolute URL (default `/`), borrowed.
pub fn path_ref(url: &str) -> &str {
    let rest = url
        .strip_prefix("http://")
        .or_else(|| url.strip_prefix("https://"))
        .or_else(|| url.strip_prefix("//"))
        .unwrap_or(url);
    let bytes = rest.as_bytes();
    match sim_core::find_byte(bytes, b'/') {
        Some(i) => {
            let p = &rest[i..];
            let end = sim_core::find_either(p.as_bytes(), b'?', b'#').unwrap_or(p.len());
            &p[..end]
        }
        None => "/",
    }
}

/// Extract the path from an absolute URL (allocating wrapper over
/// [`path_ref`] for callers that need ownership).
pub fn path_of(url: &str) -> String {
    path_ref(url).to_string()
}

/// How an HTML page embeds a subresource (the mechanisms of paper
/// Table 1 map onto these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EmbedKind {
    /// `<img src=…>`
    Image,
    /// `<link rel="stylesheet" href=…>`
    Stylesheet,
    /// `<script src=…>`
    Script,
}

/// One embedded-resource reference found in an HTML body. Carried on
/// [`HttpResponse`] so browsers can discover subresources without the
/// simulation shipping literal HTML bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Embedded {
    /// Absolute URL of the embedded resource.
    pub url: String,
    /// Embed mechanism.
    pub kind: EmbedKind,
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HttpResponse {
    /// Status code.
    pub status: StatusCode,
    /// Body content type.
    pub content_type: ContentType,
    /// Body size in bytes.
    pub body_bytes: u64,
    /// Cacheability summary.
    pub cacheability: Cacheability,
    /// Whether the server sent `X-Content-Type-Options: nosniff` (paper
    /// §4.3.2: Chrome respects it, which makes the script task safe).
    pub nosniff: bool,
    /// `Location` header for redirects.
    pub location: Option<String>,
    /// Whether the body parses as valid content of its declared type
    /// (e.g. a real image; a censor block page served as HTML is *not* a
    /// valid image even when requested via an `img` tag).
    pub valid_body: bool,
    /// Keyword summary of the body (for content censors and tests).
    pub keywords: Vec<String>,
    /// For HTML bodies: the subresources the page embeds (what a browser
    /// would discover while parsing).
    pub embeds: Vec<Embedded>,
    /// Free-form extra headers (kept sorted for deterministic equality).
    /// Header names and values are usually literals, so `Cow` keeps the
    /// per-response cost to at most one small vector allocation.
    pub extra_headers: Vec<(Cow<'static, str>, Cow<'static, str>)>,
}

impl HttpResponse {
    /// A 200 response with the given type/size, cacheable, valid.
    pub fn ok(content_type: ContentType, body_bytes: u64) -> HttpResponse {
        HttpResponse {
            status: StatusCode::OK,
            content_type,
            body_bytes,
            cacheability: Cacheability::Cacheable,
            nosniff: false,
            location: None,
            valid_body: true,
            keywords: Vec::new(),
            embeds: Vec::new(),
            extra_headers: Vec::new(),
        }
    }

    /// A 404 response.
    pub fn not_found() -> HttpResponse {
        let mut r = HttpResponse::ok(ContentType::Html, 512);
        r.status = StatusCode::NOT_FOUND;
        r.cacheability = Cacheability::NotCacheable;
        r
    }

    /// A redirect to `location`.
    pub fn redirect(location: impl Into<String>) -> HttpResponse {
        let mut r = HttpResponse::ok(ContentType::Html, 0);
        r.status = StatusCode::FOUND;
        r.location = Some(location.into());
        r.cacheability = Cacheability::NotCacheable;
        r
    }

    /// A censor block page: HTML explaining the content is blocked. Valid
    /// HTML, but not a valid image/script/stylesheet.
    pub fn block_page() -> HttpResponse {
        let mut r = HttpResponse::ok(ContentType::Html, 2_048);
        r.cacheability = Cacheability::NotCacheable;
        r.keywords = vec!["blocked".to_string()];
        r
    }

    /// Builder: mark non-cacheable.
    pub fn no_store(mut self) -> HttpResponse {
        self.cacheability = Cacheability::NotCacheable;
        self
    }

    /// Builder: set nosniff.
    pub fn with_nosniff(mut self) -> HttpResponse {
        self.nosniff = true;
        self
    }

    /// Builder: mark the body as invalid for its declared type.
    pub fn with_invalid_body(mut self) -> HttpResponse {
        self.valid_body = false;
        self
    }

    /// Builder: attach body keywords.
    pub fn with_keywords(mut self, kw: Vec<String>) -> HttpResponse {
        self.keywords = kw;
        self
    }

    /// Builder: attach the page's embedded-resource list.
    pub fn with_embeds(mut self, embeds: Vec<Embedded>) -> HttpResponse {
        self.embeds = embeds;
        self
    }

    /// Whether the browser may cache this response.
    pub fn is_cacheable(&self) -> bool {
        self.cacheability == Cacheability::Cacheable && self.status.is_success()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_extraction() {
        assert_eq!(
            host_of("http://example.com/a/b"),
            Some("example.com".into())
        );
        assert_eq!(host_of("https://EXAMPLE.com"), Some("example.com".into()));
        assert_eq!(
            host_of("//cdn.example.com/x.png"),
            Some("cdn.example.com".into())
        );
        assert_eq!(
            host_of("http://example.com:8080/x"),
            Some("example.com".into())
        );
        assert_eq!(host_of("example.com/x"), None);
        assert_eq!(host_of("http://"), None);
    }

    #[test]
    fn host_and_path_borrow_when_already_lowercase() {
        use std::borrow::Cow;
        assert!(matches!(
            host_ref("http://example.com/a"),
            Some(Cow::Borrowed("example.com"))
        ));
        assert!(matches!(
            host_ref("http://EXAMPLE.com/a"),
            Some(Cow::Owned(ref s)) if s == "example.com"
        ));
        let r = HttpRequest::get("http://example.com/a/b?q=1");
        assert_eq!(r.path(), "/a/b");
        assert!(matches!(r.host(), Some(Cow::Borrowed("example.com"))));
    }

    #[test]
    fn path_extraction() {
        assert_eq!(path_of("http://example.com/a/b?q=1"), "/a/b");
        assert_eq!(path_of("http://example.com"), "/");
        assert_eq!(path_of("http://example.com/#frag"), "/");
    }

    #[test]
    fn request_accessors() {
        let r =
            HttpRequest::get("http://censored.com/favicon.ico").with_referer("http://example.com/");
        assert_eq!(r.host().as_deref(), Some("censored.com"));
        assert_eq!(r.path(), "/favicon.ico");
        assert_eq!(r.referer.as_deref(), Some("http://example.com/"));
        assert_eq!(r.method, Method::Get);
    }

    #[test]
    fn post_carries_bytes() {
        let r = HttpRequest::post("http://collector/submit", 180);
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body_bytes, 180);
    }

    #[test]
    fn status_predicates() {
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::NOT_FOUND.is_success());
        assert!(StatusCode::FOUND.is_redirect());
        assert!(!StatusCode::OK.is_redirect());
    }

    #[test]
    fn block_page_is_not_image() {
        let b = HttpResponse::block_page();
        assert_eq!(b.content_type, ContentType::Html);
        assert!(b.status.is_success()); // Many censors answer 200 + HTML.
        assert!(!b.is_cacheable());
        assert!(b.keywords.contains(&"blocked".to_string()));
    }

    #[test]
    fn cacheability_requires_success() {
        assert!(HttpResponse::ok(ContentType::Image, 400).is_cacheable());
        assert!(!HttpResponse::not_found().is_cacheable());
        assert!(!HttpResponse::ok(ContentType::Image, 400)
            .no_store()
            .is_cacheable());
    }

    #[test]
    fn builders_compose() {
        let r = HttpResponse::ok(ContentType::Script, 1_000)
            .with_nosniff()
            .with_invalid_body()
            .with_keywords(vec!["jquery".into()]);
        assert!(r.nosniff);
        assert!(!r.valid_body);
        assert_eq!(r.keywords, vec!["jquery"]);
    }

    #[test]
    fn content_type_mimes() {
        assert_eq!(ContentType::Image.mime(), "image/png");
        assert_eq!(ContentType::Html.mime(), "text/html");
    }

    #[test]
    fn redirect_has_location() {
        let r = HttpResponse::redirect("http://block.example/");
        assert!(r.status.is_redirect());
        assert_eq!(r.location.as_deref(), Some("http://block.example/"));
    }
}
