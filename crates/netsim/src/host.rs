//! Simulated hosts: the clients (vantage points) and servers of the world.

use crate::geo::{CountryCode, IspClass};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Opaque host identifier (dense, allocation-ordered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u64);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A host attached to the simulated network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Host {
    /// Identifier.
    pub id: HostId,
    /// Its (single) IPv4 address.
    pub ip: Ipv4Addr,
    /// Country the host is physically in.
    pub country: CountryCode,
    /// Access-network class.
    pub isp: IspClass,
}

impl Host {
    /// Construct a host.
    pub fn new(id: HostId, ip: Ipv4Addr, country: CountryCode, isp: IspClass) -> Host {
        Host {
            id,
            ip,
            country,
            isp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::country;

    #[test]
    fn host_display() {
        assert_eq!(HostId(7).to_string(), "h7");
    }

    #[test]
    fn host_construction() {
        let h = Host::new(
            HostId(1),
            Ipv4Addr::new(100, 0, 0, 2),
            country("PK"),
            IspClass::Residential,
        );
        assert_eq!(h.country.as_str(), "PK");
        assert_eq!(h.isp, IspClass::Residential);
    }
}
