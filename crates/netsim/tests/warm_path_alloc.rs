//! Counting-allocator proof that the warm visit path performs **zero
//! heap allocations** — the acceptance gate of the data-oriented hot
//! path work, so the win cannot silently regress.
//!
//! A warm [`FetchSession`] fetch (DNS cached, keep-alive connection
//! live, compiled middlebox pipeline current, path quality memoised, no
//! censor interference) must run DNS → TCP → HTTP entirely on
//! id-indexed state: no `String` per host name, no per-fetch `HashMap`
//! churn, no response-body heap traffic for a headerless constant
//! response.
//!
//! This file holds exactly one `#[test]`: the `#[global_allocator]`
//! counter is process-wide, so a concurrent test in the same binary
//! would pollute the count.

use netsim::geo::{country, IspClass, World};
use netsim::http::{ContentType, HttpRequest, HttpResponse};
use netsim::network::{ConstHandler, Network};
use netsim::session::FetchSession;
use sim_core::{SimRng, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// The system allocator, with every allocation counted.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_fetch_performs_zero_heap_allocations() {
    let mut net = Network::ideal(World::builtin());
    // A constant response with no heap-carrying fields (no keywords, no
    // embeds, no redirect location, no extra headers): what a measurement
    // target image looks like to the session layer.
    net.add_server(
        "img.example.com",
        country("US"),
        Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 2_048))),
    );
    let client = net.add_client(country("DE"), IspClass::Residential);
    let mut session = FetchSession::new(client);
    let mut rng = SimRng::new(0xA110C);
    let req = HttpRequest::get("http://img.example.com/probe.png");

    // Warm everything up: DNS cache, keep-alive pool, compiled pipeline,
    // quality memo, resolver RTT. Two rounds so every lazily-built table
    // is both built and replayed before counting starts.
    for i in 0..4u64 {
        let out = session.fetch(&mut net, &req, SimTime::from_secs(i), &mut rng);
        assert!(out.result.is_ok(), "warm-up fetch failed: {:?}", out.result);
    }

    // Count across many fetches at close timestamps (keep-alive stays
    // live) so a single stray allocation anywhere in the path is loud.
    const FETCHES: u64 = 100;
    let t0 = SimTime::from_secs(10);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..FETCHES {
        let out = session.fetch(
            &mut net,
            &req,
            t0 + sim_core::SimDuration::from_millis(i * 50),
            &mut rng,
        );
        assert!(out.result.is_ok());
    }
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;

    assert_eq!(
        allocs, 0,
        "warm visit path allocated {allocs} time(s) over {FETCHES} fetches — \
         the zero-allocation warm path has regressed"
    );
    // The fetches above really did run warm: all DNS hits, one pooled
    // connection reused throughout.
    let stats = session.stats();
    assert!(
        stats.dns_cache_hits >= FETCHES,
        "expected warm DNS, got {stats:?}"
    );
}
