//! Property tests for the network substrate.

use netsim::fault::{FaultDecision, FaultInjector};
use netsim::geo::{country, IspClass, World};
use netsim::http::{HttpRequest, HttpResponse};
use netsim::ip::IpAllocator;
use netsim::network::{ConstHandler, Network};
use netsim::path::PathModel;
use proptest::prelude::*;
use sim_core::{SimRng, SimTime};

fn some_country(idx: usize) -> netsim::geo::CountryCode {
    let codes = ["US", "CN", "IN", "PK", "DE", "BR", "IR", "GB", "JP", "NG"];
    country(codes[idx % codes.len()])
}

proptest! {
    #[test]
    fn allocator_never_duplicates(picks in proptest::collection::vec(0usize..10, 1..300)) {
        let mut alloc = IpAllocator::new();
        let mut seen = std::collections::HashSet::new();
        for p in picks {
            let cc = some_country(p);
            let ip = alloc.allocate(cc);
            prop_assert!(seen.insert(ip), "duplicate {ip}");
            prop_assert_eq!(alloc.country_of(ip), Some(cc));
        }
    }

    #[test]
    fn request_accessors_never_panic(url in ".{0,150}") {
        let req = HttpRequest::get(url);
        let _ = req.host();
        let _ = req.path();
    }

    #[test]
    fn fault_injector_rates_respected_at_extremes(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let mut all_drop = FaultInjector::none().with_drop_chance(1.0);
        prop_assert_eq!(all_drop.decide(SimTime::ZERO, &mut rng), FaultDecision::Drop);
        let mut none = FaultInjector::none();
        prop_assert_eq!(none.decide(SimTime::ZERO, &mut rng), FaultDecision::Pass);
    }

    #[test]
    fn transfer_time_is_monotone_in_bytes(
        a in 0u64..10_000_000,
        b in 0u64..10_000_000,
    ) {
        let m = PathModel::default();
        let w = World::builtin();
        let us = w.get(country("US")).unwrap();
        let mut net = Network::ideal(World::builtin());
        let host = net.add_client(country("US"), IspClass::Residential);
        let q = m.quality(&host, us, us);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.transfer_time(&q, lo) <= m.transfer_time(&q, hi));
    }

    #[test]
    fn stage_failure_is_below_fetch_failure(rate in 0.0f64..1.0) {
        let m = PathModel::default();
        let q = netsim::path::PathQuality {
            rtt_median_ms: 100.0,
            failure_rate: rate,
            bandwidth_bps: 1e6,
        };
        let p = m.stage_failure_probability(&q);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(p <= rate + 1e-12);
        // Composition recovers the fetch-level rate.
        let composed = 1.0 - (1.0 - p).powi(3);
        prop_assert!((composed - rate).abs() < 1e-9);
    }

    #[test]
    fn fetch_never_panics_on_arbitrary_urls(url in ".{0,120}", seed in any::<u64>()) {
        let mut net = Network::ideal(World::builtin());
        net.add_server(
            "up.example",
            country("US"),
            Box::new(ConstHandler(HttpResponse::ok(netsim::http::ContentType::Image, 100))),
        );
        let client = net.add_client(country("DE"), IspClass::Residential);
        let mut rng = SimRng::new(seed);
        let out = net.fetch(&client, &HttpRequest::get(url), SimTime::ZERO, &mut rng);
        // Timings are always well-formed.
        let _ = out.timings.total();
    }

    #[test]
    fn dns_resolution_is_idempotent(seed in any::<u64>(), names in proptest::collection::vec("[a-z]{1,10}\\.(com|org)", 1..20)) {
        let _ = seed;
        let mut net = Network::ideal(World::builtin());
        for n in &names {
            net.add_server(
                n,
                country("US"),
                Box::new(ConstHandler(HttpResponse::ok(netsim::http::ContentType::Html, 10))),
            );
        }
        for n in &names {
            let a = net.dns.authoritative(n);
            let b = net.dns.authoritative(n);
            prop_assert!(a.is_some());
            prop_assert_eq!(a.map(|x| x.ip), b.map(|x| x.ip));
        }
    }
}
