//! Oracle 7 — transport equivalence: the process transport is
//! byte-identical to the thread transport.
//!
//! The in-process thread backend and the frame-protocol process backend
//! claim to execute *the same distributed computation*: identical shard
//! worlds, identical RNG streams, identical merge order. This oracle
//! proves it differentially over generated [`WorldCase`]s — including
//! adaptive-censor and congestion classes — by running both backends at
//! the same shard counts and demanding equality of the structural
//! outcome **and** the serialized byte-images (report, rollups,
//! collection JSON), exactly the "byte-identical" the other oracles
//! use.
//!
//! A [`WorldCase`] crosses the process boundary as a [`CaseSpec`]
//! `(class, seed)` pair — [`WorldCase::from_seed`] is pure, so the
//! worker rebuilds exactly the coordinator's world from two integers.
//! The worker binary is `bench`'s `case_worker`; the runner resolves it
//! as a sibling of the running executable and skips the oracle (rather
//! than failing spuriously) when it is not built.

use crate::generator::{CaseClass, WorldCase};
use crate::oracle::byte_image;
use encore::system::EncoreSystem;
use netsim::geo::World;
use netsim::network::Network;
use population::transport::{ProcessTransport, ShardTransport, ThreadTransport, WorldSpec};
use population::{Audience, ShardContext, WorldRecipe};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The worker-binary name transport cases are dispatched to.
pub const CASE_WORKER: &str = "case_worker";

/// A generated world as it crosses the process boundary: the
/// `(class, seed)` pair that regenerates it.
///
/// [`WorldCase::from_seed`] is a pure function, so this tiny spec is a
/// complete description — the worker process rebuilds byte-for-byte the
/// world the coordinator generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseSpec {
    /// Which oracle family the world draws from.
    pub class: CaseClass,
    /// The generating seed.
    pub seed: u64,
}

impl CaseSpec {
    /// Regenerate the case this spec describes.
    pub fn case(&self) -> WorldCase {
        WorldCase::from_seed(self.class, self.seed)
    }
}

impl WorldSpec for CaseSpec {
    fn audience(&self) -> Audience {
        Audience::world(&World::builtin())
    }

    fn recipe(&self) -> WorldRecipe {
        self.case().recipe()
    }

    fn build(&self, ctx: ShardContext) -> (Network, EncoreSystem) {
        self.case().build(ctx)
    }
}

/// Shard counts the transport oracle compares at: the degenerate single
/// shard and an uneven multi-shard split.
const TRANSPORT_SHARDS: [usize; 2] = [1, 3];

/// Check one generated world across both transport backends: for each
/// shard count in [`TRANSPORT_SHARDS`], the process transport must
/// reproduce the thread transport byte-for-byte (structural outcome,
/// collection, per-shard reports, and all three serialized byte-images).
///
/// `worker` is the path to the built `case_worker` binary; resolve it
/// with [`population::transport::sibling_worker`] before calling.
pub fn check_transport(case: &WorldCase, worker: &Path) -> Vec<crate::oracle::Violation> {
    let spec = CaseSpec {
        class: case.class,
        seed: case.seed,
    };
    let mut violations = Vec::new();
    let mut fail = |oracle: &'static str, detail: String| {
        violations.push(crate::oracle::Violation {
            seed: case.seed,
            class: case.class,
            oracle,
            detail,
            case: case.clone(),
        });
    };
    for shards in TRANSPORT_SHARDS {
        let threads = ThreadTransport.run(&spec, shards, case.seed);
        let threads = match threads {
            Ok(run) => run,
            Err(err) => {
                fail(
                    "transport-run",
                    format!("thread transport failed at {shards} shard(s): {err}"),
                );
                continue;
            }
        };
        let process =
            match ProcessTransport::new(worker.to_path_buf()).run(&spec, shards, case.seed) {
                Ok(run) => run,
                Err(err) => {
                    fail(
                        "transport-run",
                        format!("process transport failed at {shards} shard(s): {err}"),
                    );
                    continue;
                }
            };
        if process.outcome != threads.outcome {
            fail(
                "transport-byte-identity",
                format!("process WorldOutcome differs from threads at {shards} shard(s)"),
            );
        }
        if process.collection != threads.collection {
            fail(
                "transport-byte-identity",
                format!("process collection store differs from threads at {shards} shard(s)"),
            );
        }
        if process.per_shard != threads.per_shard {
            fail(
                "transport-byte-identity",
                format!("process per-shard reports differ from threads at {shards} shard(s)"),
            );
        }
        let thread_image = byte_image(&threads.outcome, &threads.collection);
        let process_image = byte_image(&process.outcome, &process.collection);
        if process_image != thread_image {
            fail(
                "transport-byte-identity",
                format!("serialized byte-images diverge at {shards} shard(s)"),
            );
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_spec_round_trips_and_rebuilds_the_case() {
        for class in [
            CaseClass::Equivalence,
            CaseClass::Detector,
            CaseClass::Congestion,
        ] {
            let spec = CaseSpec {
                class,
                seed: 0xC0FFEE,
            };
            let json = serde_json::to_string(&spec).unwrap();
            let back: CaseSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "spec drifted through the wire: {json}");
            // The regenerated world must be the coordinator's world —
            // from_seed is pure, so the recipes agree structurally.
            assert_eq!(
                format!("{:?}", back.case()),
                format!("{:?}", WorldCase::from_seed(class, 0xC0FFEE)),
            );
        }
    }

    #[test]
    fn thread_transport_agrees_with_direct_sharding_on_a_case_spec() {
        // CaseSpec's WorldSpec impl must describe the same world the
        // oracle's direct run_sharded_world path executes.
        let case = WorldCase::from_seed(CaseClass::Equivalence, 11);
        let spec = CaseSpec {
            class: case.class,
            seed: case.seed,
        };
        let via_spec = ThreadTransport.run(&spec, 2, case.seed).unwrap();
        let direct = population::run_sharded_world(
            &|ctx| case.build(ctx),
            &Audience::world(&World::builtin()),
            &case.recipe(),
            2,
            case.seed,
        );
        assert_eq!(via_spec.outcome, direct.outcome);
        assert_eq!(via_spec.collection, direct.collection);
        assert_eq!(via_spec.per_shard, direct.per_shard);
    }
}
