//! The budgeted fuzz runner.
//!
//! [`run_budget`] draws `cases` generated worlds (every
//! `detector_every`-th case from the detector class, then the
//! congestion and corpus schedules in priority order, the rest from the
//! equivalence class), checks each against its oracles, and aggregates
//! a [`SimCheckReport`]. On any violation it writes a **regression seed
//! file**: one line per failing case with the `(class, seed)` pair that
//! reproduces it via [`replay`] — the CI job uploads this file as an
//! artifact, so a red run is a one-command local repro.

use crate::generator::{CaseClass, WorldCase};
use crate::oracle::{check_case, check_streaming_case, Violation};
use crate::transport::{check_transport, CASE_WORKER};
use serde::Serialize;
use std::path::{Path, PathBuf};

/// Configuration of one budgeted run.
#[derive(Debug, Clone)]
pub struct SimCheckConfig {
    /// Total generated worlds to check.
    pub cases: usize,
    /// Every n-th case is a detector-class world (0 disables the
    /// detector class entirely).
    pub detector_every: usize,
    /// Every n-th case (that is not already detector-class) is a
    /// congestion-class routed world (0 disables the class).
    pub congestion_every: usize,
    /// Every n-th case (that is not already detector- or
    /// congestion-class) is a corpus-class generative-web world
    /// (0 disables the class).
    pub corpus_every: usize,
    /// Root seed; case seeds derive from it deterministically.
    pub root_seed: u64,
    /// Where to write the regression seed file on failure (`None`
    /// disables).
    pub regression_path: Option<PathBuf>,
    /// Every n-th case additionally runs the transport-equivalence
    /// oracle — thread vs process backend, byte-identical — when the
    /// `case_worker` binary is resolvable next to the running
    /// executable (0 disables).
    pub transport_every: usize,
    /// Every n-th case additionally runs the streaming-equivalence
    /// oracle — exact vs bounded-memory analytics at {1, 2} shards,
    /// identical verdicts, plus zero false positives on uncensored
    /// worlds under ingest shedding (0 disables).
    pub streaming_every: usize,
}

impl Default for SimCheckConfig {
    fn default() -> Self {
        SimCheckConfig {
            cases: 200,
            detector_every: 5,
            congestion_every: 6,
            corpus_every: 7,
            root_seed: 0x51AC_4EC4,
            regression_path: Some(PathBuf::from("results/simcheck-regressions.txt")),
            transport_every: 4,
            streaming_every: 5,
        }
    }
}

/// Aggregate outcome of a budgeted run — the `results/simcheck.json`
/// artifact.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SimCheckReport {
    /// Worlds checked.
    pub cases_run: usize,
    /// Of which equivalence-class.
    pub equivalence_cases: usize,
    /// Of which detector-class.
    pub detector_cases: usize,
    /// Of which congestion-class.
    pub congestion_cases: usize,
    /// Of which corpus-class.
    pub corpus_cases: usize,
    /// Of which carried some censor model.
    pub censored_cases: usize,
    /// Of which also ran the transport-equivalence oracle (0 when the
    /// `case_worker` binary was not resolvable or the schedule disabled
    /// it).
    pub transport_cases: usize,
    /// Of which also ran the streaming-equivalence oracle.
    pub streaming_cases: usize,
    /// Streaming cases whose shedding variant actually dropped
    /// submissions — how often the zero-false-positive-under-drops
    /// check was exercised rather than vacuous.
    pub streaming_drop_cases: usize,
    /// Every violation found (empty = all invariants upheld).
    pub violations: Vec<Violation>,
}

impl SimCheckReport {
    /// Whether every generated world upheld every invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Derive the `i`-th case seed from the root (splitmix64 step — the
/// same scrambling the vendored proptest uses for nearby seeds).
fn case_seed(root: u64, index: usize) -> u64 {
    sim_core::splitmix_mix(root ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The class the `i`-th case of a run draws from.
fn class_for(config: &SimCheckConfig, index: usize) -> CaseClass {
    if config.detector_every > 0 && index.is_multiple_of(config.detector_every) {
        CaseClass::Detector
    } else if config.congestion_every > 0 && index.is_multiple_of(config.congestion_every) {
        CaseClass::Congestion
    } else if config.corpus_every > 0 && index.is_multiple_of(config.corpus_every) {
        CaseClass::Corpus
    } else {
        CaseClass::Equivalence
    }
}

/// Replay one `(class, seed)` pair from a regression file: regenerate
/// exactly that world and re-run its oracles. When the `case_worker`
/// binary is resolvable the transport-equivalence oracle re-runs too,
/// so transport regressions replay with the same command as the rest.
pub fn replay(class: CaseClass, seed: u64) -> Vec<Violation> {
    let case = WorldCase::from_seed(class, seed);
    let mut violations = check_case(&case);
    if let Some(worker) = population::transport::sibling_worker(CASE_WORKER) {
        violations.extend(check_transport(&case, &worker));
    } else {
        eprintln!(
            "[simcheck] replay: {CASE_WORKER} binary not found next to this executable; \
             skipping the transport oracle"
        );
    }
    violations.extend(check_streaming_case(&case).0);
    violations
}

/// Run a bounded case budget and aggregate the report. Progress goes to
/// stderr (one line every 25 cases); violations also print as they are
/// found so a long CI run fails loudly, not silently at the end.
pub fn run_budget(config: &SimCheckConfig) -> SimCheckReport {
    let mut report = SimCheckReport::default();
    let worker = if config.transport_every > 0 {
        let resolved = population::transport::sibling_worker(CASE_WORKER);
        if resolved.is_none() {
            eprintln!(
                "[simcheck] {CASE_WORKER} binary not found next to this executable; \
                 transport oracle disabled for this run"
            );
        }
        resolved
    } else {
        None
    };
    for i in 0..config.cases {
        let class = class_for(config, i);
        let seed = case_seed(config.root_seed, i);
        let case = WorldCase::from_seed(class, seed);
        match class {
            CaseClass::Detector => report.detector_cases += 1,
            CaseClass::Equivalence => report.equivalence_cases += 1,
            CaseClass::Congestion => report.congestion_cases += 1,
            CaseClass::Corpus => report.corpus_cases += 1,
        }
        if !case.is_uncensored() {
            report.censored_cases += 1;
        }
        let mut violations = check_case(&case);
        if let Some(worker) = &worker {
            if config.transport_every > 0 && i.is_multiple_of(config.transport_every) {
                violations.extend(check_transport(&case, worker));
                report.transport_cases += 1;
            }
        }
        if config.streaming_every > 0 && i.is_multiple_of(config.streaming_every) {
            let (streaming_violations, drops_active) = check_streaming_case(&case);
            violations.extend(streaming_violations);
            report.streaming_cases += 1;
            if drops_active {
                report.streaming_drop_cases += 1;
            }
        }
        for v in &violations {
            eprintln!(
                "[simcheck] VIOLATION case {i} (class {:?}, seed {:#x}) oracle {}: {}",
                v.class, v.seed, v.oracle, v.detail
            );
        }
        report.violations.extend(violations);
        report.cases_run += 1;
        if (i + 1) % 25 == 0 {
            eprintln!(
                "[simcheck] {}/{} worlds checked, {} violation(s)",
                i + 1,
                config.cases,
                report.violations.len()
            );
        }
    }
    if !report.passed() {
        if let Some(path) = &config.regression_path {
            write_regressions(path, &report.violations);
        }
    }
    report
}

/// Write the regression seed file: one `class=… seed=…` line per
/// failing case plus a replay hint.
fn write_regressions(path: &Path, violations: &[Violation]) {
    let mut lines = vec![
        "# simcheck regression seeds — replay with:".to_string(),
        "#   cargo run --release -p bench --bin simcheck -- --replay <class>:<seed>".to_string(),
    ];
    let mut seen = std::collections::BTreeSet::new();
    for v in violations {
        let class = match v.class {
            CaseClass::Equivalence => "equivalence",
            CaseClass::Detector => "detector",
            CaseClass::Congestion => "congestion",
            CaseClass::Corpus => "corpus",
        };
        if seen.insert((class, v.seed)) {
            lines.push(format!(
                "class={class} seed={:#x} oracle={}",
                v.seed, v.oracle
            ));
        }
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if std::fs::write(path, lines.join("\n") + "\n").is_ok() {
        eprintln!("[simcheck] regression seeds written to {path:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_stable_and_spread() {
        let a: Vec<u64> = (0..8).map(|i| case_seed(7, i)).collect();
        let b: Vec<u64> = (0..8).map(|i| case_seed(7, i)).collect();
        assert_eq!(a, b, "derivation must be deterministic");
        let mut uniq = a.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "seeds must not collide trivially");
        assert_ne!(case_seed(7, 0), case_seed(8, 0), "root seed matters");
    }

    #[test]
    fn class_schedule_interleaves() {
        let config = SimCheckConfig {
            cases: 15,
            detector_every: 5,
            congestion_every: 6,
            corpus_every: 7,
            ..SimCheckConfig::default()
        };
        let classes: Vec<CaseClass> = (0..15).map(|i| class_for(&config, i)).collect();
        assert_eq!(
            classes
                .iter()
                .filter(|c| **c == CaseClass::Detector)
                .count(),
            3, // indices 0, 5, 10
        );
        // Detector wins shared multiples (index 0); congestion takes the
        // rest of its schedule (indices 6 and 12 here), and corpus the
        // rest of its own (indices 7 and 14).
        assert_eq!(
            classes
                .iter()
                .filter(|c| **c == CaseClass::Congestion)
                .count(),
            2,
        );
        assert_eq!(classes[6], CaseClass::Congestion);
        assert_eq!(
            classes.iter().filter(|c| **c == CaseClass::Corpus).count(),
            2,
        );
        assert_eq!(classes[7], CaseClass::Corpus);
        assert_eq!(classes[14], CaseClass::Corpus);
        let none = SimCheckConfig {
            detector_every: 0,
            congestion_every: 0,
            corpus_every: 0,
            ..config
        };
        assert!((0..15).all(|i| class_for(&none, i) == CaseClass::Equivalence));
    }

    #[test]
    fn regression_file_round_trips_the_failing_case() {
        let dir = std::env::temp_dir().join("simcheck-regression-test");
        let path = dir.join("regressions.txt");
        let case = WorldCase::from_seed(CaseClass::Equivalence, 42);
        let violations = vec![Violation {
            seed: 42,
            class: CaseClass::Equivalence,
            oracle: "unit-test",
            detail: "synthetic".to_string(),
            case,
        }];
        write_regressions(&path, &violations);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("class=equivalence seed=0x2a oracle=unit-test"));
        assert!(text.contains("--replay"), "file must carry the repro hint");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
