//! # simcheck — generative differential checking of the world engine
//!
//! The equivalence harnesses under `tests/` prove the sharded world
//! engine sound on *hand-picked* scenarios (the Turkey timeline, the
//! §7.2 censor registry). This crate turns those invariants into
//! **properties over the whole scenario space**: a proptest-driven
//! generator ([`generator`]) draws arbitrary [`population::WorldRecipe`]s
//! — arrival modes × policy timelines × adaptive censors × housekeeping
//! cadences — and a differential oracle ([`oracle`]) checks each
//! generated world against the contracts the engine claims:
//!
//! 1. **Lockstep** — serial `WorldEngine::from_recipe` output is
//!    byte-identical to a 1-shard `run_sharded_world` (outcome,
//!    collection store, and their serialized JSON).
//! 2. **Reproducibility** — a fixed `(seed, shards)` pair replays byte
//!    for byte.
//! 3. **Merge algebra** — hand-built per-shard outcomes merge
//!    associatively, and folding them by hand equals the engine's own
//!    shard-order merge.
//! 4. **Verdict invariance** — on statistically powered worlds, the
//!    §7.2 windowed detector's per-day flag series and onset/lift
//!    localisation agree across {1, 2, 4} shards.
//! 5. **Detector soundness** — zero detections on generated uncensored
//!    worlds; on censored ones, onset and lift localise within one
//!    rollup period of the generated ground truth (the case's own
//!    censor schedule playing the role of the censor registry).
//! 6. **Congestion soundness** — routed worlds with a transit-link
//!    brownout keep the whole exact-replay algebra, and the detector
//!    tells censorship from congestion: congested-but-uncensored worlds
//!    yield zero detections, DNS blocks riding congested paths still
//!    localise exactly, and a brownout opening before the block neither
//!    advances nor masks the detected onset.
//! 7. **Transport equivalence** ([`transport`]) — the frame-protocol
//!    process backend reproduces the in-process thread backend byte for
//!    byte (outcome, collection, per-shard reports, and serialized
//!    JSON) at {1, 3} shards, over every generated class.
//! 8. **Streaming equivalence** — re-running the same world with
//!    bounded-memory analytics (count-min sketch + reservoir + windowed
//!    fold-and-evict) leaves the simulation byte-identical and every
//!    detector verdict unchanged at {1, 2} shards, and an uncensored
//!    world whose under-provisioned ingest queue sheds submissions
//!    still yields zero false positives.
//! 9. **Corpus soundness** — worlds measuring two sites of a seeded
//!    generative [`websim::corpus::Corpus`] (instead of the constant
//!    probe server) keep verdict invariance and localisation against
//!    the censored rank-0 site, while the rank-1 site — which may
//!    suffer a globally visible *benign* origin outage — never appears
//!    in any windowed detection, for any country.
//!
//! The [`runner`] executes a bounded case budget (CI: ≥ 200 worlds),
//! and on failure writes a regression seed file so a failing case can
//! be replayed exactly (`runner::replay`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod generator;
pub mod oracle;
pub mod runner;
pub mod transport;

pub use generator::{
    ArrivalMode, BlockKind, CaseClass, CensorModel, CongestionShape, CongestionSpec,
    CorpusCaseSpec, WorldCase, TARGET,
};
pub use oracle::{check_case, check_streaming_case, localise_transitions, Violation};
pub use runner::{replay, run_budget, SimCheckConfig, SimCheckReport};
pub use transport::{check_transport, CaseSpec, CASE_WORKER};
