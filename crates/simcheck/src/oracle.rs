//! The differential oracles one generated world is checked against.
//!
//! Every oracle is a *contract the engine already claims* — this module
//! just asserts it over arbitrary generated inputs instead of
//! hand-picked fixtures. Exact-replay oracles (lockstep,
//! reproducibility, merge algebra) run on every case; the statistical
//! oracles (verdict invariance, localisation, false-positive freedom)
//! run only on [`CaseClass::Detector`] cases, whose generator keeps the
//! detector away from decision boundaries.

use crate::generator::{ArrivalMode, CaseClass, CongestionShape, WorldCase};
use encore::geo::GeoDb;
use encore::inference::{congestion_evidence, FilteringDetector};
use encore::StoredMeasurement;
use netsim::geo::{CountryCode, World};
use population::shard::{shard_rngs, ShardContext};
use population::{
    merge_in_order, run_sharded_world, shard_recipe, Audience, Merge, ShardedWorldRun,
    StreamingSpec, WorldEngine, WorldOutcome, WorldRecipe,
};
use serde::Serialize;
use sim_core::{SimDuration, SimRng};

/// One invariant violation found by [`check_case`].
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// The generating seed (with the class, the whole repro recipe).
    pub seed: u64,
    /// Which oracle family the case belonged to.
    pub class: CaseClass,
    /// Which oracle tripped.
    pub oracle: &'static str,
    /// What disagreed.
    pub detail: String,
    /// The generated world, for the report.
    pub case: WorldCase,
}

fn audience() -> Audience {
    Audience::world(&World::builtin())
}

/// The §7.2 windowed verdict for one `(country, domain)` pair:
/// per-window flag series plus localised onset/lift windows. One
/// rollup-period-sized window per detector run — the same judgment rule
/// the Turkey timeline fixture uses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Judgment {
    /// `(window index, flagged)` per detector window with data.
    pub windows: Vec<(u64, bool)>,
    /// First flagged window.
    pub onset: Option<u64>,
    /// First clear window after the onset.
    pub lift: Option<u64>,
}

pub use encore::inference::localise_transitions;

/// Run the windowed detector and localise transitions for `cc:domain`
/// (the constant [`crate::generator::TARGET`] for most classes, the
/// corpus' rank-0 site
/// for corpus cases).
pub fn judge(
    records: &[StoredMeasurement],
    geo: &GeoDb,
    cc: CountryCode,
    domain: &str,
    window: SimDuration,
) -> Judgment {
    let reports = FilteringDetector::default().detect_windows(records, geo, window);
    let windows: Vec<(u64, bool)> = reports
        .iter()
        .map(|r| {
            let flagged = r
                .detections
                .iter()
                .any(|d| d.country == cc && d.domain == domain);
            (r.window, flagged)
        })
        .collect();
    let (onset, lift) = localise_transitions(windows.iter().copied());
    Judgment {
        windows,
        onset,
        lift,
    }
}

impl Judgment {
    /// The verdict proper: which windows are flagged, and where the
    /// transitions localise. Unflagged windows are *not* part of the
    /// verdict — whether a trailing window exists at all depends on
    /// whether some visit near the horizon delivered its record just
    /// past it, which varies with the shard count's arrival draws
    /// without meaning anything.
    pub fn verdict(&self) -> (Vec<u64>, Option<u64>, Option<u64>) {
        let flagged = self
            .windows
            .iter()
            .filter(|(_, f)| *f)
            .map(|(w, _)| *w)
            .collect();
        (flagged, self.onset, self.lift)
    }
}

/// The serialized byte-image of a run's outputs — what "byte-identical"
/// means across every oracle here (and in the transport oracle).
pub(crate) fn byte_image(
    outcome: &WorldOutcome,
    collection: &encore::CollectionSnapshot,
) -> (String, String, String) {
    (
        serde_json::to_string(&outcome.report).expect("report serializes"),
        serde_json::to_string(&outcome.rollups).expect("rollups serialize"),
        serde_json::to_string(collection).expect("collection serializes"),
    )
}

struct CaseChecker<'a> {
    case: &'a WorldCase,
    recipe: WorldRecipe,
    audience: Audience,
    violations: Vec<Violation>,
}

impl<'a> CaseChecker<'a> {
    fn fail(&mut self, oracle: &'static str, detail: String) {
        self.violations.push(Violation {
            seed: self.case.seed,
            class: self.case.class,
            oracle,
            detail,
            case: self.case.clone(),
        });
    }

    fn sharded(&self, shards: usize) -> ShardedWorldRun {
        self.sharded_with(&self.recipe, shards)
    }

    fn sharded_with(&self, recipe: &WorldRecipe, shards: usize) -> ShardedWorldRun {
        run_sharded_world(
            &|ctx| self.case.build(ctx),
            &self.audience,
            recipe,
            shards,
            self.case.seed,
        )
    }

    /// Oracle 1 — lockstep: the serial engine and a 1-shard sharded run
    /// are byte-identical (structural equality *and* serialized JSON).
    fn check_lockstep(&mut self) -> ShardedWorldRun {
        let (mut net, mut sys) = self.case.build(ShardContext {
            index: 0,
            shards: 1,
        });
        let mut rng = SimRng::new(self.case.seed);
        let serial =
            WorldEngine::from_recipe(&mut net, &mut sys, &self.audience, &self.recipe, &mut rng)
                .run();
        let serial_collection = sys.collection.snapshot();

        let one = self.sharded(1);
        if one.outcome != serial {
            self.fail(
                "serial-vs-1shard",
                "1-shard WorldOutcome differs from the serial engine's".to_string(),
            );
        }
        if one.collection != serial_collection {
            self.fail(
                "serial-vs-1shard",
                "1-shard collection store differs from the serial engine's".to_string(),
            );
        }
        let serial_bytes = byte_image(&serial, &serial_collection);
        let sharded_bytes = byte_image(&one.outcome, &one.collection);
        if serial_bytes != sharded_bytes {
            self.fail(
                "serial-vs-1shard",
                "serialized JSON artifacts differ between serial and 1-shard runs".to_string(),
            );
        }
        self.check_control_plane("serial control plane", &serial);
        one
    }

    /// Oracle 2 — fixed-seed reproducibility at 2 shards.
    fn check_reproducibility(&mut self) {
        let a = self.sharded(2);
        let b = self.sharded(2);
        if byte_image(&a.outcome, &a.collection) != byte_image(&b.outcome, &b.collection)
            || a.outcome.log != b.outcome.log
        {
            self.fail(
                "byte-reproducibility",
                "two (seed, 2-shard) runs disagreed byte-for-byte".to_string(),
            );
        }
    }

    /// Oracle 3 — merge algebra: hand-built per-shard outcomes merge
    /// associatively, and the hand fold equals the engine's own merge.
    fn check_merge_algebra(&mut self) {
        const SHARDS: usize = 3;
        let rngs = shard_rngs(self.case.seed, SHARDS);
        let outcomes: Vec<WorldOutcome> = rngs
            .into_iter()
            .enumerate()
            .map(|(index, mut rng)| {
                let ctx = ShardContext {
                    index,
                    shards: SHARDS,
                };
                let (mut net, mut sys) = self.case.build(ctx);
                let sharded = shard_recipe(&self.recipe, SHARDS, index);
                WorldEngine::from_recipe(&mut net, &mut sys, &self.audience, &sharded, &mut rng)
                    .run()
            })
            .collect();
        let [a, b, c] = <[WorldOutcome; 3]>::try_from(outcomes).expect("three shards");

        let left = a.clone().merge(b.clone()).merge(c.clone());
        let right = a.clone().merge(b.clone().merge(c.clone()));
        if left != right {
            self.fail(
                "merge-associativity",
                "(a ⊕ b) ⊕ c != a ⊕ (b ⊕ c) over sampled shard outcomes".to_string(),
            );
        }
        let hand = merge_in_order([a, b, c]).expect("non-empty");
        let engine = self.sharded(SHARDS);
        if hand != engine.outcome {
            self.fail(
                "merge-vs-engine",
                "hand-folded shard outcomes differ from the engine's merged outcome".to_string(),
            );
        }
    }

    /// Control-plane conservation: every run reports exactly the
    /// scheduled policy changes and control signals applied.
    fn check_control_plane(&mut self, ctx: &'static str, outcome: &WorldOutcome) {
        if outcome.policy_changes_applied != self.case.expected_policy_changes() {
            self.fail(
                "control-plane",
                format!(
                    "{ctx}: {} policy changes applied, expected {}",
                    outcome.policy_changes_applied,
                    self.case.expected_policy_changes()
                ),
            );
        }
        if outcome.control_signals_applied != self.case.expected_control_signals() {
            self.fail(
                "control-plane",
                format!(
                    "{ctx}: {} control signals applied, expected {}",
                    outcome.control_signals_applied,
                    self.case.expected_control_signals()
                ),
            );
        }
    }

    /// Shared statistical oracle: verdict invariance across {1, 2, 4}
    /// shards. Returns the 1-shard baseline judgment the shape checks
    /// run against.
    fn check_verdict_invariance(&mut self, one: &ShardedWorldRun, window: SimDuration) -> Judgment {
        let domain = self.case.target_domain();
        let judgments: Vec<(usize, Judgment, ShardedWorldRun)> = [2usize, 4]
            .into_iter()
            .map(|shards| {
                let run = self.sharded(shards);
                let j = judge(
                    &run.collection.records,
                    &run.geo,
                    self.case.country,
                    &domain,
                    window,
                );
                (shards, j, run)
            })
            .collect();
        let baseline = judge(
            &one.collection.records,
            &one.geo,
            self.case.country,
            &domain,
            window,
        );

        for (shards, j, run) in &judgments {
            self.check_control_plane("sharded control plane", &run.outcome);
            if j.verdict() != baseline.verdict() {
                self.fail(
                    "verdict-invariance",
                    format!(
                        "{shards}-shard verdict differs from 1-shard: {:?} vs {:?}",
                        j.verdict(),
                        baseline.verdict()
                    ),
                );
            }
        }
        baseline
    }

    /// Shared statistical oracle: nothing anywhere — no country, no
    /// domain, whole-run or windowed — may be flagged on an uncensored
    /// world.
    fn check_fp_freedom(&mut self, one: &ShardedWorldRun, window: SimDuration) {
        let whole_run = FilteringDetector::default().detect(&one.collection.records, &one.geo);
        if !whole_run.is_empty() {
            self.fail(
                "detector-fp",
                format!("uncensored world produced detections: {whole_run:?}"),
            );
        }
        let windowed =
            FilteringDetector::default().detect_windows(&one.collection.records, &one.geo, window);
        if windowed.iter().any(|w| !w.detections.is_empty()) {
            self.fail(
                "detector-fp",
                "uncensored world produced windowed detections".to_string(),
            );
        }
    }

    /// Shared statistical oracle: the baseline judgment localises the
    /// ground-truth block window within one rollup period at each
    /// boundary, and flags nothing outside it.
    fn check_localisation(&mut self, baseline: &Judgment, onset_day: u64, lift_day: u64) {
        match baseline.onset {
            Some(d) if (onset_day..=onset_day + 1).contains(&d) => {}
            other => self.fail(
                "localisation",
                format!("onset detected at {other:?}, ground truth day {onset_day}"),
            ),
        }
        match baseline.lift {
            Some(d) if (lift_day..=lift_day + 1).contains(&d) => {}
            other => self.fail(
                "localisation",
                format!("lift detected at {other:?}, ground truth day {lift_day}"),
            ),
        }
        // And nothing outside the window (±1 rollup period of slop at
        // each boundary) may be flagged.
        for (w, flagged) in &baseline.windows {
            let censored_core = (onset_day + 1..lift_day).contains(w);
            let boundary = *w == onset_day || *w == lift_day;
            if *flagged && !censored_core && !boundary {
                self.fail(
                    "localisation",
                    format!("clear window {w} flagged outside the censored span"),
                );
            }
            if !*flagged && censored_core {
                self.fail("localisation", format!("censored window {w} not flagged"));
            }
        }
    }

    /// Oracles 4–5 — detector statistics: verdict invariance across
    /// {1, 2, 4} shards, onset/lift localisation within one rollup
    /// period of the generated ground truth, and zero detections on
    /// uncensored worlds.
    fn check_detector(&mut self, one: &ShardedWorldRun) {
        let window = SimDuration::from_secs(self.case.rollup_secs);
        let baseline = self.check_verdict_invariance(one, window);
        if self.case.is_uncensored() {
            self.check_fp_freedom(one, window);
        } else if let Some((onset_day, lift_day)) = self.case.hard_window_days() {
            self.check_localisation(&baseline, onset_day, lift_day);
        }
    }

    /// Oracles 6–8 — congestion soundness, per [`CongestionShape`]:
    ///
    /// * `CongestedUncensored` — a transit brownout alone must never be
    ///   read as censorship, anywhere.
    /// * `CensoredOnCongestedPath` — a DNS-stage block riding a
    ///   congested path must still localise exactly.
    /// * `MaskingOnset` — a brownout opening days before the block must
    ///   neither advance the detected onset into its brownout-only days
    ///   nor mask the true onset.
    ///
    /// Plus the evidence channel itself: on worlds with censor-free
    /// brownout days, the collection must actually carry near-source
    /// congestion signals (otherwise the FP check would pass vacuously,
    /// with nothing to discount).
    fn check_congestion(&mut self, one: &ShardedWorldRun) {
        let Some(cong) = self.case.congestion else {
            self.fail(
                "congestion-shape",
                "congestion-class case without a congestion spec".to_string(),
            );
            return;
        };
        let window = SimDuration::from_secs(self.case.rollup_secs);
        let baseline = self.check_verdict_invariance(one, window);
        match cong.shape {
            CongestionShape::CongestedUncensored => self.check_fp_freedom(one, window),
            CongestionShape::CensoredOnCongestedPath | CongestionShape::MaskingOnset => {
                let (onset_day, lift_day) = self
                    .case
                    .hard_window_days()
                    .expect("censored congestion shapes carry a block window");
                self.check_localisation(&baseline, onset_day, lift_day);
                if cong.shape == CongestionShape::MaskingOnset {
                    // The brownout-only days before onset are the trap:
                    // a congestion-credulous detector flags them.
                    let (b0, _) = cong.brownout_days;
                    for (w, flagged) in &baseline.windows {
                        if *flagged && (b0..onset_day).contains(w) {
                            self.fail(
                                "congestion-masking",
                                format!(
                                    "brownout-only window {w} flagged before the true onset \
                                     (brownout from {b0}, block from {onset_day})"
                                ),
                            );
                        }
                    }
                }
            }
        }
        if matches!(
            cong.shape,
            CongestionShape::CongestedUncensored | CongestionShape::MaskingOnset
        ) {
            // Censor-free brownout days exist, so the censored country
            // reaches the congested transit hop and some of its sheds
            // must come back as signaled, submitted failures.
            let evidence = congestion_evidence(&one.collection.records, &one.geo);
            if !evidence.iter().any(|a| a.signaled_failures > 0) {
                self.fail(
                    "congestion-evidence",
                    "brownout world carried no near-source congestion signals".to_string(),
                );
            }
        }
    }
    /// Oracles 10–11 — generative-corpus soundness: verdict invariance
    /// and (when censored) localisation against the corpus' rank-0
    /// site, plus the *benignity* oracle — the measured rank-1 site,
    /// which may suffer a globally visible benign origin outage, must
    /// never appear in any windowed detection, for any country. The
    /// cross-region control is what absorbs the outage: everyone fails
    /// together, so no country stands out.
    ///
    /// Disrupted-but-uncensored worlds deliberately check *windowed*
    /// false-positive freedom only: a day-granular outage pulls a
    /// domain's whole-run success rate right onto the detector's
    /// decision threshold, where the whole-run aggregate verdict is not
    /// promised either way. Windowed cells stay decisive — healthy days
    /// pass decisively, outage days fail globally.
    fn check_corpus(&mut self, one: &ShardedWorldRun) {
        let Some(spec) = self.case.corpus else {
            self.fail(
                "corpus-shape",
                "corpus-class case without a corpus spec".to_string(),
            );
            return;
        };
        let window = SimDuration::from_secs(self.case.rollup_secs);
        let baseline = self.check_verdict_invariance(one, window);
        if self.case.is_uncensored() && spec.disruption.is_none() {
            self.check_fp_freedom(one, window);
        } else if let Some((onset_day, lift_day)) = self.case.hard_window_days() {
            self.check_localisation(&baseline, onset_day, lift_day);
        }

        let ArrivalMode::Deployment { days, .. } = self.case.arrival else {
            self.fail(
                "corpus-shape",
                "corpus-class case without a day horizon".to_string(),
            );
            return;
        };
        let companion = self
            .case
            .companion_domain()
            .expect("corpus cases measure a companion domain");
        let windowed =
            FilteringDetector::default().detect_windows(&one.collection.records, &one.geo, window);
        // A trailing partial window past the horizon exists or not
        // depending on arrival draws; the benignity contract covers the
        // full days only (same rule the world-report fixture pins).
        for report in windowed.iter().filter(|r| r.window < days) {
            for d in &report.detections {
                if d.domain == companion {
                    self.fail(
                        "corpus-benignity",
                        format!(
                            "benign companion {companion} flagged in window {} for {} \
                             (disruption {:?})",
                            report.window, d.country, spec.disruption
                        ),
                    );
                }
                if self.case.is_uncensored() {
                    self.fail(
                        "corpus-benignity",
                        format!(
                            "uncensored corpus world flagged {}:{} in window {}",
                            d.country, d.domain, report.window
                        ),
                    );
                }
            }
        }
    }

    /// Oracle 9 — streaming equivalence: re-running the same generated
    /// world with bounded-memory analytics (sketch + reservoir +
    /// windowed fold-and-evict) must neither perturb the simulation
    /// (log and report byte-identical at each shard count) nor change a
    /// single detector verdict: the window reports judged from the
    /// merged streaming matrices equal exact windowed detection over
    /// the full record log. A second, deliberately under-provisioned
    /// ingest queue then sheds traffic on uncensored worlds — lost
    /// records may cost power, but must never invent censorship.
    /// Returns whether the shed variant actually dropped something (so
    /// the runner can report how often that check was non-vacuous).
    fn check_streaming(&mut self) -> bool {
        let window = SimDuration::from_secs(self.case.rollup_secs);
        let streaming_recipe = self
            .recipe
            .clone()
            .with_streaming(StreamingSpec::with_window(window));
        let det = FilteringDetector::default();
        for shards in [1usize, 2] {
            let exact = self.sharded(shards);
            let streamed = self.sharded_with(&streaming_recipe, shards);
            if streamed.outcome.log != exact.outcome.log
                || streamed.outcome.report != exact.outcome.report
            {
                self.fail(
                    "streaming-lockstep",
                    format!("{shards}-shard streaming run perturbed the visit stream or report"),
                );
            }
            if !streamed.collection.records.is_empty() {
                self.fail(
                    "streaming-bounded",
                    format!(
                        "{shards}-shard streaming run kept {} exact records",
                        streamed.collection.records.len()
                    ),
                );
            }
            let Some(stats) = streamed.collection.streaming.as_ref() else {
                self.fail(
                    "streaming-stats",
                    format!("{shards}-shard streaming run carried no StreamingStats"),
                );
                continue;
            };
            if stats.accepted != exact.collection.records.len() as u64 || stats.drops.total() != 0 {
                self.fail(
                    "streaming-accounting",
                    format!(
                        "{shards}-shard: accepted {} / dropped {} vs {} exact records",
                        stats.accepted,
                        stats.drops.total(),
                        exact.collection.records.len(),
                    ),
                );
            }
            if det.judge_streamed(stats)
                != det.detect_windows(&exact.collection.records, &exact.geo, window)
            {
                self.fail(
                    "streaming-verdict",
                    format!("{shards}-shard streamed window reports differ from exact detection"),
                );
            }
        }
        let mut drops_active = false;
        if self.case.is_uncensored() {
            let mut spec = StreamingSpec::with_window(window);
            spec.config.queue_capacity = 4;
            spec.config.drain_per_sec = 1;
            let shed = self.sharded_with(&self.recipe.clone().with_streaming(spec), 2);
            match shed.collection.streaming.as_ref() {
                Some(stats) => {
                    drops_active = stats.drops.total() > 0;
                    let reports = det.judge_streamed(stats);
                    if reports.iter().any(|r| !r.detections.is_empty()) {
                        self.fail(
                            "streaming-shed-fp",
                            format!(
                                "uncensored world under ingest shedding ({} drops) produced \
                                 detections",
                                stats.drops.total()
                            ),
                        );
                    }
                }
                None => self.fail(
                    "streaming-stats",
                    "shed streaming run carried no StreamingStats".to_string(),
                ),
            }
        }
        drops_active
    }
}

/// Run the streaming-equivalence oracle on one generated world (the
/// runner schedules this on every `streaming_every`-th case). Returns
/// the violations plus whether the shedding variant actually dropped
/// submissions (i.e. the zero-false-positive-under-drops check was
/// exercised, not vacuous).
pub fn check_streaming_case(case: &WorldCase) -> (Vec<Violation>, bool) {
    let mut checker = CaseChecker {
        case,
        recipe: case.recipe(),
        audience: audience(),
        violations: Vec::new(),
    };
    let drops_active = checker.check_streaming();
    (checker.violations, drops_active)
}

/// Check one generated world against every applicable oracle. Returns
/// the violations found (empty = the case upholds all invariants).
pub fn check_case(case: &WorldCase) -> Vec<Violation> {
    let mut checker = CaseChecker {
        case,
        recipe: case.recipe(),
        audience: audience(),
        violations: Vec::new(),
    };
    let one = checker.check_lockstep();
    match case.class {
        CaseClass::Equivalence => {
            checker.check_reproducibility();
            checker.check_merge_algebra();
        }
        CaseClass::Detector => {
            checker.check_detector(&one);
        }
        CaseClass::Congestion => {
            // Routed worlds must keep the whole exact-replay algebra
            // *and* pass the congestion-vs-censorship soundness oracles.
            checker.check_merge_algebra();
            checker.check_congestion(&one);
        }
        CaseClass::Corpus => {
            checker.check_corpus(&one);
        }
    }
    checker.violations
}
