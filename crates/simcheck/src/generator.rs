//! The arbitrary-world generator.
//!
//! A [`WorldCase`] is a plain-data description of one generated world:
//! its arrival process, its censorship model (none, a scheduled
//! install/lift timeline, an adaptive censor driven by scheduled
//! reactions, or a traffic-reactive K-threshold censor), and its
//! housekeeping cadences. Cases come in two classes with different
//! sampling ranges:
//!
//! * [`CaseClass::Equivalence`] — tiny worlds (tens to hundreds of
//!   visits) drawn from the *widest* space: both arrival modes, every
//!   mechanism including probabilistic throttling, arbitrary
//!   (non-day-aligned) change times, lying poison TTLs up to days, and
//!   self-triggered reactive censors. These feed the exact-replay
//!   oracles (lockstep, reproducibility, merge algebra), which hold for
//!   *any* recipe.
//! * [`CaseClass::Detector`] — statistically powered worlds shaped like
//!   the Turkey fixture (≈1.5k visits/day over 6–9 days): hard-block
//!   mechanisms only, day-aligned onset/lift, short poison TTLs, and
//!   censored countries with enough audience share that every censored
//!   day cell clears the detector's minimum-n guard decisively. These
//!   additionally feed the statistical oracles (verdict invariance
//!   across shard counts, onset/lift localisation, false-positive
//!   freedom), which are only guaranteed away from decision boundaries
//!   — the generator's job is to stay away from them.
//!
//! Generation implements the vendored `proptest` [`Strategy`] trait, so
//! cases compose with `proptest!` tests and the budgeted runner alike,
//! and every case embeds the seed that produced it: `WorldCase::from_seed
//! (class, seed)` is the whole reproduction recipe.

use censor::adaptive::{AdaptiveSpec, Reaction, ReactionPolicy, Stage};
use censor::policy::{CensorPolicy, Mechanism};
use censor::timeline::{CensorSpec, PolicyChange, PolicyTimeline};
use encore::coordination::SchedulingStrategy;
use encore::delivery::OriginSite;
use encore::system::EncoreSystem;
use netsim::geo::{country, CountryCode};
use netsim::http::{ContentType, HttpResponse};
use netsim::network::Network;
use netsim::scenario::{NetworkScenario, WorldScenario, WorldSpec};
use netsim::TopologyConfig;
use population::shard::ShardContext;
use population::{BatchConfig, DeploymentConfig, WorldRecipe};
use proptest::{Strategy, TestRng};
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimRng, SimTime};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// The measurement-target domain every generated world installs.
pub const TARGET: &str = "probe-target.example";

/// Diagnostic name of the generated censor (scheduled or adaptive).
pub const CENSOR_NAME: &str = "simcheck-censor";

/// Which oracle family a case feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaseClass {
    /// Exact-replay oracles over the widest recipe space.
    Equivalence,
    /// Statistical oracles over detector-powered worlds.
    Detector,
    /// Routed detector-powered worlds with a transit-link brownout:
    /// exact-replay oracles plus the congestion-soundness oracles
    /// (verdict invariance, false-positive freedom on congested but
    /// uncensored worlds, localisation despite congestion).
    Congestion,
    /// Detector-powered worlds whose measured targets are sites of a
    /// seeded generative [`websim::corpus::Corpus`] instead of the
    /// constant probe server: the censor (when present) blocks the
    /// corpus' rank-0 domain, a second measured rank-1 domain may
    /// suffer a *benign* day-aligned origin outage, and the oracles add
    /// a benignity check — the disrupted domain must never be flagged
    /// as censored anywhere.
    Corpus,
}

/// The generative-web layer of a [`CaseClass::Corpus`] case.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CorpusCaseSpec {
    /// Sites in the generated corpus.
    pub num_domains: usize,
    /// Zipf popularity exponent.
    pub zipf_exponent: f64,
    /// The corpus' own seed (independent of the case seed, mirroring
    /// how a standing web outlives any one measurement campaign).
    pub corpus_seed: u64,
    /// Day-aligned benign origin outage `[start, end)` on the rank-1
    /// site, if any.
    pub disruption: Option<(u64, u64)>,
}

impl CorpusCaseSpec {
    /// Generate this case's corpus — a pure function of the spec, so
    /// every shard (and every oracle re-run) sees identical content.
    pub fn corpus(&self) -> websim::corpus::Corpus {
        let cfg = websim::corpus::CorpusConfig {
            web: websim::generator::WebConfig {
                num_domains: self.num_domains,
                median_pages_per_domain: 4.0,
                ..websim::generator::WebConfig::default()
            },
            zipf_exponent: self.zipf_exponent,
            cross_links_per_site: 1,
        };
        websim::corpus::Corpus::generate(&cfg, &mut SimRng::new(self.corpus_seed))
            .expect("generated corpus specs are valid")
    }
}

/// The generated arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum ArrivalMode {
    /// Poisson arrivals at every origin over a day horizon.
    Deployment {
        /// Simulated days.
        days: u64,
        /// Visits per day per unit origin weight.
        rate: f64,
    },
    /// A fixed visit count at a mean gap.
    Batch {
        /// Total visits.
        visits: u64,
        /// Mean inter-arrival gap in milliseconds.
        gap_ms: u64,
    },
}

/// A hard or soft blocking mechanism for scheduled censors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum BlockKind {
    /// Forged NXDOMAIN.
    DnsNxDomain,
    /// Dropped DNS queries.
    DnsDrop,
    /// Forged answer to an unroutable sinkhole.
    DnsSinkhole,
    /// RST injection against resolved addresses.
    TcpReset,
    /// Null-routing of resolved addresses.
    IpDrop,
    /// Dropped HTTP exchanges.
    HttpDrop,
    /// Connection reset at the HTTP stage.
    HttpReset,
    /// A block page in place of the resource.
    HttpBlockPage,
    /// Probabilistic throttling (equivalence class only — the paper's
    /// "subtle" filtering the detector is *not* promised to localise).
    Throttle {
        /// Per-request drop probability.
        drop_probability: f64,
    },
}

impl BlockKind {
    fn mechanism(&self) -> Mechanism {
        match *self {
            BlockKind::DnsNxDomain => Mechanism::DnsNxDomain,
            BlockKind::DnsDrop => Mechanism::DnsDrop,
            BlockKind::DnsSinkhole => Mechanism::DnsRedirect(Ipv4Addr::new(10, 90, 90, 90)),
            BlockKind::TcpReset => Mechanism::TcpReset,
            BlockKind::IpDrop => Mechanism::IpDrop,
            BlockKind::HttpDrop => Mechanism::HttpDrop,
            BlockKind::HttpReset => Mechanism::HttpReset,
            BlockKind::HttpBlockPage => Mechanism::HttpBlockPage,
            BlockKind::Throttle { drop_probability } => Mechanism::Throttle { drop_probability },
        }
    }

    /// Whether domain rules need resolving into IP rules at install.
    fn needs_ip_resolution(&self) -> bool {
        matches!(self, BlockKind::TcpReset | BlockKind::IpDrop)
    }
}

/// The generated censorship model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum CensorModel {
    /// No censor anywhere: the false-positive control.
    None,
    /// A national censor installed and lifted by a policy timeline.
    Scheduled {
        /// Blocking mechanism.
        kind: BlockKind,
        /// Install instant.
        onset: SimTime,
        /// Lift instant.
        lift: SimTime,
    },
    /// A standing [`AdaptiveSpec`] (watch stage) driven by a scheduled
    /// [`ReactionPolicy`]: jump to `stage` at `onset`, stand down at
    /// `lift`. Broadcast control events — shard-count invariant.
    Adaptive {
        /// The stage the reaction jumps to.
        stage: Stage,
        /// Escalation instant.
        onset: SimTime,
        /// Stand-down instant.
        lift: SimTime,
        /// The lying TTL on poisoned answers, seconds.
        poison_ttl_secs: u64,
    },
    /// A standing adaptive censor that self-escalates to an IP block
    /// after observing `k` cross-origin fetches. Deterministic per
    /// shard *stream*, so exact-replay oracles hold — but deliberately
    /// **not** shard-count invariant (each shard count observes a
    /// different stream), so detector-class cases never draw it.
    Reactive {
        /// Detected-fetch threshold.
        k: u64,
    },
}

/// The three congestion-vs-censorship scenario shapes (the soundness
/// cases the detector must tell apart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CongestionShape {
    /// A transit brownout and no censor anywhere: the detector must
    /// stay completely silent.
    CongestedUncensored,
    /// A real DNS-stage block whose whole window rides a congested
    /// path: the detector must still localise onset and lift.
    CensoredOnCongestedPath,
    /// The brownout opens well before the block lands: congestion must
    /// neither advance the detected onset into the brownout-only days
    /// nor mask the true onset.
    MaskingOnset,
}

/// The routed-congestion layer of a [`CaseClass::Congestion`] case.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CongestionSpec {
    /// Scenario shape (which soundness property this world exercises).
    pub shape: CongestionShape,
    /// AS-topology seed, pre-validated so the censored country and the
    /// target country map to distinct ASes with a markable transit link
    /// between them.
    pub topology_seed: u64,
    /// Background utilisation forced onto hotspot links during the
    /// brownout (above the shed threshold, below total collapse).
    pub level: f64,
    /// Day-aligned brownout window `[start_day, end_day)`.
    pub brownout_days: (u64, u64),
}

/// One generated world: the full reproduction recipe for a simcheck
/// case.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorldCase {
    /// The seed that generated this case (also the world's RNG seed).
    pub seed: u64,
    /// Which oracle family the case feeds.
    pub class: CaseClass,
    /// Arrival process.
    pub arrival: ArrivalMode,
    /// Censorship model.
    pub censor: CensorModel,
    /// The censored country (unused for [`CensorModel::None`]).
    pub country: CountryCode,
    /// Collection rollup cadence, seconds.
    pub rollup_secs: u64,
    /// Session maintenance cadence, seconds (`None`: no maintenance).
    pub maintenance_secs: Option<u64>,
    /// Returning-visitor probability.
    pub repeat_rate: f64,
    /// Number of volunteer origins (each popularity 5.0).
    pub origins: usize,
    /// Routed-congestion layer (`None` for every non-congestion class,
    /// which keeps those cases byte-identical to their pre-topology
    /// form).
    pub congestion: Option<CongestionSpec>,
    /// Generative-web layer (`None` for every non-corpus class, which
    /// keeps those cases byte-identical to their pre-corpus form).
    pub corpus: Option<CorpusCaseSpec>,
}

/// Countries with enough audience share in the builtin world table that
/// a censored day cell decisively clears the detector's minimum-n guard
/// at detector-class arrival rates (the Turkey fixture proves the
/// weakest of these, weight 3.0, at rate 150).
const DETECTOR_COUNTRIES: [&str; 8] = ["CN", "IN", "PK", "TR", "IR", "RU", "BR", "ID"];

/// Wider country pool for equivalence-class cases (no statistical
/// requirement).
const ANY_COUNTRIES: [&str; 12] = [
    "CN", "IN", "PK", "TR", "IR", "RU", "BR", "ID", "US", "DE", "JP", "EG",
];

fn pick<T: Copy>(rng: &mut TestRng, items: &[T]) -> T {
    items[rng.index(items.len())]
}

impl WorldCase {
    /// Deterministically generate the case a `(class, seed)` pair
    /// describes — the whole reproduction recipe for a failing case.
    pub fn from_seed(class: CaseClass, seed: u64) -> WorldCase {
        let mut rng = TestRng::new(seed);
        match class {
            CaseClass::Detector => WorldCase::detector_case(seed, &mut rng),
            CaseClass::Equivalence => WorldCase::equivalence_case(seed, &mut rng),
            CaseClass::Congestion => WorldCase::congestion_case(seed, &mut rng),
            CaseClass::Corpus => WorldCase::corpus_case(seed, &mut rng),
        }
    }

    /// Corpus-class cases: detector-powered worlds measuring two sites
    /// of a small generated corpus. The censor model mirrors the
    /// detector class (day-aligned hard windows against the rank-0
    /// domain), and roughly half the cases additionally schedule a
    /// *benign* day-aligned origin outage on the measured rank-1 domain
    /// — globally visible, so the detector's cross-region control must
    /// keep it out of every verdict. The arrival rate is doubled
    /// relative to the detector class because the visit stream
    /// round-robins over two tasks: per-task daily cells keep the same
    /// decisive statistical power.
    fn corpus_case(seed: u64, rng: &mut TestRng) -> WorldCase {
        let days = rng.range_u64(6, 10); // 6..=9
        let rate = 300.0 + rng.unit() * 80.0;
        let onset_day = rng.range_u64(1, days - 3);
        let lift_day = rng.range_u64(onset_day + 2, days - 1);
        let onset = SimTime::from_secs(onset_day * 86_400);
        let lift = SimTime::from_secs(lift_day * 86_400);
        let censor = match rng.index(4) {
            0 => CensorModel::None,
            1 => {
                let stage = if rng.bool() {
                    Stage::DnsPoison
                } else {
                    Stage::IpBlock
                };
                CensorModel::Adaptive {
                    stage,
                    onset,
                    lift,
                    poison_ttl_secs: rng.range_u64(60, 601),
                }
            }
            _ => {
                let kinds = [
                    BlockKind::DnsNxDomain,
                    BlockKind::DnsDrop,
                    BlockKind::DnsSinkhole,
                    BlockKind::TcpReset,
                    BlockKind::IpDrop,
                    BlockKind::HttpDrop,
                    BlockKind::HttpReset,
                    BlockKind::HttpBlockPage,
                ];
                CensorModel::Scheduled {
                    kind: pick(rng, &kinds),
                    onset,
                    lift,
                }
            }
        };
        // Benign outages stay short (1–2 days) so the disrupted domain's
        // whole-run success rate keeps every healthy region decisively
        // passing — long global outages degenerate into the
        // nothing-passes-anywhere case the detector already skips.
        let disruption = if rng.bool() {
            let d0 = rng.range_u64(1, days - 2); // 1..=days-3
            let d1 = d0 + rng.range_u64(1, 3); // 1–2 days, ends <= days-1
            Some((d0, d1))
        } else {
            None
        };
        WorldCase {
            seed,
            class: CaseClass::Corpus,
            arrival: ArrivalMode::Deployment { days, rate },
            censor,
            country: country(pick(rng, &DETECTOR_COUNTRIES)),
            rollup_secs: 86_400,
            maintenance_secs: if rng.bool() { Some(3_600) } else { None },
            repeat_rate: rng.unit() * 0.08,
            origins: 2,
            congestion: None,
            corpus: Some(CorpusCaseSpec {
                num_domains: 4 + rng.index(4), // 4..=7
                zipf_exponent: 0.8 + rng.unit() * 0.6,
                corpus_seed: rng.next_u64(),
                disruption,
            }),
        }
    }

    /// The measured (and, when censored, blocked) domain: the corpus'
    /// rank-0 site for corpus cases, [`TARGET`] for every other class.
    pub fn target_domain(&self) -> String {
        match &self.corpus {
            Some(spec) => spec.corpus().domain(0).to_string(),
            None => TARGET.to_string(),
        }
    }

    /// The benignly measured companion domain (the corpus' rank-1
    /// site), for corpus cases only.
    pub fn companion_domain(&self) -> Option<String> {
        self.corpus
            .as_ref()
            .map(|spec| spec.corpus().domain(1).to_string())
    }

    /// A topology seed under which `cc` and the target country (US) map
    /// to distinct ASes with a markable transit link between them, so
    /// the forced hotspot actually sits on the measured path. Walks
    /// deterministically from the case's draw until one validates.
    fn validated_topology_seed(mut seed: u64, cc: CountryCode) -> u64 {
        loop {
            let mut topo = netsim::AsTopology::generate(TopologyConfig::with_seed(seed));
            if topo.ensure_hotspot_between(cc, country("US")).is_some() {
                return seed;
            }
            seed = sim_core::splitmix_mix(seed ^ 0x00C0_4657);
        }
    }

    /// Congestion-class cases: detector-powered routed worlds with a
    /// day-aligned transit brownout, in one of the three
    /// [`CongestionShape`]s. Censors, when present, are DNS-stage hard
    /// blocks — the censorship fires before the congested transit hop,
    /// so the block keeps full failure visibility and localisation
    /// stays a pure detector-soundness question.
    fn congestion_case(seed: u64, rng: &mut TestRng) -> WorldCase {
        let days = rng.range_u64(6, 10); // 6..=9
                                         // Congestion-class worlds need roughly double the detector-class
                                         // arrival rate: during a brownout the result *submissions* ride
                                         // the same congested transit hop as the measurements, so a
                                         // censored-day cell loses a shed-probability fraction of its
                                         // records before the detector ever sees them. The rate must keep
                                         // the surviving cell decisively above `min_measurements` for
                                         // every per-shard arrival draw, or shard-count invariance decays
                                         // into a coin flip at the min-n guard.
        let rate = 320.0 + rng.unit() * 80.0;
        let cc = country(pick(rng, &DETECTOR_COUNTRIES));
        let shapes = [
            CongestionShape::CongestedUncensored,
            CongestionShape::CensoredOnCongestedPath,
            CongestionShape::MaskingOnset,
        ];
        let shape = shapes[rng.index(shapes.len())];
        let dns_kinds = [
            BlockKind::DnsNxDomain,
            BlockKind::DnsDrop,
            BlockKind::DnsSinkhole,
        ];
        let (censor, brownout_days) = match shape {
            CongestionShape::CongestedUncensored => {
                let b0 = rng.range_u64(1, days - 1);
                let b1 = rng.range_u64(b0 + 1, days);
                (CensorModel::None, (b0, b1))
            }
            CongestionShape::CensoredOnCongestedPath => {
                // The detector-class block window, with the brownout
                // covering it entirely.
                let onset_day = rng.range_u64(1, days - 3);
                let lift_day = rng.range_u64(onset_day + 2, days - 1);
                let b0 = rng.range_u64(0, onset_day + 1);
                let b1 = rng.range_u64(lift_day, days + 1);
                (
                    CensorModel::Scheduled {
                        kind: pick(rng, &dns_kinds),
                        onset: SimTime::from_secs(onset_day * 86_400),
                        lift: SimTime::from_secs(lift_day * 86_400),
                    },
                    (b0, b1),
                )
            }
            CongestionShape::MaskingOnset => {
                // At least two brownout-only days before the block
                // lands, so an onset advanced by congestion would be
                // unambiguously wrong.
                let onset_day = rng.range_u64(2, (days - 3).max(3));
                let lift_day = rng.range_u64(onset_day + 2, days - 1);
                let b0 = rng.range_u64(0, onset_day - 1);
                let b1 = rng.range_u64(onset_day + 1, days + 1);
                (
                    CensorModel::Scheduled {
                        kind: pick(rng, &dns_kinds),
                        onset: SimTime::from_secs(onset_day * 86_400),
                        lift: SimTime::from_secs(lift_day * 86_400),
                    },
                    (b0, b1),
                )
            }
        };
        let congestion = CongestionSpec {
            shape,
            topology_seed: WorldCase::validated_topology_seed(rng.next_u64(), cc),
            // Above the default shed threshold (0.7), below collapse:
            // enough shedding to forge a censorship-like signature if
            // the detector were naive, enough survivors (per-link pass
            // probability ≥ ~0.55) that censored cells stay decisively
            // powered after submission loss.
            level: 0.76 + rng.unit() * 0.10,
            brownout_days,
        };
        WorldCase {
            seed,
            class: CaseClass::Congestion,
            arrival: ArrivalMode::Deployment { days, rate },
            censor,
            country: cc,
            rollup_secs: 86_400,
            maintenance_secs: if rng.bool() { Some(3_600) } else { None },
            repeat_rate: rng.unit() * 0.08,
            origins: 2,
            congestion: Some(congestion),
            corpus: None,
        }
    }

    fn detector_case(seed: u64, rng: &mut TestRng) -> WorldCase {
        let days = rng.range_u64(6, 10); // 6..=9
        let rate = 150.0 + rng.unit() * 40.0;
        // Day-aligned hard windows with clear days on both sides, so
        // every detector window is unambiguously censored or clear.
        let onset_day = rng.range_u64(1, days - 3);
        let lift_day = rng.range_u64(onset_day + 2, days - 1);
        let onset = SimTime::from_secs(onset_day * 86_400);
        let lift = SimTime::from_secs(lift_day * 86_400);
        let censor = match rng.index(4) {
            0 => CensorModel::None,
            1 => {
                let stage = if rng.bool() {
                    Stage::DnsPoison
                } else {
                    Stage::IpBlock
                };
                CensorModel::Adaptive {
                    stage,
                    onset,
                    lift,
                    // Short lying TTLs: the poisoning bleed into the
                    // lift day stays far below the detector's decision
                    // boundary, keeping lift localisation unambiguous.
                    poison_ttl_secs: rng.range_u64(60, 601),
                }
            }
            _ => {
                let kinds = [
                    BlockKind::DnsNxDomain,
                    BlockKind::DnsDrop,
                    BlockKind::DnsSinkhole,
                    BlockKind::TcpReset,
                    BlockKind::IpDrop,
                    BlockKind::HttpDrop,
                    BlockKind::HttpReset,
                    BlockKind::HttpBlockPage,
                ];
                CensorModel::Scheduled {
                    kind: pick(rng, &kinds),
                    onset,
                    lift,
                }
            }
        };
        WorldCase {
            seed,
            class: CaseClass::Detector,
            arrival: ArrivalMode::Deployment { days, rate },
            censor,
            country: country(pick(rng, &DETECTOR_COUNTRIES)),
            rollup_secs: 86_400,
            maintenance_secs: if rng.bool() { Some(3_600) } else { None },
            // Repeat visitors carry warm *browser caches* that mask the
            // block (the paper's §3.1 cache interference) — and the
            // detector's per-IP cap lets one frequently returning client
            // stack several cached successes into a censored day cell.
            // Above ~0.25 the censored-day success rate drifts into the
            // binomial test's ambiguous zone and verdicts genuinely
            // depend on per-shard arrival draws, so detector-class cases
            // keep the rate low enough that every censored cell stays
            // decisive. (Equivalence-class cases explore up to 0.5.)
            repeat_rate: rng.unit() * 0.08,
            origins: 2,
            congestion: None,
            corpus: None,
        }
    }

    fn equivalence_case(seed: u64, rng: &mut TestRng) -> WorldCase {
        let arrival = if rng.bool() {
            ArrivalMode::Deployment {
                days: rng.range_u64(2, 4),
                rate: 15.0 + rng.unit() * 25.0,
            }
        } else {
            ArrivalMode::Batch {
                visits: rng.range_u64(80, 301),
                gap_ms: rng.range_u64(800, 4_001),
            }
        };
        let span_secs = match arrival {
            ArrivalMode::Deployment { days, .. } => days * 86_400,
            ArrivalMode::Batch { visits, gap_ms } => (visits * gap_ms) / 1_000,
        };
        // Two arbitrary (not day-aligned) instants inside the span.
        let mut change_time = || SimTime::from_secs(rng.range_u64(1, span_secs.max(2)));
        let (a, b) = (change_time(), change_time());
        let (onset, lift) = if a <= b { (a, b) } else { (b, a) };
        let censor = match rng.index(5) {
            0 => CensorModel::None,
            1 => CensorModel::Reactive {
                k: rng.range_u64(3, 41),
            },
            2 => {
                let stages = [
                    Stage::RstInjection,
                    Stage::Throttle,
                    Stage::DnsPoison,
                    Stage::IpBlock,
                    Stage::Retaliate,
                ];
                CensorModel::Adaptive {
                    stage: pick(rng, &stages),
                    onset,
                    lift,
                    // Lying TTLs up to two days: the poisoning may
                    // deliberately outlive the block.
                    poison_ttl_secs: rng.range_u64(60, 172_801),
                }
            }
            _ => {
                let kinds = [
                    BlockKind::DnsNxDomain,
                    BlockKind::DnsDrop,
                    BlockKind::DnsSinkhole,
                    BlockKind::TcpReset,
                    BlockKind::IpDrop,
                    BlockKind::HttpDrop,
                    BlockKind::HttpReset,
                    BlockKind::HttpBlockPage,
                    BlockKind::Throttle {
                        drop_probability: 0.3 + rng.unit() * 0.6,
                    },
                ];
                CensorModel::Scheduled {
                    kind: pick(rng, &kinds),
                    onset,
                    lift,
                }
            }
        };
        WorldCase {
            seed,
            class: CaseClass::Equivalence,
            arrival,
            censor,
            country: country(pick(rng, &ANY_COUNTRIES)),
            rollup_secs: pick(rng, &[3_600u64, 21_600, 86_400]),
            maintenance_secs: if rng.bool() {
                Some(pick(rng, &[600u64, 3_600]))
            } else {
                None
            },
            repeat_rate: rng.unit() * 0.5,
            origins: 1 + rng.index(3),
            congestion: None,
            corpus: None,
        }
    }

    // ---------------------------------------------------- materialise

    /// The [`WorldRecipe`] this case describes.
    pub fn recipe(&self) -> WorldRecipe {
        let mut recipe = match self.arrival {
            ArrivalMode::Deployment { days, rate } => WorldRecipe::deployment(DeploymentConfig {
                duration: SimDuration::from_days(days),
                visits_per_day_per_weight: rate,
                repeat_visitor_rate: self.repeat_rate,
                returning_pool: 128,
            }),
            ArrivalMode::Batch { visits, gap_ms } => WorldRecipe::batch(BatchConfig {
                visits,
                mean_gap: SimDuration::from_millis(gap_ms),
                repeat_visitor_rate: self.repeat_rate,
                client_pool: 64,
            }),
        };
        recipe = recipe.with_rollups(SimDuration::from_secs(self.rollup_secs));
        if let Some(m) = self.maintenance_secs {
            recipe = recipe.with_maintenance(SimDuration::from_secs(m));
        }
        let target = self.target_domain();
        recipe = match self.censor {
            CensorModel::None | CensorModel::Reactive { .. } => recipe,
            CensorModel::Scheduled { kind, onset, lift } => {
                let mut spec = CensorSpec::new(
                    self.country,
                    CensorPolicy::named(CENSOR_NAME).block_domain(&target, kind.mechanism()),
                );
                if kind.needs_ip_resolution() {
                    spec = spec.with_ip_resolution();
                }
                recipe.with_timeline(
                    PolicyTimeline::new()
                        .at(onset, PolicyChange::Install(spec))
                        .at(
                            lift,
                            PolicyChange::Lift {
                                name: CENSOR_NAME.into(),
                            },
                        ),
                )
            }
            CensorModel::Adaptive {
                stage, onset, lift, ..
            } => recipe.with_reaction(
                ReactionPolicy::new(CENSOR_NAME)
                    .at(onset, Reaction::SetStage(stage))
                    .at(lift, Reaction::StandDown),
            ),
        };
        if let Some(cong) = self.congestion {
            // The brownout is a pair of shared world mutations: raise the
            // hotspot background at the window open, drop it at the
            // close. Data-plane only — no policy change, no control
            // signal, no pipeline recompile — so the control-plane
            // conservation oracle is untouched by congestion events.
            let (b0, b1) = cong.brownout_days;
            let level = cong.level;
            recipe = recipe
                .mutate_at(SimTime::from_secs(b0 * 86_400), move |net, _| {
                    if let Some(topo) = net.topology_mut() {
                        topo.set_hotspot_background(level);
                    }
                })
                .mutate_at(SimTime::from_secs(b1 * 86_400), move |net, _| {
                    if let Some(topo) = net.topology_mut() {
                        topo.set_hotspot_background(0.0);
                    }
                });
        }
        if let Some(spec) = self.corpus {
            if let Some((d0, d1)) = spec.disruption {
                // The benign outage is a pair of shared world mutations
                // swapping the rank-1 site's handler in place (no DNS or
                // IP churn, so shard determinism is untouched) — the
                // same vehicle the flagship world report uses.
                let disruption = websim::corpus::Disruption {
                    day: d0,
                    duration_days: d1 - d0,
                    site: 1,
                    kind: websim::corpus::DisruptionKind::OriginOutage,
                };
                let apply_corpus = spec.corpus();
                let revert_corpus = apply_corpus.clone();
                recipe = recipe
                    .mutate_at(SimTime::from_secs(d0 * 86_400), move |net, _| {
                        disruption.apply(&apply_corpus, net);
                    })
                    .mutate_at(SimTime::from_secs(d1 * 86_400), move |net, _| {
                        disruption.revert(&revert_corpus, net);
                    });
            }
        }
        recipe
    }

    /// The standing adaptive spec this case pre-installs, if any.
    fn standing_adaptive(&self) -> Option<AdaptiveSpec> {
        let base = AdaptiveSpec::new(CENSOR_NAME, self.country, vec![self.target_domain()]);
        match self.censor {
            CensorModel::Adaptive {
                poison_ttl_secs, ..
            } => Some(base.with_poison_ttl(SimDuration::from_secs(poison_ttl_secs))),
            CensorModel::Reactive { k } => Some(base.ip_block_after(k)),
            _ => None,
        }
    }

    /// Build one shard's world: the case's scenario (ideal paths, the
    /// measurement target — the constant probe server, or a generated
    /// corpus for corpus cases — plus a standing adaptive censor when
    /// the model calls for one) and an Encore deployment.
    pub fn build(&self, ctx: ShardContext) -> (Network, EncoreSystem) {
        let mut scenario = NetworkScenario::new(WorldSpec::Builtin).with_ideal_paths();
        if self.corpus.is_none() {
            scenario = scenario.with_server(
                TARGET,
                country("US"),
                HttpResponse::ok(ContentType::Image, 500),
            );
        }
        if let Some(cong) = self.congestion {
            // Routed worlds: attach the AS topology with the censored
            // country's path to the (US-hosted) target forced across a
            // hotspot transit link. `build_shard` scales hotspot
            // capacity by the shard count, keeping utilisation — and
            // thus verdicts — invariant in how the load is split.
            scenario = scenario.with_topology(
                netsim::TopologySpec::with_seed(cong.topology_seed)
                    .with_hotspot_between(self.country, country("US")),
            );
        }
        let mut net = match (&self.corpus, self.standing_adaptive()) {
            // Corpus worlds install the generated web *before* the
            // adaptive censor, so the censor's watched domain resolves
            // to real addresses for the address-matched stages (RST
            // injection, IP block).
            (Some(corpus_spec), standing) => {
                let mut net = scenario.build_shard(ctx.index, ctx.shards);
                corpus_spec
                    .corpus()
                    .install(&mut net, &mut SimRng::new(corpus_spec.corpus_seed ^ 1));
                if let Some(spec) = standing {
                    let censor = spec.build(&net.dns);
                    net.add_middlebox(Box::new(censor));
                }
                net
            }
            (None, Some(spec)) => WorldScenario::new(scenario)
                .with_middlebox(Arc::new(spec))
                .build_shard(ctx.index, ctx.shards),
            (None, None) => scenario.build_shard(ctx.index, ctx.shards),
        };
        let origins = (0..self.origins)
            .map(|i| OriginSite::academic(format!("origin-{i}.example")).with_popularity(5.0))
            .collect();
        let tasks = match self.companion_domain() {
            Some(companion) => vec![
                encore::tasks::MeasurementTask {
                    id: encore::tasks::MeasurementId(0),
                    spec: encore::tasks::TaskSpec::Image {
                        url: format!("http://{}/favicon.ico", self.target_domain()),
                    },
                },
                encore::tasks::MeasurementTask {
                    id: encore::tasks::MeasurementId(1),
                    spec: encore::tasks::TaskSpec::Image {
                        url: format!("http://{companion}/favicon.ico"),
                    },
                },
            ],
            None => vec![encore::tasks::MeasurementTask {
                id: encore::tasks::MeasurementId(0),
                spec: encore::tasks::TaskSpec::Image {
                    url: format!("http://{TARGET}/favicon.ico"),
                },
            }],
        };
        let sys = EncoreSystem::deploy(
            &mut net,
            tasks,
            SchedulingStrategy::RoundRobin,
            origins,
            country("US"),
        );
        (net, sys)
    }

    // ---------------------------------------------------- ground truth

    /// How many policy-timeline changes the engine must report applied.
    pub fn expected_policy_changes(&self) -> usize {
        match self.censor {
            CensorModel::Scheduled { .. } => 2,
            _ => 0,
        }
    }

    /// How many control signals the engine must report applied.
    pub fn expected_control_signals(&self) -> usize {
        match self.censor {
            CensorModel::Adaptive { .. } => 2,
            _ => 0,
        }
    }

    /// The day-aligned hard-block window `(onset_day, lift_day)` the
    /// detector must localise, if this case has one.
    pub fn hard_window_days(&self) -> Option<(u64, u64)> {
        if !matches!(
            self.class,
            CaseClass::Detector | CaseClass::Congestion | CaseClass::Corpus
        ) {
            return None;
        }
        match self.censor {
            CensorModel::Scheduled { onset, lift, .. }
            | CensorModel::Adaptive { onset, lift, .. } => {
                Some((onset.as_secs() / 86_400, lift.as_secs() / 86_400))
            }
            _ => None,
        }
    }

    /// Whether this case generates an entirely uncensored world (the
    /// false-positive control).
    pub fn is_uncensored(&self) -> bool {
        matches!(self.censor, CensorModel::None)
    }
}

/// A proptest [`Strategy`] over [`WorldCase`]s of one class: each draw
/// burns one `u64` of the test RNG as the case seed, so a failing case
/// prints as a single reproducible number.
pub struct CaseStrategy {
    /// The class every generated case belongs to.
    pub class: CaseClass,
}

impl Strategy for CaseStrategy {
    type Value = WorldCase;
    fn generate(&self, rng: &mut TestRng) -> WorldCase {
        WorldCase::from_seed(self.class, rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_generation_is_deterministic_in_the_seed() {
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            for class in [
                CaseClass::Equivalence,
                CaseClass::Detector,
                CaseClass::Congestion,
                CaseClass::Corpus,
            ] {
                assert_eq!(
                    WorldCase::from_seed(class, seed),
                    WorldCase::from_seed(class, seed)
                );
            }
        }
    }

    #[test]
    fn congestion_cases_keep_their_statistical_guarantees() {
        let mut shapes_seen = [false; 3];
        for seed in 0..150u64 {
            let case = WorldCase::from_seed(CaseClass::Congestion, seed);
            let ArrivalMode::Deployment { days, rate } = case.arrival else {
                panic!("congestion cases must be deployment worlds");
            };
            assert!((6..=9).contains(&days));
            assert!(rate >= 300.0, "under-powered rate {rate}");
            assert_eq!(case.rollup_secs, 86_400, "windows must match rollups");
            assert!(DETECTOR_COUNTRIES.contains(&case.country.as_str()));
            let cong = case.congestion.expect("congestion layer present");
            assert!(
                cong.level > 0.7 && cong.level < 0.87,
                "brownout level {} must exceed the shed threshold without collapsing",
                cong.level
            );
            let (b0, b1) = cong.brownout_days;
            assert!(b0 < b1 && b1 <= days, "bad brownout window ({b0}, {b1})");
            match cong.shape {
                CongestionShape::CongestedUncensored => {
                    shapes_seen[0] = true;
                    assert!(case.is_uncensored(), "shape promises no censor");
                }
                CongestionShape::CensoredOnCongestedPath => {
                    shapes_seen[1] = true;
                    let (onset, lift) = case.hard_window_days().expect("block window");
                    assert!(
                        b0 <= onset && lift <= b1,
                        "brownout ({b0}, {b1}) must cover the block ({onset}, {lift})"
                    );
                }
                CongestionShape::MaskingOnset => {
                    shapes_seen[2] = true;
                    let (onset, _) = case.hard_window_days().expect("block window");
                    assert!(
                        b0 + 2 <= onset,
                        "need >=2 brownout-only days before onset ({b0}, onset {onset})"
                    );
                    assert!(b1 > onset, "brownout must still be open at onset");
                }
            }
            match case.censor {
                CensorModel::None => {
                    assert_eq!(cong.shape, CongestionShape::CongestedUncensored)
                }
                CensorModel::Scheduled { kind, .. } => assert!(
                    matches!(
                        kind,
                        BlockKind::DnsNxDomain | BlockKind::DnsDrop | BlockKind::DnsSinkhole
                    ),
                    "congestion-class blocks must fire at the DNS stage, got {kind:?}"
                ),
                other => panic!("unexpected censor model {other:?}"),
            }
            if let Some((onset, lift)) = case.hard_window_days() {
                assert!(onset >= 1, "need a clear day before onset");
                assert!(lift >= onset + 2, "window too short to flag");
                assert!(lift < days, "need a clear day after lift");
            }
            // The validated topology seed really does give the censored
            // country a hotspot on its path to the target.
            let mut topo =
                netsim::AsTopology::generate(TopologyConfig::with_seed(cong.topology_seed));
            assert!(
                topo.ensure_hotspot_between(case.country, country("US"))
                    .is_some(),
                "topology seed {} has no markable path",
                cong.topology_seed
            );
        }
        assert!(
            shapes_seen.iter().all(|s| *s),
            "all three shapes generated: {shapes_seen:?}"
        );
    }

    #[test]
    fn detector_cases_keep_their_statistical_guarantees() {
        for seed in 0..300u64 {
            let case = WorldCase::from_seed(CaseClass::Detector, seed);
            let ArrivalMode::Deployment { days, rate } = case.arrival else {
                panic!("detector cases must be deployment worlds");
            };
            assert!((6..=9).contains(&days));
            assert!(rate >= 150.0, "under-powered rate {rate}");
            assert_eq!(case.rollup_secs, 86_400, "windows must match rollups");
            assert!(DETECTOR_COUNTRIES.contains(&case.country.as_str()));
            if let Some((onset, lift)) = case.hard_window_days() {
                assert!(onset >= 1, "need a clear day before onset");
                assert!(lift >= onset + 2, "window too short to flag");
                assert!(lift < days, "need a clear day after lift");
            }
            match case.censor {
                CensorModel::Reactive { .. } => {
                    panic!("traffic-reactive censors are not shard-count invariant")
                }
                CensorModel::Adaptive {
                    stage,
                    poison_ttl_secs,
                    ..
                } => {
                    assert!(
                        stage.is_hard_block(),
                        "soft stage {stage:?} in detector case"
                    );
                    assert!(stage != Stage::Retaliate, "retaliation blinds the detector");
                    assert!(
                        poison_ttl_secs <= 600,
                        "lying TTL too long: {poison_ttl_secs}"
                    );
                }
                CensorModel::Scheduled { kind, .. } => {
                    assert!(
                        !matches!(kind, BlockKind::Throttle { .. }),
                        "throttling is not a localisable hard block"
                    );
                }
                CensorModel::None => {}
            }
        }
    }

    #[test]
    fn corpus_cases_keep_their_statistical_guarantees() {
        let mut saw_disruption = false;
        let mut saw_uncensored = false;
        for seed in 0..200u64 {
            let case = WorldCase::from_seed(CaseClass::Corpus, seed);
            let ArrivalMode::Deployment { days, rate } = case.arrival else {
                panic!("corpus cases must be deployment worlds");
            };
            assert!((6..=9).contains(&days));
            assert!(
                rate >= 300.0,
                "under-powered rate {rate} for two round-robin tasks"
            );
            assert_eq!(case.rollup_secs, 86_400, "windows must match rollups");
            assert!(DETECTOR_COUNTRIES.contains(&case.country.as_str()));
            let spec = case.corpus.expect("corpus layer present");
            assert!((4..=7).contains(&spec.num_domains));
            let corpus = spec.corpus();
            assert_eq!(corpus.len(), spec.num_domains);
            assert_eq!(case.target_domain(), corpus.domain(0));
            assert_eq!(case.companion_domain().as_deref(), Some(corpus.domain(1)));
            if let Some((onset, lift)) = case.hard_window_days() {
                assert!(onset >= 1, "need a clear day before onset");
                assert!(lift >= onset + 2, "window too short to flag");
                assert!(lift < days, "need a clear day after lift");
            }
            match case.censor {
                CensorModel::Reactive { .. } => {
                    panic!("traffic-reactive censors are not shard-count invariant")
                }
                CensorModel::Adaptive {
                    stage,
                    poison_ttl_secs,
                    ..
                } => {
                    assert!(stage.is_hard_block(), "soft stage {stage:?} in corpus case");
                    assert!(stage != Stage::Retaliate, "retaliation blinds the detector");
                    assert!(
                        poison_ttl_secs <= 600,
                        "lying TTL too long: {poison_ttl_secs}"
                    );
                }
                CensorModel::Scheduled { kind, .. } => {
                    assert!(
                        !matches!(kind, BlockKind::Throttle { .. }),
                        "throttling is not a localisable hard block"
                    );
                }
                CensorModel::None => saw_uncensored = true,
            }
            if let Some((d0, d1)) = spec.disruption {
                saw_disruption = true;
                assert!(d0 >= 1, "day 0 must stay healthy");
                assert!(d1 > d0 && d1 - d0 <= 2, "benign outages stay short");
                assert!(d1 < days, "the final day must be healthy again");
            }
        }
        assert!(saw_disruption, "benign disruptions generated");
        assert!(saw_uncensored, "uncensored corpus worlds generated");
    }

    #[test]
    fn equivalence_cases_explore_the_wide_space() {
        let mut saw_batch = false;
        let mut saw_deployment = false;
        let mut saw_reactive = false;
        let mut saw_throttle = false;
        let mut saw_retaliate = false;
        for seed in 0..400u64 {
            let case = WorldCase::from_seed(CaseClass::Equivalence, seed);
            match case.arrival {
                ArrivalMode::Batch { visits, .. } => {
                    saw_batch = true;
                    assert!(visits <= 300, "equivalence worlds stay tiny");
                }
                ArrivalMode::Deployment { days, .. } => {
                    saw_deployment = true;
                    assert!(days <= 3, "equivalence worlds stay tiny");
                }
            }
            match case.censor {
                CensorModel::Reactive { k } => {
                    saw_reactive = true;
                    assert!(k >= 3);
                }
                CensorModel::Scheduled {
                    kind: BlockKind::Throttle { drop_probability },
                    ..
                } => {
                    saw_throttle = true;
                    assert!((0.3..0.9).contains(&drop_probability));
                }
                CensorModel::Adaptive { stage, .. } => {
                    saw_retaliate |= stage == Stage::Retaliate;
                }
                _ => {}
            }
        }
        assert!(saw_batch && saw_deployment, "both arrival modes generated");
        assert!(saw_reactive, "reactive censors generated");
        assert!(saw_throttle, "throttling censors generated");
        assert!(saw_retaliate, "retaliation generated");
    }

    #[test]
    fn generated_recipes_materialise() {
        // Every case yields a recipe and a buildable world, and the
        // ground-truth accessors are consistent with the model.
        for seed in 0..40u64 {
            for class in [
                CaseClass::Equivalence,
                CaseClass::Detector,
                CaseClass::Congestion,
                CaseClass::Corpus,
            ] {
                let case = WorldCase::from_seed(class, seed);
                let recipe = case.recipe();
                match case.censor {
                    CensorModel::Scheduled { .. } => {
                        assert_eq!(recipe.timeline().len(), 2);
                        assert!(recipe.reactions().is_empty());
                    }
                    CensorModel::Adaptive { .. } => {
                        assert!(recipe.timeline().is_empty());
                        assert_eq!(recipe.reactions().len(), 1);
                        assert_eq!(recipe.reactions()[0].len(), 2);
                    }
                    _ => {
                        assert!(recipe.timeline().is_empty());
                        assert!(recipe.reactions().is_empty());
                    }
                }
                let (net, sys) = case.build(ShardContext {
                    index: 0,
                    shards: 1,
                });
                assert_eq!(sys.origins.len(), case.origins);
                let expects_standing = matches!(
                    case.censor,
                    CensorModel::Adaptive { .. } | CensorModel::Reactive { .. }
                );
                assert_eq!(net.middleboxes().len(), usize::from(expects_standing));
                assert_eq!(
                    net.topology().is_some(),
                    case.congestion.is_some(),
                    "routed worlds carry a topology, flat worlds none"
                );
            }
        }
    }
}
