//! Live policy schedules: censorship as a function of time.
//!
//! The paper's core motivation (§1) is that censorship "varies over time
//! in response to changing social or political conditions (e.g., a
//! national election)" — blocks switch on, get lifted, and get rewritten
//! while measurement is running. A [`PolicyTimeline`] makes those
//! dynamics first-class: an ordered schedule of `(SimTime,
//! PolicyChange)` entries that the world engine
//! (`population::world::WorldEngine`) fires as discrete events on one
//! continuously-running world, instead of experiments faking time by
//! rebuilding the world per phase.
//!
//! Every change applies through [`netsim::network::Network`]'s middlebox
//! mutation hooks (`add_middlebox` / `remove_middlebox`), which bump the
//! network's middlebox generation counter — so compiled
//! [`netsim::session::FetchSession`] pipelines in warm pooled clients
//! invalidate and re-match on their next fetch, exactly as a real
//! client's path changes under it when a national filter is deployed.
//!
//! Determinism contract: entries are kept sorted by time with
//! **insertion order as the tie-break** (two changes scheduled for the
//! same instant apply in the order they were scheduled), and applying a
//! timeline in increments is identical to applying it in one sweep —
//! both properties are enforced by `crates/censor/tests/prop.rs`.

use crate::national::NationalCensor;
use crate::policy::CensorPolicy;
use netsim::geo::{CountryCode, IspClass};
use netsim::network::Network;
use serde::{Deserialize, Serialize};
use sim_core::SimTime;

/// A plain-data recipe for a [`NationalCensor`] — what a
/// [`PolicyChange::Install`] deploys. Unlike the censor itself (a boxed
/// middlebox), the spec is `Send + Sync + Clone`, so timelines can ride
/// inside shard-shared scenario recipes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CensorSpec {
    /// Country whose clients the censor covers.
    pub country: CountryCode,
    /// The blacklist to enforce. The policy's `name` doubles as the
    /// middlebox's diagnostic name and is how later `Lift`/`Rewrite`
    /// changes address this censor.
    pub policy: CensorPolicy,
    /// `None` = all access networks; `Some(classes)` = only those.
    pub covered_isps: Option<Vec<IspClass>>,
    /// Whether to expand domain+TCP rules into IP rules against the
    /// network's authoritative DNS at install time (the censor compiling
    /// its own firewall blacklist).
    pub resolve_ip_rules: bool,
}

impl CensorSpec {
    /// Spec covering every client in `country`.
    pub fn new(country: CountryCode, policy: CensorPolicy) -> CensorSpec {
        CensorSpec {
            country,
            policy,
            covered_isps: None,
            resolve_ip_rules: false,
        }
    }

    /// Builder: restrict coverage to specific access-network classes.
    pub fn covering(mut self, isps: Vec<IspClass>) -> CensorSpec {
        self.covered_isps = Some(isps);
        self
    }

    /// Builder: resolve domain firewall rules to IP rules at install.
    pub fn with_ip_resolution(mut self) -> CensorSpec {
        self.resolve_ip_rules = true;
        self
    }

    /// The middlebox name this spec installs under.
    pub fn name(&self) -> &str {
        &self.policy.name
    }

    /// Materialise the censor against a concrete network's DNS.
    pub fn build(&self, net: &Network) -> NationalCensor {
        let mut censor = NationalCensor::new(self.country, self.policy.clone());
        if let Some(isps) = &self.covered_isps {
            censor = censor.covering(isps.clone());
        }
        if self.resolve_ip_rules {
            censor.resolve_ip_rules(&net.dns);
        }
        censor
    }
}

/// A [`CensorSpec`] is the canonical middlebox factory for shard-shared
/// world recipes: each shard thread materialises the censor against its
/// own network, and because per-shard networks share topology (DNS,
/// server placement), specs that resolve IP rules compile identical
/// blacklists on every shard.
impl netsim::scenario::MiddleboxFactory for CensorSpec {
    fn build_middlebox(&self, net: &Network) -> Box<dyn netsim::middlebox::Middlebox> {
        Box::new(self.build(net))
    }
}

/// One scheduled mutation of the censorship regime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyChange {
    /// Deploy a new censor.
    Install(CensorSpec),
    /// Remove the censor installed under `name` (a block being lifted).
    Lift {
        /// Diagnostic/middlebox name of the censor to remove.
        name: String,
    },
    /// Atomically replace the censor installed under `name` with a new
    /// spec (a blacklist being rewritten mid-run).
    Rewrite {
        /// Name of the censor to replace.
        name: String,
        /// Its replacement.
        with: CensorSpec,
    },
}

impl PolicyChange {
    /// Apply this change to the network. Returns whether the world
    /// actually changed: installs always do; a rewrite replaces the
    /// named censor **in place** (preserving its slot in the
    /// interception order) or, if the name is not installed, installs
    /// the replacement — either way the world changed; lifting an
    /// unknown name is the only no-op. Any actual change goes through
    /// the middlebox set and therefore bumps the network's generation
    /// counter, invalidating compiled session pipelines.
    pub fn apply(&self, net: &mut Network) -> bool {
        match self {
            PolicyChange::Install(spec) => {
                let censor = spec.build(net);
                net.add_middlebox(Box::new(censor));
                true
            }
            PolicyChange::Lift { name } => net.remove_middlebox(name),
            PolicyChange::Rewrite { name, with } => {
                let censor = Box::new(with.build(net));
                if net.has_middlebox(name) {
                    net.replace_middlebox(name, censor);
                } else {
                    net.add_middlebox(censor);
                }
                true
            }
        }
    }
}

/// An ordered `(SimTime, PolicyChange)` schedule with deterministic
/// tie-breaks and an application cursor.
///
/// Two ways to consume it: the world engine turns each entry into a
/// discrete event on its queue (via [`PolicyTimeline::entries`]), or a
/// caller drives the cursor directly with
/// [`PolicyTimeline::apply_through`] — incremental application is
/// guaranteed to match a single sweep.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyTimeline {
    entries: Vec<(SimTime, PolicyChange)>,
    /// Number of entries already applied through the cursor API.
    applied: usize,
}

impl PolicyTimeline {
    /// An empty timeline.
    pub fn new() -> PolicyTimeline {
        PolicyTimeline::default()
    }

    /// Builder: schedule `change` at `at`.
    pub fn at(mut self, at: SimTime, change: PolicyChange) -> PolicyTimeline {
        self.schedule(at, change);
        self
    }

    /// Schedule `change` at `at`, keeping entries sorted by time with
    /// insertion order as the tie-break (a change scheduled later for the
    /// same instant applies after every change already there).
    ///
    /// Scheduling before the applied cursor is rejected with a panic —
    /// the past has already been replayed into the network.
    pub fn schedule(&mut self, at: SimTime, change: PolicyChange) {
        let idx = self.entries.partition_point(|(t, _)| *t <= at);
        assert!(
            idx >= self.applied,
            "cannot schedule a policy change at {at} before the applied cursor"
        );
        self.entries.insert(idx, (at, change));
    }

    /// The full schedule, time-ordered.
    pub fn entries(&self) -> &[(SimTime, PolicyChange)] {
        &self.entries
    }

    /// Number of scheduled changes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries the cursor has applied so far.
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// Firing time of the next unapplied change, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.entries.get(self.applied).map(|(t, _)| *t)
    }

    /// Apply every not-yet-applied change scheduled at or before `now`,
    /// in schedule order. Returns how many changes were applied.
    pub fn apply_through(&mut self, net: &mut Network, now: SimTime) -> usize {
        let mut n = 0;
        while let Some((t, change)) = self.entries.get(self.applied) {
            if *t > now {
                break;
            }
            change.apply(net);
            self.applied += 1;
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Mechanism;
    use netsim::geo::{country, World};
    use netsim::http::{ContentType, HttpRequest, HttpResponse};
    use netsim::network::{ConstHandler, FetchError, Network};
    use sim_core::SimRng;

    fn blocked_world() -> Network {
        let mut net = Network::ideal(World::builtin());
        net.add_server(
            "twitter.com",
            country("US"),
            Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 500))),
        );
        net
    }

    fn tr_block() -> CensorSpec {
        CensorSpec::new(
            country("TR"),
            CensorPolicy::named("tr-election-block")
                .block_domain("twitter.com", Mechanism::DnsNxDomain),
        )
    }

    fn fetch_ok(net: &mut Network, at: SimTime) -> bool {
        let client = net.add_client(country("TR"), netsim::geo::IspClass::Residential);
        let mut rng = SimRng::new(9);
        net.fetch(
            &client,
            &HttpRequest::get("http://twitter.com/favicon.ico"),
            at,
            &mut rng,
        )
        .result
        .is_ok()
    }

    #[test]
    fn timeline_is_cloneable_and_thread_shareable() {
        // The sharded world engine broadcasts one timeline to N shard
        // threads; this pins the Send + Sync + Clone contract.
        fn check<T: Send + Sync + Clone>() {}
        check::<PolicyTimeline>();
        check::<PolicyChange>();
        check::<CensorSpec>();
    }

    #[test]
    fn censor_spec_acts_as_middlebox_factory() {
        use netsim::scenario::MiddleboxFactory;
        let mut net = blocked_world();
        let mb = tr_block().build_middlebox(&net);
        assert_eq!(mb.name(), "tr-election-block");
        net.add_middlebox(mb);
        assert!(!fetch_ok(&mut net, SimTime::ZERO));
    }

    #[test]
    fn install_and_lift_toggle_reachability() {
        let mut net = blocked_world();
        let mut tl = PolicyTimeline::new()
            .at(SimTime::from_secs(100), PolicyChange::Install(tr_block()))
            .at(
                SimTime::from_secs(200),
                PolicyChange::Lift {
                    name: "tr-election-block".into(),
                },
            );

        assert!(fetch_ok(&mut net, SimTime::from_secs(10)));
        assert_eq!(tl.apply_through(&mut net, SimTime::from_secs(150)), 1);
        assert!(!fetch_ok(&mut net, SimTime::from_secs(150)));
        assert_eq!(tl.apply_through(&mut net, SimTime::from_secs(999)), 1);
        assert!(fetch_ok(&mut net, SimTime::from_secs(300)));
        assert_eq!(tl.applied(), 2);
    }

    #[test]
    fn rewrite_swaps_mechanism_in_place() {
        let mut net = blocked_world();
        let reset_spec = CensorSpec::new(
            country("TR"),
            CensorPolicy::named("tr-election-block")
                .block_domain("twitter.com", Mechanism::TcpReset)
                .with_rule(
                    crate::policy::BlockTarget::Ip(
                        net.dns.authoritative("twitter.com").unwrap().ip,
                    ),
                    Mechanism::TcpReset,
                ),
        );
        let mut tl = PolicyTimeline::new()
            .at(SimTime::from_secs(1), PolicyChange::Install(tr_block()))
            .at(
                SimTime::from_secs(2),
                PolicyChange::Rewrite {
                    name: "tr-election-block".into(),
                    with: reset_spec,
                },
            );
        tl.apply_through(&mut net, SimTime::from_secs(1));
        let client = net.add_client(country("TR"), netsim::geo::IspClass::Residential);
        let mut rng = SimRng::new(3);
        let req = HttpRequest::get("http://twitter.com/favicon.ico");
        assert_eq!(
            net.fetch(&client, &req, SimTime::from_secs(1), &mut rng)
                .result,
            Err(FetchError::DnsNxDomain)
        );
        tl.apply_through(&mut net, SimTime::from_secs(2));
        net.dns.flush_caches();
        assert_eq!(
            net.fetch(&client, &req, SimTime::from_secs(2), &mut rng)
                .result,
            Err(FetchError::ConnectionReset),
            "rewritten policy should RST instead of NXDOMAIN"
        );
    }

    #[test]
    fn same_instant_changes_apply_in_schedule_order() {
        let mut net = blocked_world();
        let t = SimTime::from_secs(5);
        // Install then immediately lift at the same instant: net effect
        // is no censor (insertion order is the tie-break).
        let mut tl = PolicyTimeline::new()
            .at(t, PolicyChange::Install(tr_block()))
            .at(
                t,
                PolicyChange::Lift {
                    name: "tr-election-block".into(),
                },
            );
        tl.apply_through(&mut net, t);
        assert!(fetch_ok(&mut net, t));
        assert!(net.middleboxes().is_empty());
    }

    #[test]
    fn lift_of_unknown_name_is_noop() {
        let mut net = blocked_world();
        let change = PolicyChange::Lift {
            name: "never-installed".into(),
        };
        assert!(!change.apply(&mut net));
    }

    #[test]
    fn rewrite_preserves_interception_order() {
        let mut net = blocked_world();
        // Two censors: "first" sits closer to the client than "second".
        for name in ["first", "second"] {
            PolicyChange::Install(CensorSpec::new(
                country("TR"),
                CensorPolicy::named(name).block_domain("twitter.com", Mechanism::DnsNxDomain),
            ))
            .apply(&mut net);
        }
        // Rewriting "first" must not migrate it behind "second".
        PolicyChange::Rewrite {
            name: "first".into(),
            with: CensorSpec::new(
                country("TR"),
                CensorPolicy::named("first").block_domain("twitter.com", Mechanism::DnsDrop),
            ),
        }
        .apply(&mut net);
        let names: Vec<&str> = net.middleboxes().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["first", "second"]);
        // And the rewritten mechanism is the one in force.
        let client = net.add_client(country("TR"), netsim::geo::IspClass::Residential);
        let mut rng = SimRng::new(5);
        let out = net.fetch(
            &client,
            &HttpRequest::get("http://twitter.com/favicon.ico"),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(out.result, Err(FetchError::DnsTimeout), "DnsDrop wins now");
    }

    #[test]
    fn rewrite_of_missing_name_installs_and_reports_a_change() {
        let mut net = blocked_world();
        let change = PolicyChange::Rewrite {
            name: "tr-election-block".into(),
            with: tr_block(),
        };
        assert!(change.apply(&mut net), "the world did change");
        assert_eq!(net.middleboxes().len(), 1);
        assert!(!fetch_ok(&mut net, SimTime::ZERO));
    }

    #[test]
    fn entries_stay_time_sorted_regardless_of_insert_order() {
        let tl = PolicyTimeline::new()
            .at(SimTime::from_secs(30), PolicyChange::Install(tr_block()))
            .at(
                SimTime::from_secs(10),
                PolicyChange::Lift { name: "x".into() },
            )
            .at(
                SimTime::from_secs(20),
                PolicyChange::Lift { name: "y".into() },
            );
        let times: Vec<u64> = tl.entries().iter().map(|(t, _)| t.as_secs()).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ip_resolution_spec_installs_firewall_rules() {
        let mut net = blocked_world();
        let spec = CensorSpec::new(
            country("CN"),
            CensorPolicy::named("fw").block_domain("twitter.com", Mechanism::IpDrop),
        )
        .with_ip_resolution();
        PolicyChange::Install(spec).apply(&mut net);
        let client = net.add_client(country("CN"), netsim::geo::IspClass::Residential);
        let mut rng = SimRng::new(4);
        let out = net.fetch(
            &client,
            &HttpRequest::get("http://twitter.com/favicon.ico"),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(out.result, Err(FetchError::ConnectTimeout));
    }
}
