//! Stateful adversarial censors — the paper's §8 threat taken seriously.
//!
//! The static models in [`crate::national`] enforce one fixed policy for
//! as long as they are installed. A real adversary *reacts*: §8 of the
//! paper discusses censors that could notice Encore's cross-origin
//! measurements and respond — throttling, poisoning, or "simply
//! block[ing] the collection server". An [`AdaptiveCensor`] models that
//! adversary as an escalation ladder of [`Stage`]s:
//!
//! | stage | behaviour |
//! |---|---|
//! | [`Stage::Watch`] | observe only: count cross-origin fetches to the watched measurement targets |
//! | [`Stage::RstInjection`] | probabilistically inject RSTs on TCP handshakes to watched addresses |
//! | [`Stage::Throttle`] | drop watched HTTP exchanges with a probability that **escalates with the observed fetch count** |
//! | [`Stage::DnsPoison`] | forge DNS answers for watched names, with a **lying TTL** the censor chooses |
//! | [`Stage::IpBlock`] | null-route the watched addresses (silent SYN drops) |
//! | [`Stage::Retaliate`] | keep the IP block *and* block the Encore collection server itself |
//!
//! Two things move the censor along the ladder:
//!
//! * **Self-triggered escalation** — with
//!   [`AdaptiveSpec::ip_block_after`] set, the censor jumps straight to
//!   [`Stage::IpBlock`] once it has detected `K` cross-origin fetches to
//!   a watched target. Deterministic in the fetch stream it actually
//!   observes, which makes it reproducible serially (and bitwise at one
//!   shard) but **traffic-dependent**: different shard counts observe
//!   different per-shard streams, so worlds that rely on it are *not*
//!   shard-count-invariant and the `simcheck` generator keeps them out
//!   of the multi-shard verdict oracle.
//! * **Scheduled reactions** — a [`ReactionPolicy`] is the control-plane
//!   half: `(SimTime, Reaction)` steps that the world engine fires as
//!   first-class events (`population::WorldEvent::CensorSignal`),
//!   delivered through [`netsim::middlebox::Middlebox::on_control`].
//!   Scheduled reactions broadcast verbatim to every shard, so they keep
//!   sharded worlds verdict-invariant.
//!
//! All interior state lives in `Cell`s: the middlebox hooks take `&self`
//! and a network's middleboxes are single-threaded by construction.
//! Probabilistic stages draw from a deterministic key/time hash (like
//! [`crate::policy::Mechanism::Throttle`]'s, plus a splitmix64
//! finalizer — see [`unit_draw`]), so no RNG threads through the
//! middlebox trait and identical fetch streams see identical
//! interference. Coverage ([`Middlebox::applies_to`]) depends only on
//! the client's country and never on the stage — stage changes are
//! visible on the very next fetch without a pipeline recompile.

use netsim::dns::DnsSystem;
use netsim::geo::CountryCode;
use netsim::host::Host;
use netsim::http::{host_of, HttpRequest};
use netsim::middlebox::{DnsAction, HttpAction, Middlebox, StageContext, TcpAction};
use netsim::network::Network;
use netsim::scenario::MiddleboxFactory;
use netsim::tcp::TcpAttempt;
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};
use std::cell::Cell;
use std::net::Ipv4Addr;

/// Deterministic unit draw for the probabilistic stages: FNV over the
/// key, mixed with the timestamp through a splitmix64 finalizer. The
/// finalizer matters — the adaptive censor keys on a *fixed* string (one
/// watched address, one favicon URL) with only the timestamp varying, a
/// regime where FNV's single trailing multiply leaves the top bits
/// nearly constant (the [`crate::policy::Mechanism::Throttle`] draw gets
/// away with it only because its URLs vary per request).
fn unit_draw(key: &str, now_micros: u64) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix_unit(h, now_micros)
}

/// The finalizer half of [`unit_draw`], for callers whose key is
/// already an integer (the TCP stage keys on the destination address —
/// no reason to format it into a string on the hot path). The avalanche
/// itself is [`sim_core::splitmix_mix`], the workspace's one copy of
/// those constants.
fn mix_unit(key: u64, now_micros: u64) -> f64 {
    let z = sim_core::splitmix_mix(key ^ now_micros.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// One rung of the escalation ladder. Ordered: `escalate` moves to the
/// next variant and saturates at [`Stage::Retaliate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Observe only.
    Watch,
    /// Probabilistic RST injection against watched addresses.
    RstInjection,
    /// Rate-based throttling: HTTP drops whose probability grows with
    /// the number of detected cross-origin fetches.
    Throttle,
    /// DNS poisoning of watched names with a lying TTL.
    DnsPoison,
    /// Null-routing of watched addresses.
    IpBlock,
    /// IP block plus blocking the Encore collection server.
    Retaliate,
}

impl Stage {
    /// The next rung up (saturating).
    pub fn next(self) -> Stage {
        match self {
            Stage::Watch => Stage::RstInjection,
            Stage::RstInjection => Stage::Throttle,
            Stage::Throttle => Stage::DnsPoison,
            Stage::DnsPoison => Stage::IpBlock,
            Stage::IpBlock | Stage::Retaliate => Stage::Retaliate,
        }
    }

    /// Stable slug used in control signals and reports.
    pub fn slug(self) -> &'static str {
        match self {
            Stage::Watch => "watch",
            Stage::RstInjection => "rst-injection",
            Stage::Throttle => "throttle",
            Stage::DnsPoison => "dns-poison",
            Stage::IpBlock => "ip-block",
            Stage::Retaliate => "retaliate",
        }
    }

    /// Parse a [`Stage::slug`].
    pub fn from_slug(slug: &str) -> Option<Stage> {
        Some(match slug {
            "watch" => Stage::Watch,
            "rst-injection" => Stage::RstInjection,
            "throttle" => Stage::Throttle,
            "dns-poison" => Stage::DnsPoison,
            "ip-block" => Stage::IpBlock,
            "retaliate" => Stage::Retaliate,
            _ => return None,
        })
    }

    /// Whether every watched fetch observably fails at this stage for a
    /// cold client (the stages the detector can localise exactly).
    pub fn is_hard_block(self) -> bool {
        matches!(self, Stage::DnsPoison | Stage::IpBlock | Stage::Retaliate)
    }
}

/// Plain-data recipe for an [`AdaptiveCensor`] — `Send + Sync + Clone`,
/// so adaptive adversaries ride inside shard-shared
/// [`netsim::scenario::WorldScenario`]s the same way
/// [`crate::timeline::CensorSpec`] does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveSpec {
    /// Middlebox diagnostic name; also how [`ReactionPolicy`] and policy
    /// timelines address this censor.
    pub name: String,
    /// Country whose clients the censor covers (constant for the
    /// middlebox's lifetime — stage changes never alter coverage).
    pub country: CountryCode,
    /// The measurement-target domains the censor watches (and, in the
    /// blocking stages, interferes with). Subdomains match.
    pub watched: Vec<String>,
    /// The rung the censor starts on.
    pub initial_stage: Stage,
    /// RST-injection probability in [`Stage::RstInjection`].
    pub rst_probability: f64,
    /// Base drop probability when [`Stage::Throttle`] engages.
    pub throttle_base: f64,
    /// Additional drop probability per detected cross-origin fetch
    /// (clamped at 1.0) — the throttling escalates as the censor keeps
    /// seeing measurements.
    pub throttle_step: f64,
    /// Where poisoned answers point (a sinkhole with no server).
    pub poison_ip: Ipv4Addr,
    /// The lying TTL on poisoned answers: how long clients cache the
    /// forgery. May deliberately exceed the block's own lifetime.
    pub poison_ttl: SimDuration,
    /// Self-trigger: jump to [`Stage::IpBlock`] after this many detected
    /// cross-origin fetches to a watched target (`None` disables).
    pub ip_block_after: Option<u64>,
    /// The Encore collection server's domain, blocked in
    /// [`Stage::Retaliate`] (`None`: retaliation only keeps the IP
    /// block).
    pub collector: Option<String>,
}

impl AdaptiveSpec {
    /// A watch-stage spec with the conventional stage parameters:
    /// near-certain RST injection (0.9), throttling from 0.3 escalating
    /// by 1e-3 per observed fetch, poisoning to `10.6.6.6` with a 1-hour
    /// lying TTL, and no self-trigger or retaliation target.
    pub fn new(
        name: impl Into<String>,
        country: CountryCode,
        watched: Vec<String>,
    ) -> AdaptiveSpec {
        AdaptiveSpec {
            name: name.into(),
            country,
            watched,
            initial_stage: Stage::Watch,
            rst_probability: 0.9,
            throttle_base: 0.3,
            throttle_step: 1e-3,
            poison_ip: Ipv4Addr::new(10, 6, 6, 6),
            poison_ttl: SimDuration::from_secs(3_600),
            ip_block_after: None,
            collector: Some("collector.encore-repro.net".to_string()),
        }
    }

    /// Builder: start on `stage` instead of [`Stage::Watch`].
    pub fn starting_at(mut self, stage: Stage) -> AdaptiveSpec {
        self.initial_stage = stage;
        self
    }

    /// Builder: self-escalate to [`Stage::IpBlock`] after `k` detected
    /// fetches.
    pub fn ip_block_after(mut self, k: u64) -> AdaptiveSpec {
        self.ip_block_after = Some(k);
        self
    }

    /// Builder: set the lying TTL on poisoned answers.
    pub fn with_poison_ttl(mut self, ttl: SimDuration) -> AdaptiveSpec {
        self.poison_ttl = ttl;
        self
    }

    /// Builder: set the collection-server domain retaliation blocks.
    pub fn retaliating_against(mut self, collector: impl Into<String>) -> AdaptiveSpec {
        self.collector = Some(collector.into());
        self
    }

    /// Materialise the censor, resolving the watched domains (and their
    /// `www.` aliases) against the network's authoritative DNS so the
    /// TCP-stage rungs know which addresses to interfere with — the same
    /// blacklist compilation as
    /// [`crate::national::NationalCensor::resolve_ip_rules`].
    pub fn build(&self, dns: &DnsSystem) -> AdaptiveCensor {
        let mut watched_ips = Vec::new();
        for d in &self.watched {
            for name in [d.clone(), format!("www.{d}")] {
                if let Some(answer) = dns.authoritative(&name) {
                    watched_ips.push(answer.ip);
                }
            }
        }
        // The watch list is fixed for the censor's lifetime; compile the
        // per-request host matching (exact name + dot-suffix) up front
        // so the hot on_http_request path allocates nothing.
        let watched_suffixes = self
            .watched
            .iter()
            .map(|d| {
                (
                    d.to_ascii_lowercase(),
                    format!(".{}", d.to_ascii_lowercase()),
                )
            })
            .collect();
        AdaptiveCensor {
            stage: Cell::new(self.initial_stage),
            observed: Cell::new(0),
            watched_ips,
            watched_suffixes,
            spec: self.clone(),
        }
    }
}

/// Every shard thread materialises the adaptive censor against its own
/// network; shared topology means every shard compiles the identical
/// address blacklist.
impl MiddleboxFactory for AdaptiveSpec {
    fn build_middlebox(&self, net: &Network) -> Box<dyn Middlebox> {
        Box::new(self.build(&net.dns))
    }
}

/// The live stateful middlebox. See the module docs for the ladder.
pub struct AdaptiveCensor {
    spec: AdaptiveSpec,
    stage: Cell<Stage>,
    /// Cross-origin fetches to watched targets detected so far (counted
    /// at the HTTP stage, where DPI sees the request URL).
    observed: Cell<u64>,
    watched_ips: Vec<Ipv4Addr>,
    /// Pre-lowercased `(domain, ".domain")` pairs compiled at build time
    /// for allocation-free host matching on the per-request path.
    watched_suffixes: Vec<(String, String)>,
}

impl AdaptiveCensor {
    /// The current rung.
    pub fn stage(&self) -> Stage {
        self.stage.get()
    }

    /// Cross-origin fetches to watched targets detected so far.
    pub fn observed(&self) -> u64 {
        self.observed.get()
    }

    /// The spec this censor was built from.
    pub fn spec(&self) -> &AdaptiveSpec {
        &self.spec
    }

    fn watches_host(&self, host: &str) -> bool {
        let hb = host.as_bytes();
        self.watched_suffixes.iter().any(|(domain, suffix)| {
            let sb = suffix.as_bytes();
            host.eq_ignore_ascii_case(domain)
                || (hb.len() > sb.len() && hb[hb.len() - sb.len()..].eq_ignore_ascii_case(sb))
        })
    }

    fn is_collector_host(&self, host: &str) -> bool {
        self.spec
            .collector
            .as_deref()
            .is_some_and(|c| host.eq_ignore_ascii_case(c))
    }

    /// Current throttle drop probability: escalates with what the censor
    /// has seen.
    fn throttle_probability(&self) -> f64 {
        (self.spec.throttle_base + self.spec.throttle_step * self.observed.get() as f64).min(1.0)
    }
}

impl Middlebox for AdaptiveCensor {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn applies_to(&self, client: &Host) -> bool {
        // Stage-independent by contract: coverage never changes while
        // installed, so compiled session pipelines stay valid across
        // escalations.
        client.country == self.spec.country
    }

    fn on_dns(&self, name: &str, _ctx: &StageContext<'_>) -> DnsAction {
        match self.stage.get() {
            Stage::DnsPoison if self.watches_host(name) => DnsAction::Poison {
                ip: self.spec.poison_ip,
                ttl: self.spec.poison_ttl,
            },
            Stage::Retaliate if self.is_collector_host(name) => DnsAction::NxDomain,
            _ => DnsAction::Pass,
        }
    }

    fn on_tcp(&self, attempt: &TcpAttempt, ctx: &StageContext<'_>) -> TcpAction {
        let watched_dst = self.watched_ips.contains(&attempt.dst);
        match self.stage.get() {
            Stage::RstInjection if watched_dst => {
                let draw = mix_unit(u64::from(u32::from(attempt.dst)), ctx.now.as_micros());
                if draw < self.spec.rst_probability {
                    TcpAction::Reset
                } else {
                    TcpAction::Pass
                }
            }
            Stage::IpBlock | Stage::Retaliate if watched_dst => TcpAction::Drop,
            _ => TcpAction::Pass,
        }
    }

    fn on_http_request(&self, req: &HttpRequest, ctx: &StageContext<'_>) -> HttpAction {
        let Some(host) = host_of(&req.url) else {
            return HttpAction::Pass;
        };
        if self.watches_host(&host) {
            // Detection: the DPI box logs the cross-origin fetch first,
            // then decides what to do with it.
            self.observed.set(self.observed.get() + 1);
            if let Some(k) = self.spec.ip_block_after {
                if self.observed.get() >= k && self.stage.get() < Stage::IpBlock {
                    self.stage.set(Stage::IpBlock);
                }
            }
            if self.stage.get() == Stage::Throttle {
                let draw = unit_draw(&req.url, ctx.now.as_micros());
                if draw < self.throttle_probability() {
                    return HttpAction::Drop;
                }
            }
        } else if self.stage.get() == Stage::Retaliate && self.is_collector_host(&host) {
            // Warm clients with cached collector state still cross the
            // censor at the HTTP stage — retaliation silences them too.
            return HttpAction::Drop;
        }
        HttpAction::Pass
    }

    /// Control vocabulary: `escalate` (one rung up), `stand-down` (back
    /// to [`Stage::Watch`]), `set-stage:<slug>`. Unknown signals are
    /// ignored; a signal that leaves the stage unchanged reports `false`.
    fn on_control(&self, signal: &str, _now: SimTime) -> bool {
        let current = self.stage.get();
        let next = match signal {
            "escalate" => Some(current.next()),
            "stand-down" => Some(Stage::Watch),
            _ => signal.strip_prefix("set-stage:").and_then(Stage::from_slug),
        };
        match next {
            Some(stage) if stage != current => {
                self.stage.set(stage);
                true
            }
            _ => false,
        }
    }
}

/// One scheduled stage transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reaction {
    /// One rung up the ladder.
    Escalate,
    /// Back to [`Stage::Watch`].
    StandDown,
    /// Jump to an explicit rung.
    SetStage(Stage),
}

impl Reaction {
    /// The [`Middlebox::on_control`] signal this reaction delivers.
    pub fn signal(&self) -> String {
        match self {
            Reaction::Escalate => "escalate".to_string(),
            Reaction::StandDown => "stand-down".to_string(),
            Reaction::SetStage(stage) => format!("set-stage:{}", stage.slug()),
        }
    }
}

/// The control-plane schedule of an adaptive censor: `(SimTime,
/// Reaction)` steps addressed to one middlebox by name, fired by the
/// world engine as first-class events
/// (`population::WorldRecipe::with_reaction`). Like
/// [`crate::timeline::PolicyTimeline`], steps stay time-sorted with
/// insertion order as the tie-break, and the whole policy is plain
/// `Send + Sync + Clone` data, so sharded runs broadcast it verbatim to
/// every shard — which is what keeps scheduled adaptive censors
/// verdict-invariant across shard counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReactionPolicy {
    /// Diagnostic name of the censor the steps are addressed to.
    pub censor: String,
    steps: Vec<(SimTime, Reaction)>,
}

impl ReactionPolicy {
    /// An empty policy addressed to `censor`.
    pub fn new(censor: impl Into<String>) -> ReactionPolicy {
        ReactionPolicy {
            censor: censor.into(),
            steps: Vec::new(),
        }
    }

    /// Builder: schedule `reaction` at `at` (time-sorted, insertion
    /// order breaks ties).
    pub fn at(mut self, at: SimTime, reaction: Reaction) -> ReactionPolicy {
        let idx = self.steps.partition_point(|(t, _)| *t <= at);
        self.steps.insert(idx, (at, reaction));
        self
    }

    /// The schedule, time-ordered.
    pub fn steps(&self) -> &[(SimTime, Reaction)] {
        &self.steps
    }

    /// Number of scheduled reactions.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::{country, IspClass, World};
    use netsim::http::{ContentType, HttpResponse};
    use netsim::network::{ConstHandler, FetchError, Network};
    use sim_core::SimRng;

    const TARGET: &str = "target.example";
    const COLLECTOR: &str = "collector.encore-repro.net";

    fn world() -> Network {
        let mut net = Network::ideal(World::builtin());
        for d in [TARGET, COLLECTOR] {
            net.add_server(
                d,
                country("US"),
                Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
            );
        }
        net
    }

    fn spec() -> AdaptiveSpec {
        AdaptiveSpec::new("ir-adaptive", country("IR"), vec![TARGET.to_string()])
            .retaliating_against(COLLECTOR)
    }

    fn fetch_result(
        net: &mut Network,
        client: &Host,
        url: &str,
        at: SimTime,
    ) -> Result<HttpResponse, FetchError> {
        let mut rng = SimRng::new(7);
        net.fetch(client, &netsim::http::HttpRequest::get(url), at, &mut rng)
            .result
    }

    #[test]
    fn spec_is_thread_shareable_plain_data() {
        fn check<T: Send + Sync + Clone>() {}
        check::<AdaptiveSpec>();
        check::<ReactionPolicy>();
        check::<Stage>();
        check::<Reaction>();
    }

    #[test]
    fn watch_stage_counts_without_interfering() {
        let mut net = world();
        let censor = spec().build(&net.dns);
        let client = net.add_client(country("IR"), IspClass::Residential);
        let ctx = StageContext {
            client: &client,
            now: SimTime::ZERO,
        };
        // Every hook passes while watching…
        assert_eq!(censor.on_dns(TARGET, &ctx), DnsAction::Pass);
        let dst = net.dns.authoritative(TARGET).unwrap().ip;
        assert_eq!(censor.on_tcp(&TcpAttempt::http(dst), &ctx), TcpAction::Pass);
        let req = HttpRequest::get(format!("http://{TARGET}/favicon.ico"));
        assert_eq!(censor.on_http_request(&req, &ctx), HttpAction::Pass);
        // …but the cross-origin fetch was detected and counted.
        assert_eq!(censor.observed(), 1);
        // Requests to unwatched hosts are not counted.
        let other = HttpRequest::get("http://unrelated.example/x");
        assert_eq!(censor.on_http_request(&other, &ctx), HttpAction::Pass);
        assert_eq!(censor.observed(), 1);
        // Unknown control signals are ignored.
        assert!(!censor.on_control("unknown-signal", SimTime::ZERO));
    }

    #[test]
    fn ladder_escalates_and_saturates() {
        let censor = spec().build(&world().dns);
        assert_eq!(censor.stage(), Stage::Watch);
        for expected in [
            Stage::RstInjection,
            Stage::Throttle,
            Stage::DnsPoison,
            Stage::IpBlock,
            Stage::Retaliate,
        ] {
            assert!(censor.on_control("escalate", SimTime::ZERO));
            assert_eq!(censor.stage(), expected);
        }
        // Saturation: escalate at the top is a no-op…
        assert!(!censor.on_control("escalate", SimTime::ZERO));
        assert_eq!(censor.stage(), Stage::Retaliate);
        // …and stand-down resets the ladder.
        assert!(censor.on_control("stand-down", SimTime::ZERO));
        assert_eq!(censor.stage(), Stage::Watch);
        // Explicit jumps parse slugs; garbage is ignored.
        assert!(censor.on_control("set-stage:dns-poison", SimTime::ZERO));
        assert_eq!(censor.stage(), Stage::DnsPoison);
        assert!(!censor.on_control("set-stage:nonsense", SimTime::ZERO));
        assert!(!censor.on_control("set-stage:dns-poison", SimTime::ZERO));
    }

    #[test]
    fn dns_poison_carries_the_lying_ttl() {
        let censor = spec()
            .with_poison_ttl(SimDuration::from_secs(9_999))
            .starting_at(Stage::DnsPoison)
            .build(&world().dns);
        let client = world().add_client(country("IR"), IspClass::Residential);
        let ctx = StageContext {
            client: &client,
            now: SimTime::ZERO,
        };
        assert_eq!(
            censor.on_dns(TARGET, &ctx),
            DnsAction::Poison {
                ip: Ipv4Addr::new(10, 6, 6, 6),
                ttl: SimDuration::from_secs(9_999),
            }
        );
        // Subdomains of a watched name are poisoned too; strangers pass.
        assert_ne!(censor.on_dns("www.target.example", &ctx), DnsAction::Pass);
        assert_eq!(censor.on_dns("other.example", &ctx), DnsAction::Pass);
    }

    #[test]
    fn ip_block_stage_null_routes_watched_addresses() {
        let mut net = world();
        net.add_middlebox(Box::new(spec().starting_at(Stage::IpBlock).build(&net.dns)));
        let ir = net.add_client(country("IR"), IspClass::Residential);
        let us = net.add_client(country("US"), IspClass::Residential);
        let url = format!("http://{TARGET}/favicon.ico");
        assert_eq!(
            fetch_result(&mut net, &ir, &url, SimTime::ZERO),
            Err(FetchError::ConnectTimeout),
            "watched address must be null-routed for covered clients"
        );
        assert!(fetch_result(&mut net, &us, &url, SimTime::ZERO).is_ok());
        // The collector stays reachable below Retaliate.
        let collector_url = format!("http://{COLLECTOR}/submit");
        assert!(fetch_result(&mut net, &ir, &collector_url, SimTime::ZERO).is_ok());
    }

    #[test]
    fn retaliation_blocks_the_collection_server() {
        let mut net = world();
        net.add_middlebox(Box::new(
            spec().starting_at(Stage::Retaliate).build(&net.dns),
        ));
        let ir = net.add_client(country("IR"), IspClass::Residential);
        let collector_url = format!("http://{COLLECTOR}/submit");
        assert_eq!(
            fetch_result(&mut net, &ir, &collector_url, SimTime::ZERO),
            Err(FetchError::DnsNxDomain),
            "retaliation forges NXDOMAIN for the collector"
        );
        // The watched target stays IP-blocked as well.
        let url = format!("http://{TARGET}/favicon.ico");
        assert_eq!(
            fetch_result(&mut net, &ir, &url, SimTime::ZERO),
            Err(FetchError::ConnectTimeout)
        );
    }

    #[test]
    fn rst_injection_is_probabilistic_and_deterministic() {
        let censor = spec().starting_at(Stage::RstInjection).build(&world().dns);
        let client = world().add_client(country("IR"), IspClass::Residential);
        let dst = world().dns.authoritative(TARGET).unwrap().ip;
        let mut resets = 0;
        for i in 0..1_000u64 {
            let ctx = StageContext {
                client: &client,
                now: SimTime::from_micros(i * 1_003),
            };
            let action = censor.on_tcp(&TcpAttempt::http(dst), &ctx);
            let again = censor.on_tcp(&TcpAttempt::http(dst), &ctx);
            assert_eq!(action, again, "same instant, same decision");
            if action == TcpAction::Reset {
                resets += 1;
            }
        }
        // rst_probability defaults to 0.9.
        assert!((850..=950).contains(&resets), "resets = {resets}");
    }

    #[test]
    fn throttle_escalates_with_observations() {
        let censor = spec().starting_at(Stage::Throttle).build(&world().dns);
        let client = world().add_client(country("IR"), IspClass::Residential);
        let base = censor.throttle_probability();
        for i in 0..500u64 {
            let ctx = StageContext {
                client: &client,
                now: SimTime::from_micros(i * 997),
            };
            let req = HttpRequest::get(format!("http://{TARGET}/r{i}.png"));
            let _ = censor.on_http_request(&req, &ctx);
        }
        assert_eq!(censor.observed(), 500);
        let escalated = censor.throttle_probability();
        assert!(
            escalated > base + 0.4,
            "drop probability must escalate: {base} -> {escalated}"
        );
    }

    #[test]
    fn k_threshold_self_escalates_to_ip_block() {
        let mut net = world();
        net.add_middlebox(Box::new(spec().ip_block_after(5).build(&net.dns)));
        let ir = net.add_client(country("IR"), IspClass::Residential);
        let url = format!("http://{TARGET}/favicon.ico");
        let mut outcomes = Vec::new();
        for i in 0..8u64 {
            // Fresh cold sessions each time (Network::fetch), spaced past
            // the keep-alive window so every fetch crosses the censor.
            outcomes.push(fetch_result(&mut net, &ir, &url, SimTime::from_secs(i * 600)).is_ok());
        }
        // The first 5 fetches are observed and pass — including the 5th
        // (the triggering request itself is counted at the HTTP stage
        // and sails through; only *subsequent* handshakes hit the IP
        // block the observation installed).
        assert_eq!(outcomes[..5], [true, true, true, true, true]);
        assert_eq!(outcomes[5..], [false, false, false]);
    }

    #[test]
    fn reaction_policy_orders_steps_with_insertion_tiebreak() {
        let t = SimTime::from_secs(100);
        let policy = ReactionPolicy::new("x")
            .at(SimTime::from_secs(200), Reaction::StandDown)
            .at(t, Reaction::Escalate)
            .at(t, Reaction::SetStage(Stage::IpBlock));
        let steps: Vec<_> = policy
            .steps()
            .iter()
            .map(|(at, r)| (at.as_secs(), *r))
            .collect();
        assert_eq!(
            steps,
            vec![
                (100, Reaction::Escalate),
                (100, Reaction::SetStage(Stage::IpBlock)),
                (200, Reaction::StandDown),
            ]
        );
        assert_eq!(Reaction::Escalate.signal(), "escalate");
        assert_eq!(Reaction::StandDown.signal(), "stand-down");
        assert_eq!(
            Reaction::SetStage(Stage::RstInjection).signal(),
            "set-stage:rst-injection"
        );
    }

    #[test]
    fn stage_slugs_round_trip() {
        for stage in [
            Stage::Watch,
            Stage::RstInjection,
            Stage::Throttle,
            Stage::DnsPoison,
            Stage::IpBlock,
            Stage::Retaliate,
        ] {
            assert_eq!(Stage::from_slug(stage.slug()), Some(stage));
        }
        assert_eq!(Stage::from_slug("bogus"), None);
        assert!(Stage::Retaliate.is_hard_block());
        assert!(!Stage::Throttle.is_hard_block());
    }
}
