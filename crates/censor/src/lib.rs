//! # censor — censorship models for the Encore reproduction
//!
//! Paper §3.1's adversary can "reject, block, or modify any stage of a Web
//! connection in order to filter Web access for subsets of clients",
//! operating a blacklist while being "unwilling to filter all Web traffic".
//! This crate models that adversary:
//!
//! * [`policy`] — blacklist rules: *what* is filtered (domains, URL
//!   prefixes, exact URLs, keywords, IPs) and *how* (DNS NXDOMAIN/redirect/
//!   drop, IP drop, TCP RST, HTTP drop/reset/block-page/redirect, and
//!   probabilistic throttling — the "subtle" filtering the paper says
//!   Encore struggles to see).
//! * [`national`] — [`national::NationalCensor`], a [`netsim::Middlebox`]
//!   that applies a policy to all clients in one country.
//! * [`registry`] — ready-made policies reproducing the ground truth the
//!   paper verifies against in §7.2: YouTube filtered in Pakistan, Iran and
//!   China; Twitter and Facebook in China and Iran.
//! * [`testbed`] — the §7.1 "Web censorship testbed, which has DNS,
//!   firewall, and Web server configurations that emulate seven varieties
//!   of DNS, IP, and HTTP filtering", used to validate measurement-task
//!   soundness.
//! * [`timeline`] — [`timeline::PolicyTimeline`], an ordered schedule of
//!   install/lift/rewrite changes that makes censorship a function of
//!   time on one continuously-running world (the paper's §1: filtering
//!   "varies over time in response to changing social or political
//!   conditions").
//! * [`adaptive`] — [`adaptive::AdaptiveCensor`], the §8 adversary that
//!   *notices* Encore and reacts: an escalation ladder (probabilistic
//!   RST injection → rate-based throttling → DNS poisoning with lying
//!   TTLs → IP blocking → retaliation against the collection server)
//!   driven by scheduled [`adaptive::ReactionPolicy`] events and/or a
//!   detected-fetch threshold.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod fingerprint;
pub mod national;
pub mod policy;
pub mod registry;
pub mod testbed;
pub mod timeline;

pub use adaptive::{AdaptiveCensor, AdaptiveSpec, Reaction, ReactionPolicy};
pub use fingerprint::EncoreFingerprinter;
pub use national::NationalCensor;
pub use policy::{BlockTarget, CensorPolicy, Mechanism, Rule};
pub use registry::{ground_truth, install_world_censors, GroundTruth};
pub use testbed::{FilterVariety, Testbed, TESTBED_DOMAIN};
pub use timeline::{CensorSpec, PolicyChange, PolicyTimeline};
