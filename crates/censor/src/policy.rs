//! Censorship policies: what to filter and how.
//!
//! A [`CensorPolicy`] is an ordered list of [`Rule`]s. Each rule pairs a
//! [`BlockTarget`] (the *what*: domain, URL prefix, exact URL, keyword, or
//! IP) with a [`Mechanism`] (the *how*: which of §3.1's interference
//! techniques to apply). The first matching rule wins, mirroring how real
//! filtering appliances evaluate blacklists.

use netsim::http::{host_of, HttpRequest, HttpResponse};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// What a rule matches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockTarget {
    /// A DNS domain, including all subdomains (`youtube.com` matches
    /// `www.youtube.com`).
    Domain(String),
    /// All URLs beginning with this prefix (scheme-less compare; paper
    /// §5.1's "URL prefix" pattern).
    UrlPrefix(String),
    /// One exact URL (a single blog post, §4.3.2).
    UrlExact(String),
    /// A keyword appearing in the URL or in response content.
    Keyword(String),
    /// A specific server address (IP-based blocking).
    Ip(Ipv4Addr),
}

impl BlockTarget {
    /// Whether this target matches a DNS name.
    pub fn matches_host(&self, host: &str) -> bool {
        match self {
            BlockTarget::Domain(d) => {
                let d = d.to_ascii_lowercase();
                let host = host.to_ascii_lowercase();
                host == d || host.ends_with(&format!(".{d}"))
            }
            BlockTarget::Keyword(k) => host.to_ascii_lowercase().contains(&k.to_ascii_lowercase()),
            _ => false,
        }
    }

    /// Whether this target matches a full URL.
    pub fn matches_url(&self, url: &str) -> bool {
        let norm = normalize(url);
        match self {
            BlockTarget::Domain(_) => host_of(url).is_some_and(|h| self.matches_host(&h)),
            BlockTarget::UrlPrefix(p) => norm.starts_with(&normalize(p)),
            BlockTarget::UrlExact(e) => norm == normalize(e),
            BlockTarget::Keyword(k) => norm.contains(&k.to_ascii_lowercase()),
            BlockTarget::Ip(_) => false,
        }
    }

    /// Whether this target matches a server IP.
    pub fn matches_ip(&self, ip: Ipv4Addr) -> bool {
        matches!(self, BlockTarget::Ip(i) if *i == ip)
    }

    /// Whether this target matches response content (keyword rules only).
    pub fn matches_content(&self, resp: &HttpResponse) -> bool {
        match self {
            BlockTarget::Keyword(k) => {
                let k = k.to_ascii_lowercase();
                resp.keywords.iter().any(|w| w.to_ascii_lowercase() == k)
            }
            _ => false,
        }
    }
}

/// Strip scheme and lower-case for URL comparison.
fn normalize(url: &str) -> String {
    url.trim()
        .strip_prefix("http://")
        .or_else(|| url.trim().strip_prefix("https://"))
        .or_else(|| url.trim().strip_prefix("//"))
        .unwrap_or(url.trim())
        .to_ascii_lowercase()
}

/// How a censor interferes once a rule matches (paper §3.1's menu).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mechanism {
    /// Forge NXDOMAIN at the resolver.
    DnsNxDomain,
    /// Forge an A record pointing at this address (block-page server or
    /// unroutable sinkhole).
    DnsRedirect(Ipv4Addr),
    /// Silently drop DNS queries.
    DnsDrop,
    /// Drop all packets to the destination address (firewall null-route).
    IpDrop,
    /// Inject TCP RSTs during the handshake.
    TcpReset,
    /// Drop the HTTP request after inspecting it.
    HttpDrop,
    /// Reset the connection on seeing the HTTP request (GFW-style).
    HttpReset,
    /// Serve an explanatory block page instead of the content.
    HttpBlockPage,
    /// 302-redirect the browser to a block-page URL.
    HttpRedirect(String),
    /// "Subtle" filtering: drop each exchange with this probability,
    /// degrading rather than denying service. The paper (§1) notes such
    /// filtering "can be indistinguishable from application errors or poor
    /// performance" — the soundness experiments use this mechanism to show
    /// Encore's detector needs many samples to see it.
    Throttle {
        /// Per-exchange drop probability in [0, 1].
        drop_probability: f64,
    },
}

impl Mechanism {
    /// Whether this mechanism acts at the DNS stage.
    pub fn is_dns(&self) -> bool {
        matches!(
            self,
            Mechanism::DnsNxDomain | Mechanism::DnsRedirect(_) | Mechanism::DnsDrop
        )
    }

    /// Whether this mechanism acts at the TCP/IP stage.
    pub fn is_tcp(&self) -> bool {
        matches!(self, Mechanism::IpDrop | Mechanism::TcpReset)
    }

    /// Whether this mechanism acts at the HTTP stage.
    pub fn is_http(&self) -> bool {
        matches!(
            self,
            Mechanism::HttpDrop
                | Mechanism::HttpReset
                | Mechanism::HttpBlockPage
                | Mechanism::HttpRedirect(_)
                | Mechanism::Throttle { .. }
        )
    }
}

/// One blacklist entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// What to match.
    pub target: BlockTarget,
    /// What to do on match.
    pub mechanism: Mechanism,
}

impl Rule {
    /// Construct a rule.
    pub fn new(target: BlockTarget, mechanism: Mechanism) -> Rule {
        Rule { target, mechanism }
    }
}

/// An ordered blacklist (first match wins).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CensorPolicy {
    /// Diagnostic name, e.g. `"great-firewall"`.
    pub name: String,
    /// The rules.
    pub rules: Vec<Rule>,
}

impl CensorPolicy {
    /// An empty (non-filtering) policy.
    pub fn named(name: impl Into<String>) -> CensorPolicy {
        CensorPolicy {
            name: name.into(),
            rules: Vec::new(),
        }
    }

    /// Builder: append a rule.
    pub fn with_rule(mut self, target: BlockTarget, mechanism: Mechanism) -> CensorPolicy {
        self.rules.push(Rule::new(target, mechanism));
        self
    }

    /// Builder: block an entire domain with the given mechanism.
    pub fn block_domain(self, domain: &str, mechanism: Mechanism) -> CensorPolicy {
        self.with_rule(BlockTarget::Domain(domain.to_string()), mechanism)
    }

    /// First rule whose target matches the DNS name, considering only
    /// DNS-stage mechanisms.
    pub fn match_dns(&self, host: &str) -> Option<&Rule> {
        self.rules
            .iter()
            .find(|r| r.mechanism.is_dns() && r.target.matches_host(host))
    }

    /// First rule whose target matches the destination IP, considering
    /// only TCP-stage mechanisms. Domain rules require the caller to have
    /// pre-resolved them — see
    /// [`crate::national::NationalCensor::resolve_ip_rules`].
    pub fn match_tcp(&self, ip: Ipv4Addr) -> Option<&Rule> {
        self.rules
            .iter()
            .find(|r| r.mechanism.is_tcp() && r.target.matches_ip(ip))
    }

    /// First rule matching an outgoing HTTP request (HTTP-stage
    /// mechanisms; domain, prefix, exact and keyword targets all apply to
    /// the URL).
    pub fn match_http_request(&self, req: &HttpRequest) -> Option<&Rule> {
        self.rules
            .iter()
            .find(|r| r.mechanism.is_http() && r.target.matches_url(&req.url))
    }

    /// First rule matching response content (keyword rules).
    pub fn match_http_response(&self, resp: &HttpResponse) -> Option<&Rule> {
        self.rules
            .iter()
            .find(|r| r.mechanism.is_http() && r.target.matches_content(resp))
    }

    /// Whether any rule targets this host at any stage (used by experiment
    /// construction, not by enforcement).
    pub fn targets_host(&self, host: &str) -> bool {
        self.rules.iter().any(|r| r.target.matches_host(host))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::http::ContentType;

    #[test]
    fn domain_matches_subdomains() {
        let t = BlockTarget::Domain("youtube.com".into());
        assert!(t.matches_host("youtube.com"));
        assert!(t.matches_host("www.youtube.com"));
        assert!(t.matches_host("WWW.YOUTUBE.COM"));
        assert!(!t.matches_host("notyoutube.com"));
        assert!(!t.matches_host("youtube.com.evil.net"));
    }

    #[test]
    fn domain_matches_urls_via_host() {
        let t = BlockTarget::Domain("youtube.com".into());
        assert!(t.matches_url("http://www.youtube.com/watch?v=x"));
        assert!(!t.matches_url("http://example.com/youtube.com"));
    }

    #[test]
    fn url_prefix_matching_ignores_scheme_and_case() {
        let t = BlockTarget::UrlPrefix("http://blog.example/politics/".into());
        assert!(t.matches_url("http://blog.example/politics/post-1"));
        assert!(t.matches_url("https://BLOG.example/politics/post-2"));
        assert!(!t.matches_url("http://blog.example/sports/post-1"));
    }

    #[test]
    fn url_exact_matching() {
        let t = BlockTarget::UrlExact("http://blog.example/post".into());
        assert!(t.matches_url("http://blog.example/post"));
        assert!(!t.matches_url("http://blog.example/post2"));
    }

    #[test]
    fn keyword_matches_url_and_content() {
        let t = BlockTarget::Keyword("falungong".into());
        assert!(t.matches_url("http://example.com/falungong-news"));
        let resp = HttpResponse::ok(ContentType::Html, 100).with_keywords(vec!["FalunGong".into()]);
        assert!(t.matches_content(&resp));
        let clean = HttpResponse::ok(ContentType::Html, 100);
        assert!(!t.matches_content(&clean));
    }

    #[test]
    fn ip_target_only_matches_ip() {
        let ip = Ipv4Addr::new(100, 1, 2, 3);
        let t = BlockTarget::Ip(ip);
        assert!(t.matches_ip(ip));
        assert!(!t.matches_ip(Ipv4Addr::new(100, 1, 2, 4)));
        assert!(!t.matches_url("http://100.1.2.3/"));
        assert!(!t.matches_host("example.com"));
    }

    #[test]
    fn mechanism_stage_partition() {
        let all = [
            Mechanism::DnsNxDomain,
            Mechanism::DnsRedirect(Ipv4Addr::UNSPECIFIED),
            Mechanism::DnsDrop,
            Mechanism::IpDrop,
            Mechanism::TcpReset,
            Mechanism::HttpDrop,
            Mechanism::HttpReset,
            Mechanism::HttpBlockPage,
            Mechanism::HttpRedirect("http://block/".into()),
            Mechanism::Throttle {
                drop_probability: 0.5,
            },
        ];
        for m in &all {
            let stages = [m.is_dns(), m.is_tcp(), m.is_http()];
            assert_eq!(
                stages.iter().filter(|b| **b).count(),
                1,
                "{m:?} must belong to exactly one stage"
            );
        }
    }

    #[test]
    fn first_match_wins() {
        let p = CensorPolicy::named("test")
            .block_domain("x.com", Mechanism::DnsNxDomain)
            .block_domain("x.com", Mechanism::DnsDrop);
        let r = p.match_dns("x.com").unwrap();
        assert_eq!(r.mechanism, Mechanism::DnsNxDomain);
    }

    #[test]
    fn stages_do_not_cross_match() {
        let p = CensorPolicy::named("test").block_domain("x.com", Mechanism::HttpBlockPage);
        // An HTTP-stage rule must not fire at the DNS stage.
        assert!(p.match_dns("x.com").is_none());
        assert!(p
            .match_http_request(&HttpRequest::get("http://x.com/page"))
            .is_some());
    }

    #[test]
    fn empty_policy_matches_nothing() {
        let p = CensorPolicy::named("empty");
        assert!(p.match_dns("x.com").is_none());
        assert!(p.match_tcp(Ipv4Addr::new(1, 2, 3, 4)).is_none());
        assert!(p
            .match_http_request(&HttpRequest::get("http://x.com/"))
            .is_none());
        assert!(!p.targets_host("x.com"));
    }

    #[test]
    fn targets_host_covers_all_stages() {
        let p = CensorPolicy::named("t").block_domain("y.com", Mechanism::TcpReset);
        assert!(p.targets_host("y.com"));
        assert!(p.targets_host("www.y.com"));
        assert!(!p.targets_host("z.com"));
    }
}
