//! National censors: a policy applied at a country's border.
//!
//! A [`NationalCensor`] is a [`Middlebox`] that enforces one
//! [`CensorPolicy`] against every client located in its country —
//! modelling both "centralized traffic filters on a national backbone" and
//! the aggregate behaviour of per-ISP filtering (paper §3.1). Optionally
//! the censor only covers a subset of access-network classes, modelling
//! the paper's §2 observation that "residential and mobile broadband
//! networks can face much different censorship practices than academic and
//! research networks".

use crate::policy::{BlockTarget, CensorPolicy, Mechanism, Rule};
use netsim::dns::DnsSystem;
use netsim::geo::{CountryCode, IspClass};
use netsim::host::Host;
use netsim::http::{HttpRequest, HttpResponse};
use netsim::middlebox::{DnsAction, HttpAction, Middlebox, StageContext, TcpAction};
use netsim::tcp::TcpAttempt;

/// A censor enforcing a policy on one country's clients.
pub struct NationalCensor {
    country: CountryCode,
    policy: CensorPolicy,
    /// `None` = all access networks; `Some(classes)` = only those classes
    /// are filtered (e.g. residential+mobile but not academic).
    covered_isps: Option<Vec<IspClass>>,
    /// Enforcement window: policies switch on (and off) over time —
    /// censorship "varies over time in response to changing social or
    /// political conditions (e.g., a national election)" (paper §1).
    /// `None` bounds mean "always".
    active_from: Option<sim_core::SimTime>,
    active_until: Option<sim_core::SimTime>,
}

impl NationalCensor {
    /// Censor covering every client in `country`.
    pub fn new(country: CountryCode, policy: CensorPolicy) -> NationalCensor {
        NationalCensor {
            country,
            policy,
            covered_isps: None,
            active_from: None,
            active_until: None,
        }
    }

    /// Restrict coverage to specific access-network classes.
    pub fn covering(mut self, isps: Vec<IspClass>) -> NationalCensor {
        self.covered_isps = Some(isps);
        self
    }

    /// Only enforce from `t` onward (an election-eve switch-on).
    pub fn active_from(mut self, t: sim_core::SimTime) -> NationalCensor {
        self.active_from = Some(t);
        self
    }

    /// Stop enforcing at `t` (a block being lifted).
    pub fn active_until(mut self, t: sim_core::SimTime) -> NationalCensor {
        self.active_until = Some(t);
        self
    }

    /// Whether the censor is enforcing at time `t`.
    pub fn is_active_at(&self, t: sim_core::SimTime) -> bool {
        self.active_from.is_none_or(|from| t >= from)
            && self.active_until.is_none_or(|until| t < until)
    }

    /// The enforced policy.
    pub fn policy(&self) -> &CensorPolicy {
        &self.policy
    }

    /// The censor's country.
    pub fn country(&self) -> CountryCode {
        self.country
    }

    /// Expand `Domain` rules carrying TCP-stage mechanisms into concrete
    /// `Ip` rules using the authoritative DNS database. Real firewalls
    /// null-route addresses, not names; this models the censor doing its
    /// own resolution when compiling its blacklist.
    pub fn resolve_ip_rules(&mut self, dns: &DnsSystem) {
        let mut extra = Vec::new();
        for rule in &self.policy.rules {
            if rule.mechanism.is_tcp() {
                if let BlockTarget::Domain(d) = &rule.target {
                    if let Some(answer) = dns.authoritative(d) {
                        extra.push(Rule::new(
                            BlockTarget::Ip(answer.ip),
                            rule.mechanism.clone(),
                        ));
                    }
                    // Also resolve the common www. subdomain.
                    if let Some(answer) = dns.authoritative(&format!("www.{d}")) {
                        extra.push(Rule::new(
                            BlockTarget::Ip(answer.ip),
                            rule.mechanism.clone(),
                        ));
                    }
                }
            }
        }
        self.policy.rules.extend(extra);
    }
}

/// Deterministic pseudo-random unit value from a URL and a timestamp:
/// used by [`Mechanism::Throttle`] so the censor's probabilistic drops are
/// reproducible without threading an RNG through the middlebox trait.
/// (The `adaptive` module has its own draw with a stronger finalizer —
/// this one is only well-distributed when the URL varies per request.)
fn throttle_draw(url: &str, now_micros: u64) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in url.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= now_micros;
    h = h.wrapping_mul(0x0000_0100_0000_01B3);
    // Map the top 53 bits to [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn http_action_for(mechanism: &Mechanism, url: &str, now_micros: u64) -> HttpAction {
    match mechanism {
        Mechanism::HttpDrop => HttpAction::Drop,
        Mechanism::HttpReset => HttpAction::Reset,
        Mechanism::HttpBlockPage => HttpAction::BlockPage,
        Mechanism::HttpRedirect(loc) => HttpAction::RedirectTo(loc.clone()),
        Mechanism::Throttle { drop_probability } => {
            if throttle_draw(url, now_micros) < *drop_probability {
                HttpAction::Drop
            } else {
                HttpAction::Pass
            }
        }
        _ => HttpAction::Pass,
    }
}

impl Middlebox for NationalCensor {
    fn name(&self) -> &str {
        &self.policy.name
    }

    fn applies_to(&self, client: &Host) -> bool {
        client.country == self.country
            && self
                .covered_isps
                .as_ref()
                .is_none_or(|isps| isps.contains(&client.isp))
    }

    fn on_dns(&self, name: &str, ctx: &StageContext<'_>) -> DnsAction {
        if !self.is_active_at(ctx.now) {
            return DnsAction::Pass;
        }
        match self.policy.match_dns(name).map(|r| &r.mechanism) {
            Some(Mechanism::DnsNxDomain) => DnsAction::NxDomain,
            Some(Mechanism::DnsRedirect(ip)) => DnsAction::Redirect(*ip),
            Some(Mechanism::DnsDrop) => DnsAction::Drop,
            _ => DnsAction::Pass,
        }
    }

    fn dns_verdict_is_pure(&self) -> bool {
        // The DNS verdict is a pure function of the name unless an
        // activation window makes it time-dependent. Policy rules are
        // immutable and there is no control-signal state.
        self.active_from.is_none() && self.active_until.is_none()
    }

    fn on_tcp(&self, attempt: &TcpAttempt, ctx: &StageContext<'_>) -> TcpAction {
        if !self.is_active_at(ctx.now) {
            return TcpAction::Pass;
        }
        match self.policy.match_tcp(attempt.dst).map(|r| &r.mechanism) {
            Some(Mechanism::IpDrop) => TcpAction::Drop,
            Some(Mechanism::TcpReset) => TcpAction::Reset,
            _ => TcpAction::Pass,
        }
    }

    fn on_http_request(&self, req: &HttpRequest, ctx: &StageContext<'_>) -> HttpAction {
        if !self.is_active_at(ctx.now) {
            return HttpAction::Pass;
        }
        match self.policy.match_http_request(req) {
            Some(rule) => http_action_for(&rule.mechanism, &req.url, ctx.now.as_micros()),
            None => HttpAction::Pass,
        }
    }

    fn on_http_response(
        &self,
        req: &HttpRequest,
        resp: &HttpResponse,
        ctx: &StageContext<'_>,
    ) -> HttpAction {
        if !self.is_active_at(ctx.now) {
            return HttpAction::Pass;
        }
        match self.policy.match_http_response(resp) {
            Some(rule) => http_action_for(&rule.mechanism, &req.url, ctx.now.as_micros()),
            None => HttpAction::Pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::{country, World};
    use netsim::http::ContentType;
    use netsim::network::{ConstHandler, FetchError, Network};
    use sim_core::{SimRng, SimTime};

    fn img_server(n: &mut Network, name: &str) {
        n.add_server(
            name,
            country("US"),
            Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
        );
    }

    #[test]
    fn censor_applies_only_to_its_country() {
        let mut n = Network::ideal(World::builtin());
        img_server(&mut n, "youtube.com");
        let policy = CensorPolicy::named("pta").block_domain("youtube.com", Mechanism::DnsNxDomain);
        n.add_middlebox(Box::new(NationalCensor::new(country("PK"), policy)));
        let pk = n.add_client(country("PK"), IspClass::Residential);
        let us = n.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let req = HttpRequest::get("http://youtube.com/favicon.ico");
        assert_eq!(
            n.fetch(&pk, &req, SimTime::ZERO, &mut rng).result,
            Err(FetchError::DnsNxDomain)
        );
        assert!(n.fetch(&us, &req, SimTime::ZERO, &mut rng).result.is_ok());
    }

    #[test]
    fn isp_coverage_exempts_academic_networks() {
        let mut n = Network::ideal(World::builtin());
        img_server(&mut n, "blocked.com");
        let policy =
            CensorPolicy::named("isp-level").block_domain("blocked.com", Mechanism::DnsNxDomain);
        let censor = NationalCensor::new(country("IN"), policy)
            .covering(vec![IspClass::Residential, IspClass::Mobile]);
        n.add_middlebox(Box::new(censor));
        let res = n.add_client(country("IN"), IspClass::Residential);
        let aca = n.add_client(country("IN"), IspClass::Academic);
        let mut rng = SimRng::new(1);
        let req = HttpRequest::get("http://blocked.com/x.png");
        assert!(n.fetch(&res, &req, SimTime::ZERO, &mut rng).result.is_err());
        assert!(n.fetch(&aca, &req, SimTime::ZERO, &mut rng).result.is_ok());
    }

    #[test]
    fn resolve_ip_rules_enables_ip_blocking() {
        let mut n = Network::ideal(World::builtin());
        img_server(&mut n, "blocked.com");
        let policy = CensorPolicy::named("fw").block_domain("blocked.com", Mechanism::IpDrop);
        let mut censor = NationalCensor::new(country("CN"), policy);
        censor.resolve_ip_rules(&n.dns);
        n.add_middlebox(Box::new(censor));
        let cn = n.add_client(country("CN"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = n.fetch(
            &cn,
            &HttpRequest::get("http://blocked.com/x.png"),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(out.result, Err(FetchError::ConnectTimeout));
    }

    #[test]
    fn without_resolution_domain_tcp_rules_are_inert() {
        let mut n = Network::ideal(World::builtin());
        img_server(&mut n, "blocked.com");
        let policy = CensorPolicy::named("fw").block_domain("blocked.com", Mechanism::IpDrop);
        n.add_middlebox(Box::new(NationalCensor::new(country("CN"), policy)));
        let cn = n.add_client(country("CN"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = n.fetch(
            &cn,
            &HttpRequest::get("http://blocked.com/x.png"),
            SimTime::ZERO,
            &mut rng,
        );
        assert!(out.result.is_ok(), "unresolved domain+IpDrop cannot fire");
    }

    #[test]
    fn http_block_page_mechanism() {
        let mut n = Network::ideal(World::builtin());
        img_server(&mut n, "banned.com");
        let policy = CensorPolicy::named("bp").block_domain("banned.com", Mechanism::HttpBlockPage);
        n.add_middlebox(Box::new(NationalCensor::new(country("SA"), policy)));
        let sa = n.add_client(country("SA"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = n.fetch(
            &sa,
            &HttpRequest::get("http://banned.com/pic.png"),
            SimTime::ZERO,
            &mut rng,
        );
        let resp = out.result.unwrap();
        assert_eq!(resp.content_type, ContentType::Html);
        assert!(!resp.valid_body || resp.content_type != ContentType::Image);
    }

    #[test]
    fn throttle_drops_roughly_at_rate() {
        let policy = CensorPolicy::named("throttle").with_rule(
            BlockTarget::Domain("slow.com".into()),
            Mechanism::Throttle {
                drop_probability: 0.5,
            },
        );
        let censor = NationalCensor::new(country("IR"), policy);
        let mut n = Network::ideal(World::builtin());
        img_server(&mut n, "slow.com");
        let client = n.add_client(country("IR"), IspClass::Residential);
        let ctx_host = client.clone();
        let mut drops = 0;
        for i in 0..1_000u64 {
            let ctx = StageContext {
                client: &ctx_host,
                now: SimTime::from_micros(i * 1_017),
            };
            let req = HttpRequest::get(format!("http://slow.com/r{i}.png"));
            if censor.on_http_request(&req, &ctx) == HttpAction::Drop {
                drops += 1;
            }
        }
        assert!((380..620).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn throttle_is_deterministic() {
        let a = throttle_draw("http://x.com/a", 123);
        let b = throttle_draw("http://x.com/a", 123);
        assert_eq!(a, b);
        assert_ne!(a, throttle_draw("http://x.com/a", 124));
        assert!((0.0..1.0).contains(&a));
    }

    #[test]
    fn activation_window_gates_enforcement() {
        use sim_core::SimTime;
        let mut n = Network::ideal(World::builtin());
        img_server(&mut n, "social.example");
        let policy = CensorPolicy::named("election-block")
            .block_domain("social.example", Mechanism::DnsNxDomain);
        let censor = NationalCensor::new(country("TR"), policy)
            .active_from(SimTime::from_secs(1_000))
            .active_until(SimTime::from_secs(2_000));
        assert!(!censor.is_active_at(SimTime::from_secs(999)));
        assert!(censor.is_active_at(SimTime::from_secs(1_000)));
        assert!(!censor.is_active_at(SimTime::from_secs(2_000)));
        n.add_middlebox(Box::new(censor));
        let tr = n.add_client(country("TR"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let req = HttpRequest::get("http://social.example/favicon.ico");
        // Before the election: reachable.
        assert!(n
            .fetch(&tr, &req, SimTime::from_secs(10), &mut rng)
            .result
            .is_ok());
        // During the block: filtered. (DNS may be resolver-cached from
        // the earlier fetch; wait past the TTL.)
        n.dns.flush_caches();
        assert!(n
            .fetch(&tr, &req, SimTime::from_secs(1_500), &mut rng)
            .result
            .is_err());
        // After it is lifted: reachable again.
        n.dns.flush_caches();
        assert!(n
            .fetch(&tr, &req, SimTime::from_secs(3_000), &mut rng)
            .result
            .is_ok());
    }

    #[test]
    fn keyword_response_censorship_through_network() {
        let mut n = Network::ideal(World::builtin());
        let resp =
            HttpResponse::ok(ContentType::Html, 5_000).with_keywords(vec!["protest".to_string()]);
        n.add_server("news.com", country("US"), Box::new(ConstHandler(resp)));
        let policy = CensorPolicy::named("kw")
            .with_rule(BlockTarget::Keyword("protest".into()), Mechanism::HttpReset);
        n.add_middlebox(Box::new(NationalCensor::new(country("CN"), policy)));
        let cn = n.add_client(country("CN"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = n.fetch(
            &cn,
            &HttpRequest::get("http://news.com/article"),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(out.result, Err(FetchError::ConnectionReset));
    }
}
