//! Ready-made world censorship scenarios.
//!
//! §7.2 of the paper verifies Encore against "well-known censorship of
//! youtube.com in Pakistan, Iran, and China, and of twitter.com and
//! facebook.com in China and Iran". [`install_world_censors`] builds
//! national censors implementing exactly that ground truth (each with the
//! mechanism that country actually used circa 2014), and [`ground_truth`]
//! exposes the same facts to the experiment harness so detection output
//! can be scored.

use crate::national::NationalCensor;
use crate::policy::{CensorPolicy, Mechanism};
use netsim::geo::{country, CountryCode};
use netsim::network::Network;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The three high-profile targets the paper restricted its §7.2
/// measurements to, "because measuring Web filtering may place some users
/// at risk … These sites pose little additional risk to users because
/// browsers already routinely contact them via cross-origin requests".
pub const SAFE_TARGETS: [&str; 3] = ["facebook.com", "youtube.com", "twitter.com"];

/// One ground-truth fact: `domain` is filtered in `country`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Filtered domain.
    pub domain: String,
    /// Country in which it is filtered.
    pub country: CountryCode,
    /// Short description of the mechanism, for reports.
    pub mechanism: String,
}

/// The paper's §7.2 ground truth.
pub fn ground_truth() -> Vec<GroundTruth> {
    let fact = |domain: &str, c: &str, m: &str| GroundTruth {
        domain: domain.to_string(),
        country: country(c),
        mechanism: m.to_string(),
    };
    vec![
        // YouTube: Pakistan (2012–2016 DNS/IP block), Iran, China.
        fact("youtube.com", "PK", "dns-redirect"),
        fact("youtube.com", "IR", "http-blockpage"),
        fact("youtube.com", "CN", "dns-poison+tcp-reset"),
        // Twitter and Facebook: China and Iran.
        fact("twitter.com", "CN", "dns-poison+tcp-reset"),
        fact("twitter.com", "IR", "http-blockpage"),
        fact("facebook.com", "CN", "dns-poison+tcp-reset"),
        fact("facebook.com", "IR", "http-blockpage"),
    ]
}

/// Address of Pakistan's block-page sinkhole (PTCL redirected blocked
/// domains to a local address that serves nothing useful).
const PK_SINKHOLE: Ipv4Addr = Ipv4Addr::new(10, 10, 34, 34);

/// Build the Great Firewall policy: forged DNS plus RST injection for the
/// blocked trio (defence in depth, as measured by Crandall/Clayton et al.).
pub fn great_firewall() -> CensorPolicy {
    let mut p = CensorPolicy::named("great-firewall");
    for d in ["youtube.com", "twitter.com", "facebook.com"] {
        p = p
            .block_domain(d, Mechanism::DnsRedirect(Ipv4Addr::new(10, 66, 0, 1)))
            .block_domain(d, Mechanism::TcpReset);
    }
    p
}

/// Iran's filtering: HTTP-level block pages (the "peyvandha.ir" page).
pub fn iran_filter() -> CensorPolicy {
    let mut p = CensorPolicy::named("iran-dci");
    for d in ["youtube.com", "twitter.com", "facebook.com"] {
        p = p.block_domain(d, Mechanism::HttpBlockPage);
    }
    p
}

/// Pakistan's filtering: DNS redirection of YouTube to a sinkhole
/// (the 2012–2016 ban; Nabi's FOCI'13 study — paper reference \[33\]).
pub fn pakistan_filter() -> CensorPolicy {
    CensorPolicy::named("pta-pakistan")
        .block_domain("youtube.com", Mechanism::DnsRedirect(PK_SINKHOLE))
}

/// Install the §7.2 world: the three national censors above, with IP rules
/// resolved against the network's DNS (call *after* the target servers are
/// registered).
pub fn install_world_censors(network: &mut Network) {
    let mut gfw = NationalCensor::new(country("CN"), great_firewall());
    gfw.resolve_ip_rules(&network.dns);
    network.add_middlebox(Box::new(gfw));

    let iran = NationalCensor::new(country("IR"), iran_filter());
    network.add_middlebox(Box::new(iran));

    let pk = NationalCensor::new(country("PK"), pakistan_filter());
    network.add_middlebox(Box::new(pk));
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::{IspClass, World};
    use netsim::http::{ContentType, HttpRequest, HttpResponse};
    use netsim::network::{ConstHandler, Network};
    use sim_core::{SimRng, SimTime};

    fn world_network() -> Network {
        let mut n = Network::ideal(World::builtin());
        for d in SAFE_TARGETS {
            n.add_server(
                d,
                country("US"),
                Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 500))),
            );
        }
        install_world_censors(&mut n);
        n
    }

    #[test]
    fn ground_truth_has_seven_facts() {
        let gt = ground_truth();
        assert_eq!(gt.len(), 7);
        assert!(gt
            .iter()
            .any(|f| f.domain == "youtube.com" && f.country == country("PK")));
        assert!(!gt
            .iter()
            .any(|f| f.domain == "facebook.com" && f.country == country("PK")));
    }

    #[test]
    fn every_ground_truth_fact_is_enforced() {
        let mut n = world_network();
        let mut rng = SimRng::new(5);
        for fact in ground_truth() {
            let client = n.add_client(fact.country, IspClass::Residential);
            let req = HttpRequest::get(format!("http://{}/favicon.ico", fact.domain));
            let out = n.fetch(&client, &req, SimTime::ZERO, &mut rng);
            let observable_failure = match &out.result {
                Err(_) => true,
                // A block page in place of an image is also an observable
                // failure for the img task.
                Ok(resp) => resp.content_type != ContentType::Image,
            };
            assert!(
                observable_failure,
                "{} should be filtered in {}",
                fact.domain, fact.country
            );
        }
    }

    #[test]
    fn unfiltered_countries_fetch_fine() {
        let mut n = world_network();
        let mut rng = SimRng::new(5);
        for c in ["US", "DE", "BR", "JP"] {
            let client = n.add_client(country(c), IspClass::Residential);
            for d in SAFE_TARGETS {
                let req = HttpRequest::get(format!("http://{d}/favicon.ico"));
                let out = n.fetch(&client, &req, SimTime::ZERO, &mut rng);
                let resp = out.result.expect("no filtering expected");
                assert_eq!(resp.content_type, ContentType::Image, "{c}/{d}");
            }
        }
    }

    #[test]
    fn pakistan_blocks_only_youtube() {
        let mut n = world_network();
        let mut rng = SimRng::new(5);
        let pk = n.add_client(country("PK"), IspClass::Residential);
        let fb = n.fetch(
            &pk,
            &HttpRequest::get("http://facebook.com/favicon.ico"),
            SimTime::ZERO,
            &mut rng,
        );
        assert!(fb.result.is_ok());
        let yt = n.fetch(
            &pk,
            &HttpRequest::get("http://youtube.com/favicon.ico"),
            SimTime::ZERO,
            &mut rng,
        );
        assert!(yt.result.is_err());
    }

    #[test]
    fn gfw_blocks_subdomains_too() {
        let mut n = world_network();
        n.add_dns_alias("www.youtube.com", Ipv4Addr::new(100, 0, 0, 2));
        let mut rng = SimRng::new(5);
        let cn = n.add_client(country("CN"), IspClass::Residential);
        let out = n.fetch(
            &cn,
            &HttpRequest::get("http://www.youtube.com/favicon.ico"),
            SimTime::ZERO,
            &mut rng,
        );
        assert!(out.result.is_err());
    }
}
