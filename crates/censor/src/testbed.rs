//! The §7.1 Web-censorship testbed.
//!
//! > "To confirm the soundness of Encore's measurements, we built a Web
//! > censorship testbed, which has DNS, firewall, and Web server
//! > configurations that emulate seven varieties of DNS, IP, and HTTP
//! > filtering."
//!
//! Each variety gets its own virtual host under [`TESTBED_DOMAIN`]; a
//! middlebox installed for *all* clients enforces the variety named by the
//! host being fetched. An eighth, unfiltered control host serves the same
//! resources untouched, so a measurement task run against
//! `control.testbed…` validates the success path and the same task against
//! `dns-nxdomain.testbed…` validates failure detection.

use netsim::geo::{country, CountryCode};
use netsim::host::Host;
use netsim::http::{ContentType, HttpRequest, HttpResponse};
use netsim::middlebox::{DnsAction, HttpAction, Middlebox, StageContext, TcpAction};
use netsim::network::{HttpHandler, Network};
use netsim::tcp::TcpAttempt;
use serde::{Deserialize, Serialize};
use sim_core::SimTime;
use std::net::Ipv4Addr;

/// Parent domain of all testbed hosts.
pub const TESTBED_DOMAIN: &str = "testbed.encore-repro.net";

/// The seven filtering varieties plus the unfiltered control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FilterVariety {
    /// No filtering (control).
    Control,
    /// Forged NXDOMAIN.
    DnsNxDomain,
    /// Forged A record to an unroutable sinkhole.
    DnsSinkhole,
    /// DNS queries silently dropped.
    DnsDrop,
    /// All packets to the server address dropped.
    IpDrop,
    /// RST injected during the handshake.
    TcpReset,
    /// HTTP requests silently dropped.
    HttpDrop,
    /// HTTP responses replaced with a block page.
    HttpBlockPage,
}

impl FilterVariety {
    /// All varieties including the control, in a fixed order.
    pub const ALL: [FilterVariety; 8] = [
        FilterVariety::Control,
        FilterVariety::DnsNxDomain,
        FilterVariety::DnsSinkhole,
        FilterVariety::DnsDrop,
        FilterVariety::IpDrop,
        FilterVariety::TcpReset,
        FilterVariety::HttpDrop,
        FilterVariety::HttpBlockPage,
    ];

    /// The seven actual filtering varieties (everything but the control).
    pub fn filtering() -> impl Iterator<Item = FilterVariety> {
        Self::ALL
            .into_iter()
            .filter(|v| *v != FilterVariety::Control)
    }

    /// Host-name label for this variety.
    pub fn slug(self) -> &'static str {
        match self {
            FilterVariety::Control => "control",
            FilterVariety::DnsNxDomain => "dns-nxdomain",
            FilterVariety::DnsSinkhole => "dns-sinkhole",
            FilterVariety::DnsDrop => "dns-drop",
            FilterVariety::IpDrop => "ip-drop",
            FilterVariety::TcpReset => "tcp-reset",
            FilterVariety::HttpDrop => "http-drop",
            FilterVariety::HttpBlockPage => "http-blockpage",
        }
    }

    /// Fully-qualified host name of this variety's virtual host.
    pub fn hostname(self) -> String {
        format!("{}.{}", self.slug(), TESTBED_DOMAIN)
    }

    /// Parse a hostname back to a variety.
    pub fn from_hostname(host: &str) -> Option<FilterVariety> {
        let suffix = format!(".{TESTBED_DOMAIN}");
        let slug = host.strip_suffix(&suffix)?;
        FilterVariety::ALL.into_iter().find(|v| v.slug() == slug)
    }

    /// Whether this variety should make a correctly functioning
    /// measurement task report failure.
    pub fn expect_filtered(self) -> bool {
        self != FilterVariety::Control
    }
}

/// Serves the testbed's measurement resources (same content on every
/// virtual host).
pub struct TestbedHandler;

impl HttpHandler for TestbedHandler {
    fn handle(
        &self,
        req: &HttpRequest,
        _client_ip: std::net::Ipv4Addr,
        _now: SimTime,
    ) -> HttpResponse {
        match req.path() {
            // A favicon-sized image — the paper's canonical image-task
            // target ("typically 16×16 pixels").
            "/favicon.ico" => HttpResponse::ok(ContentType::Image, 400),
            // A one-pixel image for cache-timing probes.
            "/pixel.png" => HttpResponse::ok(ContentType::Image, 68),
            // A small stylesheet whose effect the style task can verify.
            "/style.css" => HttpResponse::ok(ContentType::Stylesheet, 1_800),
            // A script library with strict MIME typing (nosniff), per
            // §4.3.2's safety requirement for the script task.
            "/script.js" => HttpResponse::ok(ContentType::Script, 28_000).with_nosniff(),
            // A small page embedding a cacheable image, for the iframe
            // task (kept under the 100 KB prototype limit of §5.2).
            "/page.html" => {
                let host = req
                    .host()
                    .unwrap_or(std::borrow::Cow::Borrowed(TESTBED_DOMAIN));
                HttpResponse::ok(ContentType::Html, 38_000)
                    .no_store()
                    .with_embeds(vec![netsim::http::Embedded {
                        url: format!("http://{host}/embedded.png"),
                        kind: netsim::http::EmbedKind::Image,
                    }])
            }
            "/embedded.png" => HttpResponse::ok(ContentType::Image, 4_200),
            _ => HttpResponse::not_found(),
        }
    }
}

/// The middlebox enforcing each variety against its virtual host. It
/// covers *all* clients — the testbed is about task soundness, not
/// geography.
struct TestbedFilter {
    sinkhole: Ipv4Addr,
    server_ip: Ipv4Addr,
}

impl TestbedFilter {
    fn variety_for_host(name: &str) -> Option<FilterVariety> {
        FilterVariety::from_hostname(name)
    }

    fn variety_for_url(url: &str) -> Option<FilterVariety> {
        netsim::http::host_of(url).and_then(|h| Self::variety_for_host(&h))
    }
}

impl Middlebox for TestbedFilter {
    fn name(&self) -> &str {
        "testbed-filter"
    }

    fn applies_to(&self, _client: &Host) -> bool {
        true
    }

    fn on_dns(&self, name: &str, _ctx: &StageContext<'_>) -> DnsAction {
        match Self::variety_for_host(name) {
            Some(FilterVariety::DnsNxDomain) => DnsAction::NxDomain,
            Some(FilterVariety::DnsSinkhole) => DnsAction::Redirect(self.sinkhole),
            Some(FilterVariety::DnsDrop) => DnsAction::Drop,
            _ => DnsAction::Pass,
        }
    }

    fn on_tcp(&self, attempt: &TcpAttempt, _ctx: &StageContext<'_>) -> TcpAction {
        // IP-level varieties can't see host names; the testbed gives each
        // variety its own address, so the filter keys on destination.
        if attempt.dst == self.server_ip {
            return TcpAction::Pass;
        }
        TcpAction::Pass
    }

    fn on_http_request(&self, req: &HttpRequest, _ctx: &StageContext<'_>) -> HttpAction {
        match Self::variety_for_url(&req.url) {
            Some(FilterVariety::HttpDrop) => HttpAction::Drop,
            Some(FilterVariety::HttpBlockPage) => HttpAction::BlockPage,
            _ => HttpAction::Pass,
        }
    }
}

/// Per-address middlebox for the IP-level varieties (each variety's
/// virtual host resolves to its own address, so IP blocking is keyed on
/// the address, exactly like a real null-route).
struct IpLevelFilter {
    drop_ip: Ipv4Addr,
    reset_ip: Ipv4Addr,
}

impl Middlebox for IpLevelFilter {
    fn name(&self) -> &str {
        "testbed-ip-filter"
    }
    fn applies_to(&self, _client: &Host) -> bool {
        true
    }
    fn on_tcp(&self, attempt: &TcpAttempt, _ctx: &StageContext<'_>) -> TcpAction {
        if attempt.dst == self.drop_ip {
            TcpAction::Drop
        } else if attempt.dst == self.reset_ip {
            TcpAction::Reset
        } else {
            TcpAction::Pass
        }
    }
}

/// Handle to an installed testbed.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// Country hosting the testbed servers (Georgia Tech in the paper, so
    /// US).
    pub server_country: CountryCode,
    addresses: Vec<(FilterVariety, Ipv4Addr)>,
}

impl Testbed {
    /// Install the testbed into a network: one virtual host per variety
    /// (each with its own address), the shared resource handler, and the
    /// filtering middleboxes.
    pub fn install(network: &mut Network) -> Testbed {
        let server_country = country("US");
        let mut addresses = Vec::new();

        for variety in FilterVariety::ALL {
            let host = network.add_server(
                &variety.hostname(),
                server_country,
                Box::new(TestbedHandler),
            );
            addresses.push((variety, host.ip));
        }

        let server_ip = addresses
            .iter()
            .find(|(v, _)| *v == FilterVariety::Control)
            .map(|&(_, ip)| ip)
            .expect("control host installed");
        let drop_ip = addresses
            .iter()
            .find(|(v, _)| *v == FilterVariety::IpDrop)
            .map(|&(_, ip)| ip)
            .expect("ip-drop host installed");
        let reset_ip = addresses
            .iter()
            .find(|(v, _)| *v == FilterVariety::TcpReset)
            .map(|&(_, ip)| ip)
            .expect("tcp-reset host installed");

        // Sinkhole: an address where nothing listens.
        let sinkhole = network.allocator.allocate(server_country);

        network.add_middlebox(Box::new(TestbedFilter {
            sinkhole,
            server_ip,
        }));
        network.add_middlebox(Box::new(IpLevelFilter { drop_ip, reset_ip }));

        Testbed {
            server_country,
            addresses,
        }
    }

    /// The variety hosts and their addresses.
    pub fn addresses(&self) -> &[(FilterVariety, Ipv4Addr)] {
        &self.addresses
    }

    /// URL of the favicon resource on a variety's host.
    pub fn favicon_url(&self, v: FilterVariety) -> String {
        format!("http://{}/favicon.ico", v.hostname())
    }

    /// URL of the page resource on a variety's host.
    pub fn page_url(&self, v: FilterVariety) -> String {
        format!("http://{}/page.html", v.hostname())
    }

    /// URL of the stylesheet on a variety's host.
    pub fn style_url(&self, v: FilterVariety) -> String {
        format!("http://{}/style.css", v.hostname())
    }

    /// URL of the script on a variety's host.
    pub fn script_url(&self, v: FilterVariety) -> String {
        format!("http://{}/script.js", v.hostname())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::{IspClass, World};
    use netsim::network::FetchError;
    use sim_core::SimRng;

    fn testbed_network() -> (Network, Testbed) {
        let mut n = Network::ideal(World::builtin());
        let tb = Testbed::install(&mut n);
        (n, tb)
    }

    #[test]
    fn hostname_roundtrip() {
        for v in FilterVariety::ALL {
            assert_eq!(FilterVariety::from_hostname(&v.hostname()), Some(v));
        }
        assert_eq!(FilterVariety::from_hostname("example.com"), None);
        assert_eq!(
            FilterVariety::from_hostname(&format!("bogus.{TESTBED_DOMAIN}")),
            None
        );
    }

    #[test]
    fn seven_filtering_varieties() {
        assert_eq!(FilterVariety::filtering().count(), 7);
        assert!(!FilterVariety::Control.expect_filtered());
        assert!(FilterVariety::DnsDrop.expect_filtered());
    }

    #[test]
    fn control_host_serves_all_resources() {
        let (mut n, tb) = testbed_network();
        let client = n.add_client(country("DE"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        for (url, ctype) in [
            (tb.favicon_url(FilterVariety::Control), ContentType::Image),
            (
                tb.style_url(FilterVariety::Control),
                ContentType::Stylesheet,
            ),
            (tb.script_url(FilterVariety::Control), ContentType::Script),
            (tb.page_url(FilterVariety::Control), ContentType::Html),
        ] {
            let out = n.fetch(&client, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
            let resp = out.result.unwrap_or_else(|e| panic!("{url}: {e:?}"));
            assert_eq!(resp.content_type, ctype, "{url}");
        }
    }

    #[test]
    fn every_filtering_variety_observably_fails() {
        let (mut n, tb) = testbed_network();
        let client = n.add_client(country("DE"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        for v in FilterVariety::filtering() {
            let url = tb.favicon_url(v);
            let out = n.fetch(&client, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
            let failed = match &out.result {
                Err(_) => true,
                Ok(resp) => resp.content_type != ContentType::Image,
            };
            assert!(failed, "{v:?} should observably fail");
        }
    }

    #[test]
    fn varieties_produce_distinct_error_signatures() {
        let (mut n, tb) = testbed_network();
        let client = n.add_client(country("DE"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let get = |n: &mut Network, v: FilterVariety, rng: &mut SimRng| {
            n.fetch(
                &client,
                &HttpRequest::get(tb.favicon_url(v)),
                SimTime::ZERO,
                rng,
            )
        };
        assert_eq!(
            get(&mut n, FilterVariety::DnsNxDomain, &mut rng).result,
            Err(FetchError::DnsNxDomain)
        );
        assert_eq!(
            get(&mut n, FilterVariety::DnsDrop, &mut rng).result,
            Err(FetchError::DnsTimeout)
        );
        assert_eq!(
            get(&mut n, FilterVariety::DnsSinkhole, &mut rng).result,
            Err(FetchError::ConnectTimeout)
        );
        assert_eq!(
            get(&mut n, FilterVariety::IpDrop, &mut rng).result,
            Err(FetchError::ConnectTimeout)
        );
        assert_eq!(
            get(&mut n, FilterVariety::TcpReset, &mut rng).result,
            Err(FetchError::ConnectionReset)
        );
        assert_eq!(
            get(&mut n, FilterVariety::HttpDrop, &mut rng).result,
            Err(FetchError::ResponseTimeout)
        );
        let bp = get(&mut n, FilterVariety::HttpBlockPage, &mut rng);
        assert_eq!(bp.result.unwrap().content_type, ContentType::Html);
    }

    #[test]
    fn unknown_path_is_404() {
        let (mut n, tb) = testbed_network();
        let client = n.add_client(country("DE"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let url = format!("http://{}/nope", FilterVariety::Control.hostname());
        let _ = tb;
        let out = n.fetch(&client, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
        assert_eq!(
            out.result.unwrap().status,
            netsim::http::StatusCode::NOT_FOUND
        );
    }

    #[test]
    fn testbed_does_not_affect_other_domains() {
        let (mut n, _tb) = testbed_network();
        n.add_server(
            "unrelated.com",
            country("US"),
            Box::new(netsim::network::ConstHandler(HttpResponse::ok(
                ContentType::Image,
                300,
            ))),
        );
        let client = n.add_client(country("DE"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = n.fetch(
            &client,
            &HttpRequest::get("http://unrelated.com/a.png"),
            SimTime::ZERO,
            &mut rng,
        );
        assert!(out.result.is_ok());
    }
}
