//! Censors that target Encore itself (paper §8, "Detecting and
//! interfering with Encore measurements").
//!
//! The paper argues content-based blocking of tasks is hard (JavaScript
//! obfuscation) and behaviour-based blocking requires the censor to
//! "identify a sequence of requests as a measurement attempt and
//! interpose on subsequent requests". [`EncoreFingerprinter`] implements
//! exactly that adversary: it watches for clients contacting known Encore
//! infrastructure domains and then suppresses their *subsequent* requests
//! to known collection endpoints for a while — distorting results rather
//! than blocking measurement outright.
//!
//! Its weakness is also the paper's: the blacklist of infrastructure
//! domains must be curated, so mirrors under fresh domains (shared
//! hosting, CDNs) evade it until discovered.

use netsim::geo::CountryCode;
use netsim::host::Host;
use netsim::http::{host_of, HttpRequest};
use netsim::middlebox::{HttpAction, Middlebox, StageContext};
use sim_core::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// A behaviour-fingerprinting censor.
pub struct EncoreFingerprinter {
    country: CountryCode,
    /// Domains recognised as Encore coordination infrastructure.
    coordinator_domains: Vec<String>,
    /// Domains recognised as Encore collection infrastructure.
    collector_domains: Vec<String>,
    /// How long after a coordinator contact the client's collector
    /// traffic is suppressed.
    memory: SimDuration,
    /// Per-client last coordinator contact.
    seen: RefCell<BTreeMap<Ipv4Addr, SimTime>>,
}

impl EncoreFingerprinter {
    /// Censor in `country` knowing the given infrastructure domains.
    pub fn new(
        country: CountryCode,
        coordinator_domains: Vec<String>,
        collector_domains: Vec<String>,
    ) -> EncoreFingerprinter {
        EncoreFingerprinter {
            country,
            coordinator_domains,
            collector_domains,
            memory: SimDuration::from_secs(300),
            seen: RefCell::new(BTreeMap::new()),
        }
    }

    /// Adjust how long fingerprinted clients stay suppressed.
    pub fn with_memory(mut self, memory: SimDuration) -> EncoreFingerprinter {
        self.memory = memory;
        self
    }

    fn is_coordinator(&self, host: &str) -> bool {
        self.coordinator_domains.iter().any(|d| host == d)
    }

    fn is_collector(&self, host: &str) -> bool {
        self.collector_domains.iter().any(|d| host == d)
    }
}

impl Middlebox for EncoreFingerprinter {
    fn name(&self) -> &str {
        "encore-fingerprinter"
    }

    fn applies_to(&self, client: &Host) -> bool {
        client.country == self.country
    }

    fn on_http_request(&self, req: &HttpRequest, ctx: &StageContext<'_>) -> HttpAction {
        let Some(host) = host_of(&req.url) else {
            return HttpAction::Pass;
        };
        if self.is_coordinator(&host) {
            // Note the client; let the request through (suppressing the
            // *reports* distorts data more quietly than blocking tasks).
            self.seen.borrow_mut().insert(ctx.client.ip, ctx.now);
            return HttpAction::Pass;
        }
        if self.is_collector(&host) {
            let seen = self.seen.borrow();
            if let Some(&t) = seen.get(&ctx.client.ip) {
                if ctx.now.since(t) <= self.memory {
                    return HttpAction::Drop;
                }
            }
        }
        HttpAction::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser::{BrowserClient, Engine};
    use encore::coordination::SchedulingStrategy;
    use encore::delivery::OriginSite;
    use encore::system::EncoreSystem;
    use encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
    use netsim::geo::{country, IspClass, World};
    use netsim::http::{ContentType, HttpResponse};
    use netsim::network::{ConstHandler, Network};
    use sim_core::SimRng;

    fn deployed() -> (Network, EncoreSystem, OriginSite) {
        let mut net = Network::ideal(World::builtin());
        net.add_server(
            "target.example",
            country("US"),
            Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
        );
        let origin = OriginSite::academic("origin.example");
        let sys = EncoreSystem::deploy(
            &mut net,
            vec![MeasurementTask {
                id: MeasurementId(0),
                spec: TaskSpec::Image {
                    url: "http://target.example/favicon.ico".into(),
                },
            }],
            SchedulingStrategy::RoundRobin,
            vec![origin.clone()],
            country("US"),
        );
        (net, sys, origin)
    }

    fn visit(
        net: &mut Network,
        sys: &mut EncoreSystem,
        origin: &OriginSite,
        cc: &str,
    ) -> encore::system::VisitOutcome {
        let root = SimRng::new(0xF1);
        let mut c = BrowserClient::new(
            net,
            country(cc),
            IspClass::Residential,
            Engine::Chrome,
            &root,
        );
        sys.run_visit(
            net,
            &mut c,
            origin,
            SimDuration::from_secs(30),
            SimTime::from_secs(10),
            "Chrome",
        )
    }

    #[test]
    fn fingerprinter_suppresses_reports_not_tasks() {
        let (mut net, mut sys, origin) = deployed();
        net.add_middlebox(Box::new(EncoreFingerprinter::new(
            country("CN"),
            vec!["coordinator.encore-repro.net".into()],
            vec!["collector.encore-repro.net".into()],
        )));
        let out = visit(&mut net, &mut sys, &origin, "CN");
        // The measurement ran (the censor let the coordinator fetch and
        // the cross-origin request pass)…
        assert!(out.got_task);
        assert_eq!(out.executed.len(), 1);
        // …but the reports silently vanished.
        assert_eq!(out.inits_delivered, 0);
        assert_eq!(out.results_delivered, 0);
        assert_eq!(sys.collection.len(), 0);
    }

    #[test]
    fn fingerprinter_only_affects_its_country() {
        let (mut net, mut sys, origin) = deployed();
        net.add_middlebox(Box::new(EncoreFingerprinter::new(
            country("CN"),
            vec!["coordinator.encore-repro.net".into()],
            vec!["collector.encore-repro.net".into()],
        )));
        let out = visit(&mut net, &mut sys, &origin, "DE");
        assert_eq!(out.results_delivered, 1);
    }

    #[test]
    fn unknown_mirror_evades_the_fingerprint() {
        let (mut net, mut sys, origin) = deployed();
        net.add_middlebox(Box::new(EncoreFingerprinter::new(
            country("CN"),
            vec!["coordinator.encore-repro.net".into()],
            vec!["collector.encore-repro.net".into()],
        )));
        // A mirror the censor has not yet blacklisted restores reporting.
        sys.add_collector_mirror(&mut net, "innocuous-cdn.example", country("SG"));
        let out = visit(&mut net, &mut sys, &origin, "CN");
        assert_eq!(out.results_delivered, 1, "mirror evades fingerprint");
    }

    #[test]
    fn memory_expiry_restores_collection() {
        let (mut net, mut sys, origin) = deployed();
        net.add_middlebox(Box::new(
            EncoreFingerprinter::new(
                country("CN"),
                vec!["coordinator.encore-repro.net".into()],
                vec!["collector.encore-repro.net".into()],
            )
            .with_memory(SimDuration::from_millis(1)),
        ));
        // With a 1 ms memory the suppression has lapsed by the time the
        // (slower) beacon goes out.
        let out = visit(&mut net, &mut sys, &origin, "CN");
        assert!(out.results_delivered >= 1);
    }

    #[test]
    fn clients_without_coordinator_contact_unaffected() {
        // Server-side-inline origins never touch the coordinator, so the
        // fingerprinting censor has nothing to key on.
        let (mut net, mut sys, _origin) = deployed();
        let inline = OriginSite::academic("inline.example")
            .with_install(encore::delivery::InstallMethod::ServerSideInline);
        inline.install(&mut net, country("US"));
        sys.origins.push(inline.clone());
        net.add_middlebox(Box::new(EncoreFingerprinter::new(
            country("CN"),
            vec!["coordinator.encore-repro.net".into()],
            vec!["collector.encore-repro.net".into()],
        )));
        let out = visit(&mut net, &mut sys, &inline, "CN");
        assert!(out.got_task);
        assert_eq!(out.results_delivered, 1);
    }
}
