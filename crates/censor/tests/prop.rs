//! Property tests for the censor crate — chiefly the policy timeline's
//! determinism contract: changes apply in time order with insertion
//! order as the tie-break, and a timeline replayed in increments from
//! any prefix is indistinguishable from a single fresh sweep.

use censor::policy::{CensorPolicy, Mechanism};
use censor::timeline::{CensorSpec, PolicyChange, PolicyTimeline};
use netsim::geo::{country, World};
use netsim::network::Network;
use proptest::prelude::*;
use sim_core::SimTime;

/// Decode a generated op list into a timeline plus the insertion order.
/// Each op is `(time_secs, kind)`; `kind` cycles install/lift/rewrite
/// over a small name space so lifts and rewrites frequently hit names
/// that earlier installs created (and sometimes miss, exercising the
/// no-op path).
fn build_timeline(ops: &[(u64, u8)]) -> PolicyTimeline {
    let mut tl = PolicyTimeline::new();
    for (i, &(t, kind)) in ops.iter().enumerate() {
        let name = format!("censor-{}", i % 4);
        let spec = CensorSpec::new(
            country("TR"),
            CensorPolicy::named(&name).block_domain("blocked.example", Mechanism::DnsNxDomain),
        );
        let change = match kind % 3 {
            0 => PolicyChange::Install(spec),
            1 => PolicyChange::Lift { name },
            _ => PolicyChange::Rewrite { name, with: spec },
        };
        tl.schedule(SimTime::from_secs(t), change);
    }
    tl
}

/// The observable world state a timeline leaves behind: installed
/// middlebox names in order, plus the generation counter (how many times
/// session pipelines were invalidated).
fn world_state(net: &Network) -> (Vec<String>, u64) {
    (
        net.middleboxes()
            .iter()
            .map(|m| m.name().to_string())
            .collect(),
        net.middlebox_generation(),
    )
}

fn fresh_world() -> Network {
    Network::ideal(World::builtin())
}

proptest! {
    #[test]
    fn entries_are_time_sorted_with_insertion_tie_break(
        ops in proptest::collection::vec((0u64..50, 0u8..6), 1..40),
    ) {
        let tl = build_timeline(&ops);
        prop_assert_eq!(tl.len(), ops.len());
        // Time-sorted…
        for w in tl.entries().windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        // …and within one instant, in the order the ops were scheduled.
        // Reconstruct the expected order with a stable sort of the input.
        let mut expected: Vec<(u64, usize)> =
            ops.iter().enumerate().map(|(i, &(t, _))| (t, i)).collect();
        expected.sort_by_key(|&(t, _)| t); // stable: preserves insertion order per t
        let got_times: Vec<u64> = tl.entries().iter().map(|(t, _)| t.as_secs()).collect();
        let want_times: Vec<u64> = expected.iter().map(|&(t, _)| t).collect();
        prop_assert_eq!(got_times, want_times);
    }

    #[test]
    fn replay_from_any_prefix_matches_a_fresh_sweep(
        ops in proptest::collection::vec((0u64..50, 0u8..6), 1..30),
        split in 0u64..50,
    ) {
        let horizon = SimTime::from_secs(100);

        // One sweep on a fresh world.
        let mut net_fresh = fresh_world();
        let mut tl_fresh = build_timeline(&ops);
        let n_fresh = tl_fresh.apply_through(&mut net_fresh, horizon);

        // Incremental: apply through an arbitrary midpoint, then finish.
        let mut net_inc = fresh_world();
        let mut tl_inc = build_timeline(&ops);
        let n_a = tl_inc.apply_through(&mut net_inc, SimTime::from_secs(split));
        let n_b = tl_inc.apply_through(&mut net_inc, horizon);

        prop_assert_eq!(n_fresh, n_a + n_b, "change counts diverged");
        prop_assert_eq!(tl_fresh.applied(), tl_inc.applied());
        prop_assert_eq!(world_state(&net_fresh), world_state(&net_inc));
    }

    #[test]
    fn apply_through_is_idempotent(
        ops in proptest::collection::vec((0u64..50, 0u8..6), 1..30),
        at in 0u64..60,
    ) {
        let mut net = fresh_world();
        let mut tl = build_timeline(&ops);
        let t = SimTime::from_secs(at);
        tl.apply_through(&mut net, t);
        let state = world_state(&net);
        // Re-applying through the same instant changes nothing.
        prop_assert_eq!(tl.apply_through(&mut net, t), 0);
        prop_assert_eq!(world_state(&net), state);
    }

    #[test]
    fn cursor_never_applies_future_changes(
        ops in proptest::collection::vec((10u64..50, 0u8..6), 1..30),
        at in 0u64..10,
    ) {
        // Everything is scheduled at t >= 10; applying through t < 10
        // must be a no-op on the world.
        let mut net = fresh_world();
        let before = world_state(&net);
        let mut tl = build_timeline(&ops);
        prop_assert_eq!(tl.apply_through(&mut net, SimTime::from_secs(at)), 0);
        prop_assert_eq!(tl.applied(), 0);
        prop_assert_eq!(world_state(&net), before);
        prop_assert!(tl.next_time().unwrap() >= SimTime::from_secs(10));
    }

    /// Shard-count invariance of control events: broadcasting one
    /// timeline to N shard-built worlds yields, on every shard, the same
    /// middlebox-generation-counter *sequence* (recorded change by
    /// change) as applying it to the serial world. This is the substrate
    /// guarantee `population::run_sharded_world` leans on: since
    /// per-shard topologies are identical and generation bumps are a
    /// pure function of the middlebox set's history, warm-session
    /// pipeline invalidation happens at the same points in the control
    /// schedule on every shard.
    #[test]
    fn broadcast_timeline_yields_identical_generation_sequences(
        ops in proptest::collection::vec((0u64..50, 0u8..6), 1..30),
        shards in 2usize..5,
    ) {
        use netsim::scenario::{NetworkScenario, WorldSpec};
        let scenario = NetworkScenario::new(WorldSpec::Builtin).with_ideal_paths();

        // Serial reference: apply change by change, recording the
        // generation counter after each application.
        let sequence = |mut net: Network| -> Vec<(Vec<String>, u64)> {
            let tl = build_timeline(&ops);
            let mut seq = Vec::with_capacity(tl.len());
            for (_, change) in tl.entries() {
                change.apply(&mut net);
                seq.push(world_state(&net));
            }
            seq
        };
        let serial_seq = sequence(scenario.build());

        for index in 0..shards {
            let shard_seq = sequence(scenario.build_shard(index, shards));
            prop_assert_eq!(
                &shard_seq, &serial_seq,
                "shard {}/{} diverged from the serial generation sequence",
                index, shards
            );
        }
    }
}
