//! Property tests for the simulation kernel.

use proptest::prelude::*;
use sim_core::dist::{Empirical, Exponential, LogNormal, Pareto, Sample, Zipf};
use sim_core::{Cdf, EventQueue, FiveNumber, SimDuration, SimRng, SimTime, Summary};

proptest! {
    // ---- time ----

    #[test]
    fn time_add_then_subtract_roundtrips(base in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_micros(base);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert_eq!((t + dur) - t, dur);
    }

    #[test]
    fn duration_display_never_panics(us in 0u64..u64::MAX / 2) {
        let _ = SimDuration::from_micros(us).to_string();
        let _ = SimTime::from_micros(us).to_string();
    }

    #[test]
    fn since_is_antisymmetric_saturating(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let (ta, tb) = (SimTime::from_micros(a), SimTime::from_micros(b));
        let fwd = tb.since(ta);
        let back = ta.since(tb);
        // One direction is the true gap, the other saturates at zero.
        prop_assert!(fwd == SimDuration::ZERO || back == SimDuration::ZERO);
        prop_assert_eq!(fwd.as_micros() + back.as_micros(), a.abs_diff(b));
    }

    // ---- rng ----

    #[test]
    fn forks_are_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let mut a = SimRng::new(seed).fork(&label);
        let mut b = SimRng::new(seed).fork(&label);
        prop_assert_eq!(a.unit(), b.unit());
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), mut xs in proptest::collection::vec(0u32..100, 0..50)) {
        let mut rng = SimRng::new(seed);
        let mut shuffled = xs.clone();
        rng.shuffle(&mut shuffled);
        shuffled.sort_unstable();
        xs.sort_unstable();
        prop_assert_eq!(shuffled, xs);
    }

    #[test]
    fn sample_indices_sorted_distinct(seed in any::<u64>(), n in 1usize..200, k in 0usize..200) {
        let mut rng = SimRng::new(seed);
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k.min(n));
        for w in s.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(s.iter().all(|&i| i < n));
    }

    // ---- stream splitting (the sharding substrate) ----

    #[test]
    fn split_children_pairwise_disjoint_window(seed in any::<u64>(), n_children in 2usize..6) {
        // Sample a window of each child stream; with 64-bit draws any
        // overlap between windows means the streams coincided, which the
        // 2^192 long-jump spacing must prevent.
        let mut parent = SimRng::new(seed);
        let mut windows: Vec<Vec<u64>> = Vec::new();
        for _ in 0..n_children {
            let mut child = parent.split();
            windows.push((0..128).map(|_| child.next_u64()).collect());
        }
        for i in 0..windows.len() {
            for j in (i + 1)..windows.len() {
                let a: std::collections::HashSet<u64> = windows[i].iter().copied().collect();
                prop_assert!(
                    !windows[j].iter().any(|v| a.contains(v)),
                    "children {i} and {j} share draws"
                );
            }
        }
    }

    #[test]
    fn split_children_never_overlap_parent_continuation(seed in any::<u64>()) {
        let mut parent = SimRng::new(seed);
        let mut child_draws = std::collections::HashSet::new();
        for _ in 0..4 {
            let mut child = parent.split();
            for _ in 0..128 {
                child_draws.insert(child.next_u64());
            }
        }
        // The parent continues past every child's block.
        for _ in 0..512 {
            prop_assert!(
                !child_draws.contains(&parent.next_u64()),
                "parent continuation re-entered a child's stream"
            );
        }
    }

    #[test]
    fn split_fork_namespaces_disjoint(seed in any::<u64>(), label in "[a-z]{1,10}") {
        // Shard i and shard j forking the same subsystem label must get
        // different streams — otherwise parallel shards replay each
        // other's arrivals.
        let mut parent = SimRng::new(seed);
        let kids: Vec<SimRng> = (0..4).map(|_| parent.split()).collect();
        let mut firsts: Vec<u64> = kids.iter().map(|k| k.fork(&label).next_u64()).collect();
        firsts.sort_unstable();
        firsts.dedup();
        prop_assert_eq!(firsts.len(), 4, "forked shard streams collided");
    }

    #[test]
    fn split_sequence_is_reproducible(seed in any::<u64>()) {
        let run = |seed: u64| {
            let mut parent = SimRng::new(seed);
            (0..4).map(|_| parent.split().next_u64()).collect::<Vec<u64>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    // ---- distributions ----

    #[test]
    fn distributions_stay_in_support(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        prop_assert!(LogNormal::new(2.0, 1.0).sample(&mut rng) > 0.0);
        prop_assert!(Pareto::new(5.0, 1.5).sample(&mut rng) >= 5.0);
        prop_assert!(Exponential::from_mean(3.0).sample(&mut rng) >= 0.0);
    }

    #[test]
    fn zipf_ranks_in_range(seed in any::<u64>(), n in 1usize..500, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let mut rng = SimRng::new(seed);
        for _ in 0..20 {
            prop_assert!(z.sample_rank(&mut rng) < n);
        }
    }

    #[test]
    fn empirical_only_returns_positive_weight_items(
        seed in any::<u64>(),
        weights in proptest::collection::vec(0.0f64..5.0, 1..10),
    ) {
        prop_assume!(weights.iter().any(|w| *w > 0.0));
        let pairs: Vec<(usize, f64)> = weights.iter().cloned().enumerate().collect();
        let dist = Empirical::new(pairs);
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let &idx = dist.sample(&mut rng);
            prop_assert!(weights[idx] > 0.0, "drew zero-weight item {idx}");
        }
    }

    // ---- stats ----

    #[test]
    fn five_number_is_ordered(xs in proptest::collection::vec(-1e9f64..1e9, 1..300)) {
        let f = FiveNumber::of(&xs).unwrap();
        prop_assert!(f.min <= f.q1 && f.q1 <= f.median && f.median <= f.q3 && f.q3 <= f.max);
        prop_assert!(f.min <= f.mean && f.mean <= f.max);
    }

    #[test]
    fn summary_and_cdf_agree_on_extremes(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&xs);
        let cdf = Cdf::new(xs);
        prop_assert_eq!(s.min, cdf.quantile(0.0).unwrap());
        prop_assert_eq!(s.max, cdf.quantile(1.0).unwrap());
        prop_assert_eq!(s.n, cdf.len());
    }

    // ---- event queue ----

    #[test]
    fn queue_preserves_insertion_order_at_equal_times(
        times in proptest::collection::vec(0u64..10, 1..100),
    ) {
        // Many collisions guaranteed by the tiny time range.
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(*t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, idx)) = q.pop() {
            if let Some((lat, lidx)) = last {
                prop_assert!(at > lat || (at == lat && idx > lidx));
            }
            last = Some((at, idx));
        }
    }

    // The world engine's backbone: events scheduled *while firing* (the
    // self-scheduling arrival process, rescheduled maintenance ticks)
    // must interleave with pre-scheduled events exactly like a reference
    // stable-sorted list. Ops mix schedules and pops in arbitrary order.
    #[test]
    fn queue_matches_reference_model_under_interleaved_schedule_and_fire(
        ops in proptest::collection::vec((proptest::bool::ANY, 0u64..40), 1..200),
    ) {
        let mut q = EventQueue::new();
        // Reference model: (effective_time, seq), popped min-first with
        // seq as the tie-break.
        let mut pending: Vec<(u64, usize)> = Vec::new();
        let mut seq = 0usize;
        let mut now = 0u64;
        let mut queue_popped = Vec::new();
        let mut model_popped = Vec::new();
        for (is_pop, t) in ops {
            if is_pop {
                if let Some((at, id)) = q.pop() {
                    queue_popped.push((at.as_micros(), id));
                    now = at.as_micros();
                }
                if let Some(pos) = pending
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &entry)| entry)
                    .map(|(i, _)| i)
                {
                    model_popped.push(pending.remove(pos));
                }
            } else {
                // Past scheduling clamps to "now" in both worlds.
                q.schedule(SimTime::from_micros(t), seq);
                pending.push((t.max(now), seq));
                seq += 1;
            }
        }
        prop_assert_eq!(&queue_popped, &model_popped);
        // Drain the rest: still model-identical.
        while let Some((at, id)) = q.pop() {
            queue_popped.push((at.as_micros(), id));
        }
        pending.sort_unstable();
        model_popped.extend(pending);
        prop_assert_eq!(queue_popped, model_popped);
    }
}
