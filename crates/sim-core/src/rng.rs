//! Seedable, forkable randomness.
//!
//! All randomness in the workspace flows from a single root seed through
//! [`SimRng`]. Subsystems obtain *forked* child generators via
//! [`SimRng::fork`], keyed by a string label: the child stream depends only
//! on `(root seed, label)`, so adding random draws to one subsystem never
//! shifts the stream seen by another. This is the property that keeps the
//! experiment harness reproducible as the codebase grows.
//!
//! For multi-core work there is a second derivation axis: *stream
//! splitting*. [`SimRng::split`] hands out a sequence of generators whose
//! raw streams occupy disjoint 2^192-draw blocks of the xoshiro256++
//! sequence (via [`SimRng::long_jump`]) and whose fork namespaces are
//! re-keyed, so parallel shards can each fork their own subsystem streams
//! without ever colliding with a sibling or with the parent's
//! continuation. The first child of a `split` sequence is an exact
//! snapshot of the parent, which is what lets a one-shard parallel run
//! reproduce a serial run bit for bit.
//!
//! The generator is a self-contained xoshiro256++ (seeded via splitmix64),
//! so the workspace carries no external randomness dependency and the
//! stream is identical on every platform.

/// FNV-1a 64-bit hash, used to mix fork labels into seeds. A cryptographic
/// hash is unnecessary: we only need stable, well-spread derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The splitmix64 avalanche — the canonical finalizer that turns a
/// structured 64-bit input (a counter, an xor of keys) into well-mixed
/// bits. Public because every derived-seed scheme in the workspace
/// (case-seed derivation, the adaptive censor's deterministic draws)
/// must use *this* copy of the constants rather than re-typing them.
pub fn splitmix_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded byte-string hash: FNV-1a folded over `bytes` starting from a
/// mix of `seed`, finalized through [`splitmix_mix`] for full avalanche.
/// This is the row-hash primitive behind the count-min sketches in
/// `encore` — each sketch row uses a different seed, and two sketches
/// built with the same seed hash identically on every shard, which is
/// what makes element-wise sketch merging sound. Not cryptographic;
/// stable across platforms and runs.
pub fn seeded_hash(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ splitmix_mix(seed);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix_mix(h)
}

/// Splitmix64 step — expands a seed into well-mixed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    splitmix_mix(*state)
}

/// Deterministic random number generator with labelled forking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

impl SimRng {
    /// Create a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { seed, state }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fork a child generator whose stream depends only on this generator's
    /// seed and `label` — not on how many values have been drawn so far.
    pub fn fork(&self, label: &str) -> SimRng {
        let child = self.seed ^ fnv1a(label.as_bytes()).rotate_left(17);
        SimRng::new(child)
    }

    /// Fork a child generator keyed by a label and an index (e.g. one stream
    /// per simulated client).
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        let child = self.seed
            ^ fnv1a(label.as_bytes()).rotate_left(17)
            ^ fnv1a(&index.to_le_bytes()).rotate_left(31);
        SimRng::new(child)
    }

    /// Jump far ahead in the raw stream: equivalent to 2^192 calls of
    /// [`SimRng::next_u64`] (the canonical xoshiro256++ long-jump
    /// polynomial). Also re-keys the fork namespace, so labelled forks
    /// taken *after* the jump are disjoint from forks of the pre-jump
    /// generator — a jumped generator is a genuinely independent stream
    /// on both derivation axes.
    pub fn long_jump(&mut self) {
        const LONG_JUMP: [u64; 4] = [
            0x76E1_5D3E_FEFD_CBBF,
            0xC500_4E44_1C52_2FB3,
            0x7771_0069_854E_E241,
            0x3910_9BB0_2ACB_E635,
        ];
        let mut acc = [0u64; 4];
        for &poly in &LONG_JUMP {
            for bit in 0..64 {
                if poly & (1u64 << bit) != 0 {
                    acc[0] ^= self.state[0];
                    acc[1] ^= self.state[1];
                    acc[2] ^= self.state[2];
                    acc[3] ^= self.state[3];
                }
                self.next_u64();
            }
        }
        self.state = acc;
        // Re-key the fork namespace. A plain xor would cancel after two
        // jumps; a splitmix64 walk never revisits earlier keys within any
        // realistic shard count.
        let mut sm = self.seed ^ 0xA076_1D64_78BD_642F;
        self.seed = splitmix64(&mut sm);
    }

    /// Split off an independent child generator. The child is an exact
    /// snapshot of `self` (same raw stream, same fork namespace); `self`
    /// then [`long_jump`](SimRng::long_jump)s past it. Calling `split` N
    /// times therefore yields N generators occupying disjoint 2^192-draw
    /// blocks, with the parent's own continuation beyond all of them —
    /// and the *first* child reproduces the original stream exactly,
    /// which is what makes a one-shard parallel run bit-identical to a
    /// serial run.
    pub fn split(&mut self) -> SimRng {
        let child = self.clone();
        self.long_jump();
        child
    }

    /// Next raw 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Next raw 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64 requires lo < hi");
        lo + self.uniform_below(hi - lo)
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires a non-empty range");
        self.uniform_below(n as u64) as usize
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "range_f64 requires lo < hi");
        lo + self.unit() * (hi - lo)
    }

    /// Unbiased uniform draw in `[0, bound)` (Lemire's method).
    fn uniform_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Standard normal draw (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - self.unit();
        let u2: f64 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Pick an index according to non-negative weights. Returns `None` if
    /// all weights are zero or the slice is empty.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        self.pick_weighted_with_total(weights, total)
    }

    /// [`SimRng::pick_weighted`] with the positive-weight total supplied
    /// by the caller. The total must equal the sum this function's
    /// sibling computes (same values, same order) — callers that sample
    /// the same weight table repeatedly precompute it once instead of
    /// re-summing per draw. Draw-for-draw identical to
    /// [`SimRng::pick_weighted`] given a faithful total.
    pub fn pick_weighted_with_total(&mut self, weights: &[f64], total: f64) -> Option<usize> {
        if total <= 0.0 {
            return None;
        }
        let mut x = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                x -= w;
                if x <= 0.0 {
                    return Some(i);
                }
            }
        }
        // Floating-point slack: return the last positive-weight index.
        weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (reservoir sampling). If
    /// `k >= n`, returns all indices in order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.uniform_below(i as u64 + 1) as usize;
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir.sort_unstable();
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_independent_of_draw_position() {
        let root = SimRng::new(7);
        let mut before = root.fork("net");
        let mut consumed = SimRng::new(7);
        for _ in 0..10 {
            consumed.next_u64();
        }
        let mut after = consumed.fork("net");
        for _ in 0..16 {
            assert_eq!(before.next_u64(), after.next_u64());
        }
    }

    #[test]
    fn fork_labels_give_distinct_streams() {
        let root = SimRng::new(7);
        let mut a = root.fork("dns");
        let mut b = root.fork("tcp");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_indexed_distinct_per_index() {
        let root = SimRng::new(7);
        let mut a = root.fork_indexed("client", 0);
        let mut b = root.fork_indexed("client", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn first_split_child_reproduces_parent_stream() {
        let reference = SimRng::new(42);
        let mut parent = SimRng::new(42);
        let child = parent.split();
        assert_eq!(child, reference, "first child must snapshot the parent");
        let mut a = child;
        let mut b = reference;
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_children_and_parent_continuation_all_differ() {
        let mut parent = SimRng::new(7);
        let mut kids: Vec<SimRng> = (0..4).map(|_| parent.split()).collect();
        let mut firsts: Vec<u64> = kids.iter_mut().map(|k| k.next_u64()).collect();
        firsts.push(parent.next_u64());
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 5, "split streams must not collide");
    }

    #[test]
    fn long_jump_rekeys_fork_namespace() {
        let mut jumped = SimRng::new(9);
        jumped.long_jump();
        let pre = SimRng::new(9);
        let mut a = pre.fork("subsystem");
        let mut b = jumped.fork("subsystem");
        assert_ne!(
            a.next_u64(),
            b.next_u64(),
            "forks across a jump must be disjoint"
        );
    }

    #[test]
    fn long_jump_is_deterministic() {
        let mut a = SimRng::new(11);
        let mut b = SimRng::new(11);
        a.long_jump();
        b.long_jump();
        assert_eq!(a, b);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_roughly_matches_probability() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn pick_weighted_respects_weights() {
        let mut r = SimRng::new(17);
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..8_000 {
            counts[r.pick_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((2.5..3.6).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn pick_weighted_all_zero_is_none() {
        let mut r = SimRng::new(19);
        assert_eq!(r.pick_weighted(&[0.0, 0.0]), None);
        assert_eq!(r.pick_weighted(&[]), None);
        assert_eq!(r.pick_weighted(&[f64::NAN]), None);
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = SimRng::new(23);
        let s = r.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        let mut dedup = s.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_k_ge_n_returns_all() {
        let mut r = SimRng::new(23);
        assert_eq!(r.sample_indices(3, 5), vec![0, 1, 2]);
        assert_eq!(r.sample_indices(3, 3), vec![0, 1, 2]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(29);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SimRng::new(31);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
