//! Sampling distributions used across the simulation.
//!
//! Implemented locally (on top of [`SimRng`]) so the workspace needs no
//! distribution crate. Each distribution documents where the workspace uses
//! it:
//!
//! * [`LogNormal`] — web object sizes and page weights (Figures 4–6 shapes),
//!   RTT jitter. Web content sizes are famously heavy-tailed and log-normal
//!   bodies are the standard first-order model.
//! * [`Pareto`] — page-size tails (Figure 5's "very long tail") and dwell
//!   times (§6.2).
//! * [`Exponential`] — visit inter-arrival times (Poisson arrivals).
//! * [`Zipf`] — popularity of sites/pages across clients.
//! * [`Empirical`] — weighted discrete choice (country mixes, browser
//!   market share).

use crate::rng::SimRng;

/// A distribution over `f64` that can be sampled with a [`SimRng`].
pub trait Sample {
    /// Draw one value.
    fn sample(&self, rng: &mut SimRng) -> f64;
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal (of `ln x`).
    pub mu: f64,
    /// Standard deviation of the underlying normal. Must be non-negative.
    pub sigma: f64,
}

impl LogNormal {
    /// Construct from the underlying normal's parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Construct a log-normal with the given *median* and a shape parameter
    /// sigma. The median of a log-normal is `exp(mu)`, which is a far more
    /// intuitive handle when calibrating to a CDF plot.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }
}

/// Pareto (type I) distribution with scale `xm > 0` and shape `alpha > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    /// Scale (minimum value).
    pub xm: f64,
    /// Tail index; smaller means heavier tail.
    pub alpha: f64,
}

impl Pareto {
    /// Construct a Pareto distribution.
    pub fn new(xm: f64, alpha: f64) -> Self {
        assert!(xm > 0.0 && alpha > 0.0, "xm and alpha must be positive");
        Pareto { xm, alpha }
    }
}

impl Sample for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse transform: x = xm / U^(1/alpha), U in (0, 1].
        let u = 1.0 - rng.unit();
        self.xm / u.powf(1.0 / self.alpha)
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter; must be positive.
    pub lambda: f64,
}

impl Exponential {
    /// Construct from a rate.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        Exponential { lambda }
    }

    /// Construct from a mean (`1/lambda`).
    pub fn from_mean(mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        Exponential::new(1.0 / mean)
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = 1.0 - rng.unit();
        -u.ln() / self.lambda
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// Sampling uses the precomputed CDF (O(log n) per draw), which is fine at
/// the corpus sizes this workspace generates (thousands of items).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

/// Why a [`Zipf`] construction was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZipfError {
    /// `n == 0`: a distribution over zero ranks cannot draw anything.
    NoRanks,
    /// Exponent was negative, NaN, or infinite.
    InvalidExponent(f64),
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::NoRanks => write!(f, "Zipf needs at least one rank"),
            ZipfError::InvalidExponent(s) => {
                write!(f, "Zipf exponent must be finite and non-negative, got {s}")
            }
        }
    }
}

impl std::error::Error for ZipfError {}

impl Zipf {
    /// Construct a Zipf distribution over `n >= 1` ranks with exponent
    /// `s >= 0` (s = 0 is uniform).
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (`n == 0`, negative/NaN/infinite
    /// exponent). Callers with untrusted parameters should use
    /// [`Zipf::try_new`].
    pub fn new(n: usize, s: f64) -> Self {
        Zipf::try_new(n, s).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects `n == 0` and non-finite or negative
    /// exponents with a typed error instead of panicking mid-generation.
    pub fn try_new(n: usize, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::NoRanks);
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ZipfError::InvalidExponent(s));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(Zipf { cdf })
    }

    /// Draw a rank in `[0, n)` (zero-based; rank 0 is the most popular).
    pub fn sample_rank(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of a zero-based rank (the share of draws that
    /// land on it). Returns 0.0 for out-of-range ranks.
    pub fn mass(&self, rank: usize) -> f64 {
        match rank {
            0 => self.cdf.first().copied().unwrap_or(0.0),
            r if r < self.cdf.len() => self.cdf[r] - self.cdf[r - 1],
            _ => 0.0,
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero ranks (never true by
    /// construction, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// An empirical (weighted discrete) distribution over `T`.
#[derive(Debug, Clone)]
pub struct Empirical<T> {
    items: Vec<T>,
    weights: Vec<f64>,
    /// Sum of finite positive weights, precomputed with the exact
    /// summation [`SimRng::pick_weighted`] performs per draw.
    total: f64,
}

impl<T> Empirical<T> {
    /// Build from `(item, weight)` pairs. Weights must be non-negative and
    /// at least one must be positive.
    pub fn new(pairs: Vec<(T, f64)>) -> Self {
        assert!(
            pairs.iter().any(|(_, w)| *w > 0.0),
            "at least one weight must be positive"
        );
        let (items, weights): (Vec<T>, Vec<f64>) = pairs.into_iter().unzip();
        let total = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        Empirical {
            items,
            weights,
            total,
        }
    }

    /// Draw a reference to one item.
    pub fn sample<'a>(&'a self, rng: &mut SimRng) -> &'a T {
        let idx = rng
            .pick_weighted_with_total(&self.weights, self.total)
            .expect("Empirical invariant: positive total weight");
        &self.items[idx]
    }

    /// All items with their weights.
    pub fn iter(&self) -> impl Iterator<Item = (&T, f64)> {
        self.items.iter().zip(self.weights.iter().copied())
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xE7C0_4E5E)
    }

    #[test]
    fn lognormal_median_matches() {
        let d = LogNormal::from_median(100.0, 1.0);
        let mut r = rng();
        let mut samples: Vec<f64> = (0..20_001).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((80.0..125.0).contains(&median), "median = {median}");
    }

    #[test]
    fn lognormal_always_positive() {
        let d = LogNormal::new(0.0, 3.0);
        let mut r = rng();
        assert!((0..5_000).all(|_| d.sample(&mut r) > 0.0));
    }

    #[test]
    fn pareto_respects_scale() {
        let d = Pareto::new(10.0, 2.0);
        let mut r = rng();
        assert!((0..5_000).all(|_| d.sample(&mut r) >= 10.0));
    }

    #[test]
    fn pareto_mean_close_to_theory() {
        // Mean = alpha*xm/(alpha-1) = 2*10/1 = 20 for alpha=2, xm=10.
        let d = Pareto::new(10.0, 2.0);
        let mut r = rng();
        let n = 200_000;
        let mean = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((18.0..22.5).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn exponential_mean_close_to_theory() {
        let d = Exponential::from_mean(5.0);
        let mut r = rng();
        let n = 50_000;
        let mean = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((4.8..5.2).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let d = Zipf::new(100, 1.0);
        let mut r = rng();
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[d.sample_rank(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let d = Zipf::new(4, 0.0);
        let mut r = rng();
        let mut counts = vec![0usize; 4];
        for _ in 0..40_000 {
            counts[d.sample_rank(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn zipf_single_rank() {
        let d = Zipf::new(1, 1.5);
        let mut r = rng();
        assert_eq!(d.sample_rank(&mut r), 0);
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn empirical_zero_weight_never_drawn() {
        let d = Empirical::new(vec![("never", 0.0), ("always", 1.0)]);
        let mut r = rng();
        for _ in 0..1_000 {
            assert_eq!(*d.sample(&mut r), "always");
        }
    }

    #[test]
    fn empirical_proportions() {
        let d = Empirical::new(vec![("a", 1.0), ("b", 4.0)]);
        let mut r = rng();
        let hits_b = (0..10_000).filter(|_| *d.sample(&mut r) == "b").count();
        assert!((7_600..8_400).contains(&hits_b), "hits_b = {hits_b}");
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empirical_rejects_all_zero() {
        let _ = Empirical::new(vec![("a", 0.0)]);
    }

    #[test]
    fn zipf_try_new_rejects_zero_ranks() {
        assert_eq!(Zipf::try_new(0, 1.0).unwrap_err(), ZipfError::NoRanks);
    }

    #[test]
    fn zipf_try_new_rejects_negative_exponent() {
        assert_eq!(
            Zipf::try_new(10, -0.5).unwrap_err(),
            ZipfError::InvalidExponent(-0.5)
        );
    }

    #[test]
    fn zipf_try_new_rejects_nan_and_infinite_exponent() {
        assert!(matches!(
            Zipf::try_new(10, f64::NAN),
            Err(ZipfError::InvalidExponent(_))
        ));
        assert!(matches!(
            Zipf::try_new(10, f64::INFINITY),
            Err(ZipfError::InvalidExponent(_))
        ));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_new_still_panics_on_zero_ranks() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn zipf_mass_sums_to_one_and_decreases() {
        let z = Zipf::new(8, 1.2);
        let total: f64 = (0..8).map(|r| z.mass(r)).sum();
        assert!((total - 1.0).abs() < 1e-12, "total = {total}");
        for r in 1..8 {
            assert!(z.mass(r) < z.mass(r - 1), "mass must decrease with rank");
        }
        assert_eq!(z.mass(8), 0.0, "out-of-range rank has zero mass");
    }
}
