//! Deterministic event tracing.
//!
//! In the smoltcp idiom, every interesting event on the simulated wire (DNS
//! query, TCP RST, HTTP response, censor action, browser callback) can be
//! recorded into a [`Trace`]. Tests assert on traces; the experiment
//! binaries can dump them for debugging. Tracing is bounded (ring buffer)
//! so month-long simulations do not accumulate unbounded memory.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Severity/verbosity of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TraceLevel {
    /// High-volume wire-level detail (every packet-equivalent event).
    Trace,
    /// Normal protocol events (connections, requests, task outcomes).
    Debug,
    /// Notable events (censor interference, detection decisions).
    Info,
    /// Abnormal events (malformed input, dropped submissions).
    Warn,
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceLevel::Trace => "TRACE",
            TraceLevel::Debug => "DEBUG",
            TraceLevel::Info => "INFO",
            TraceLevel::Warn => "WARN",
        };
        f.write_str(s)
    }
}

/// One recorded event. (Serialise-only: the borrowed subsystem tag cannot
/// be reconstructed from JSON, and nothing replays traces from disk.)
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TraceEvent {
    /// When the event happened in simulated time.
    pub at: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Subsystem tag, e.g. `"dns"`, `"tcp"`, `"censor"`, `"browser"`.
    pub subsystem: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {}: {}",
            self.at, self.level, self.subsystem, self.message
        )
    }
}

/// A bounded in-memory event trace.
#[derive(Debug)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    min_level: TraceLevel,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(65_536, TraceLevel::Debug)
    }
}

impl Trace {
    /// Create a trace retaining at most `capacity` events at or above
    /// `min_level`.
    pub fn new(capacity: usize, min_level: TraceLevel) -> Trace {
        Trace {
            events: VecDeque::with_capacity(capacity.min(4_096)),
            capacity: capacity.max(1),
            min_level,
            dropped: 0,
        }
    }

    /// A trace that records nothing (for hot benchmark paths).
    pub fn disabled() -> Trace {
        Trace::new(1, TraceLevel::Warn)
    }

    /// Whether events at `level` would be retained. Hot paths should
    /// check this before building an expensive message — `record` takes
    /// an already-built string, so the format cost is paid even for
    /// events the filter would drop.
    pub fn enabled(&self, level: TraceLevel) -> bool {
        level >= self.min_level
    }

    /// Record an event (dropped silently if below `min_level`; oldest
    /// events are evicted past capacity).
    pub fn record(
        &mut self,
        at: SimTime,
        level: TraceLevel,
        subsystem: &'static str,
        message: impl Into<String>,
    ) {
        if level < self.min_level {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at,
            level,
            subsystem,
            message: message.into(),
        });
    }

    /// Record an event by copying `message`, recycling the evicted
    /// event's string buffer once the ring is full — so steady-state
    /// recording on hot paths performs no heap allocation. Produces
    /// exactly the same retained events as [`Trace::record`].
    pub fn record_str(
        &mut self,
        at: SimTime,
        level: TraceLevel,
        subsystem: &'static str,
        message: &str,
    ) {
        if level < self.min_level {
            return;
        }
        let mut buf = if self.events.len() == self.capacity {
            let evicted = self.events.pop_front().expect("capacity is at least 1");
            self.dropped += 1;
            evicted.message
        } else {
            String::new()
        };
        buf.clear();
        buf.push_str(message);
        self.events.push_back(TraceEvent {
            at,
            level,
            subsystem,
            message: buf,
        });
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Retained events for one subsystem.
    pub fn for_subsystem<'a>(
        &'a self,
        subsystem: &'a str,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.subsystem == subsystem)
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether any retained event's message contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.events.iter().any(|e| e.message.contains(needle))
    }

    /// Clear all retained events.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters_by_level() {
        let mut t = Trace::new(10, TraceLevel::Debug);
        t.record(SimTime::ZERO, TraceLevel::Trace, "dns", "too verbose");
        t.record(SimTime::ZERO, TraceLevel::Info, "censor", "rst injected");
        assert_eq!(t.len(), 1);
        assert!(t.contains("rst injected"));
        assert!(!t.contains("too verbose"));
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::new(3, TraceLevel::Debug);
        for i in 0..5 {
            t.record(
                SimTime::from_secs(i),
                TraceLevel::Debug,
                "x",
                format!("e{i}"),
            );
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let msgs: Vec<_> = t.events().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn subsystem_filtering() {
        let mut t = Trace::default();
        t.record(SimTime::ZERO, TraceLevel::Debug, "dns", "q1");
        t.record(SimTime::ZERO, TraceLevel::Debug, "tcp", "syn");
        t.record(SimTime::ZERO, TraceLevel::Debug, "dns", "q2");
        assert_eq!(t.for_subsystem("dns").count(), 2);
        assert_eq!(t.for_subsystem("tcp").count(), 1);
        assert_eq!(t.for_subsystem("http").count(), 0);
    }

    #[test]
    fn display_formats_event() {
        let e = TraceEvent {
            at: SimTime::from_millis(1_500),
            level: TraceLevel::Warn,
            subsystem: "censor",
            message: "blockpage".into(),
        };
        let s = e.to_string();
        assert!(s.contains("WARN"));
        assert!(s.contains("censor"));
        assert!(s.contains("blockpage"));
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::new(1, TraceLevel::Debug);
        t.record(SimTime::ZERO, TraceLevel::Debug, "a", "1");
        t.record(SimTime::ZERO, TraceLevel::Debug, "a", "2");
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn disabled_trace_keeps_warnings_only() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, TraceLevel::Info, "a", "info");
        assert!(t.is_empty());
        t.record(SimTime::ZERO, TraceLevel::Warn, "a", "warn");
        assert_eq!(t.len(), 1);
    }
}
