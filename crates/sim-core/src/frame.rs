//! Length-prefixed, checksummed binary frame codec — the wire format of
//! the distributed world engine.
//!
//! A frame is a 16-byte header followed by an opaque payload:
//!
//! ```text
//! offset  size  field
//! 0       4     magic       b"ENCF"
//! 4       1     version     FRAME_VERSION (currently 1)
//! 5       1     kind        application-defined frame kind
//! 6       2     reserved    must be zero (little-endian)
//! 8       4     payload len little-endian u32
//! 12      4     CRC-32      little-endian u32, IEEE polynomial, over
//!                           bytes 4..12 of the header plus the payload
//! 16      len   payload     opaque bytes (the transport layer encodes
//!                           vendored-serde binary — `serde::bin` — here)
//! ```
//!
//! The codec is deliberately paranoid, because frames cross a process
//! boundary in the distributed shard engine
//! (`population::transport`):
//!
//! * the declared payload length is validated against a caller-supplied
//!   cap **before** any allocation, so a corrupt or hostile length
//!   prefix cannot balloon memory or over-read;
//! * the checksum covers everything after the magic (version, kind,
//!   reserved bits, length, payload), so any single bit flip surfaces
//!   as a typed [`FrameError`] — never a mis-parsed payload;
//! * truncation anywhere — mid-header or mid-payload — is a typed
//!   [`FrameError::ShortRead`], while EOF exactly on a frame boundary
//!   is the clean `Ok(None)` end-of-stream;
//! * every failure mode is a [`FrameError`] value; the codec never
//!   panics on wire input (property-tested below over arbitrary
//!   payloads, truncation points, and bit flips).

use std::fmt;
use std::io::{self, Read, Write};

/// The four magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"ENCF";

/// Current wire-format version. Bump on any incompatible layout change;
/// readers reject other versions with [`FrameError::UnsupportedVersion`].
pub const FRAME_VERSION: u8 = 1;

/// Size of the fixed frame header in bytes.
pub const FRAME_HEADER_LEN: usize = 16;

/// A decoded frame: an application-defined kind plus an opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Application-defined frame kind (the transport layer's opcode).
    pub kind: u8,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

/// Every way decoding a frame can fail. All variants are recoverable
/// values — the codec never panics on wire input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The stream ended mid-frame (inside the header or the payload).
    ShortRead {
        /// Bytes the current section still required.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The first four bytes were not [`FRAME_MAGIC`].
    BadMagic {
        /// The bytes found where the magic should be.
        found: [u8; 4],
    },
    /// The version byte named a layout this reader does not speak.
    UnsupportedVersion {
        /// The version byte found on the wire.
        found: u8,
    },
    /// The reserved header bits were non-zero (a forward-compat error
    /// or corruption — either way the frame is not trustworthy).
    ReservedNonZero {
        /// The reserved field's value.
        found: u16,
    },
    /// The declared payload length exceeds the caller's cap. Raised
    /// before any allocation.
    Oversized {
        /// The declared payload length.
        len: u32,
        /// The cap the caller imposed.
        max: u32,
    },
    /// The checksum over header-after-magic plus payload did not match.
    Corrupt {
        /// Checksum declared in the header.
        expected: u32,
        /// Checksum computed over the received bytes.
        found: u32,
    },
    /// The underlying reader or writer failed.
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::ShortRead { needed, got } => {
                write!(f, "frame truncated: needed {needed} more bytes, got {got}")
            }
            FrameError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?} (expected \"ENCF\")")
            }
            FrameError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported frame version {found} (this reader speaks {FRAME_VERSION})"
                )
            }
            FrameError::ReservedNonZero { found } => {
                write!(f, "reserved frame header bits set: {found:#06x}")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload length {len} exceeds cap {max}")
            }
            FrameError::Corrupt { expected, found } => {
                write!(
                    f,
                    "frame checksum mismatch: header says {expected:#010x}, payload hashes to {found:#010x}"
                )
            }
            FrameError::Io(detail) => write!(f, "frame I/O error: {detail}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(err: io::Error) -> FrameError {
        FrameError::Io(err.to_string())
    }
}

/// CRC-32 lookup table for the IEEE 802.3 polynomial (reflected
/// 0xEDB88320), built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Streaming CRC-32 (IEEE) over byte slices.
#[derive(Debug, Clone, Copy)]
struct Crc32(u32);

impl Crc32 {
    fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.0 ^ u32::from(b)) & 0xFF) as usize;
            self.0 = (self.0 >> 8) ^ CRC_TABLE[idx];
        }
    }

    fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// CRC-32 (IEEE 802.3) of `bytes` — the checksum frames carry.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// The checksum a frame with this kind and payload must carry: CRC-32
/// over version, kind, reserved bits, the length field, and the payload.
fn frame_checksum(kind: u8, payload: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(&[FRAME_VERSION, kind, 0, 0]);
    crc.update(&(payload.len() as u32).to_le_bytes());
    crc.update(payload);
    crc.finish()
}

/// Encode one frame into a fresh byte vector.
///
/// # Panics
///
/// Panics if the payload exceeds `u32::MAX` bytes — a programming error
/// on the sending side, not a wire condition.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    assert!(
        u32::try_from(payload.len()).is_ok(),
        "frame payload too large to encode: {} bytes",
        payload.len()
    );
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.push(kind);
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_checksum(kind, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Write one frame to `w`. The frame is encoded into a single buffer
/// first so short interleavings from concurrent writers cannot tear a
/// header from its payload.
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> Result<(), FrameError> {
    let bytes = encode_frame(kind, payload);
    w.write_all(&bytes)?;
    Ok(())
}

/// Fill `buf` from `r`, tolerating short reads. Returns the number of
/// bytes read, which is less than `buf.len()` only at EOF.
fn fill<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

/// Read one frame from `r`, capping the payload at `max_payload` bytes.
///
/// Returns `Ok(None)` only when the stream ends cleanly on a frame
/// boundary (EOF before any header byte). EOF anywhere inside a frame is
/// [`FrameError::ShortRead`]; every other malformation is its own typed
/// [`FrameError`]. The length prefix is validated against `max_payload`
/// **before** the payload buffer is allocated.
pub fn read_frame<R: Read>(r: &mut R, max_payload: u32) -> Result<Option<Frame>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let got = fill(r, &mut header)?;
    if got == 0 {
        return Ok(None);
    }
    if got < FRAME_HEADER_LEN {
        return Err(FrameError::ShortRead {
            needed: FRAME_HEADER_LEN - got,
            got,
        });
    }

    let magic: [u8; 4] = header[0..4].try_into().expect("slice length is 4");
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic { found: magic });
    }
    let version = header[4];
    if version != FRAME_VERSION {
        return Err(FrameError::UnsupportedVersion { found: version });
    }
    let kind = header[5];
    let reserved = u16::from_le_bytes(header[6..8].try_into().expect("slice length is 2"));
    if reserved != 0 {
        return Err(FrameError::ReservedNonZero { found: reserved });
    }
    let len = u32::from_le_bytes(header[8..12].try_into().expect("slice length is 4"));
    if len > max_payload {
        return Err(FrameError::Oversized {
            len,
            max: max_payload,
        });
    }
    let expected = u32::from_le_bytes(header[12..16].try_into().expect("slice length is 4"));

    let mut payload = vec![0u8; len as usize];
    let got = fill(r, &mut payload)?;
    if got < payload.len() {
        return Err(FrameError::ShortRead {
            needed: payload.len() - got,
            got,
        });
    }

    let found = frame_checksum(kind, &payload);
    if found != expected {
        return Err(FrameError::Corrupt { expected, found });
    }

    Ok(Some(Frame { kind, payload }))
}

/// Decode one frame from the front of `bytes`, returning the frame and
/// the number of bytes consumed. Same validation and typed errors as
/// [`read_frame`]; `Ok(None)` on an empty slice.
pub fn decode_frame(bytes: &[u8], max_payload: u32) -> Result<Option<(Frame, usize)>, FrameError> {
    let mut cursor = io::Cursor::new(bytes);
    let frame = read_frame(&mut cursor, max_payload)?;
    Ok(frame.map(|f| {
        let consumed = usize::try_from(cursor.position()).expect("cursor fits in usize");
        (f, consumed)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A reader that hands out one byte at a time, to exercise the
    /// short-read tolerance of `fill`.
    struct Dribble<'a>(&'a [u8]);

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    const MAX: u32 = 1 << 20;

    #[test]
    fn known_crc_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let mut empty: &[u8] = &[];
        assert_eq!(read_frame(&mut empty, MAX), Ok(None));
        assert_eq!(decode_frame(&[], MAX), Ok(None));
    }

    #[test]
    fn roundtrip_smoke() {
        let bytes = encode_frame(7, b"hello world");
        let (frame, consumed) = decode_frame(&bytes, MAX).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(frame.kind, 7);
        assert_eq!(frame.payload, b"hello world");
    }

    #[test]
    fn consecutive_frames_stream_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, b"first").unwrap();
        write_frame(&mut wire, 2, b"").unwrap();
        write_frame(&mut wire, 3, b"third").unwrap();
        let mut r: &[u8] = &wire;
        assert_eq!(read_frame(&mut r, MAX).unwrap().unwrap().kind, 1);
        assert_eq!(read_frame(&mut r, MAX).unwrap().unwrap().payload, b"");
        assert_eq!(read_frame(&mut r, MAX).unwrap().unwrap().kind, 3);
        assert_eq!(read_frame(&mut r, MAX).unwrap(), None);
    }

    #[test]
    fn dribbling_reader_still_decodes() {
        let wire = encode_frame(9, &[0xAB; 300]);
        let mut r = Dribble(&wire);
        let frame = read_frame(&mut r, MAX).unwrap().unwrap();
        assert_eq!(frame.payload, vec![0xAB; 300]);
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        // Hand-craft a header declaring a 4 GiB-ish payload. The cap
        // check must fire on the header alone — no payload bytes exist.
        let mut wire = encode_frame(1, b"x");
        wire[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r: &[u8] = &wire;
        match read_frame(&mut r, MAX) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, MAX);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut wire = encode_frame(1, b"payload");
        wire[4] = FRAME_VERSION + 1;
        match decode_frame(&wire, MAX) {
            Err(FrameError::UnsupportedVersion { found }) => {
                assert_eq!(found, FRAME_VERSION + 1)
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn reserved_bits_rejected() {
        let mut wire = encode_frame(1, b"payload");
        wire[6] = 1;
        assert!(matches!(
            decode_frame(&wire, MAX),
            Err(FrameError::ReservedNonZero { found: 1 })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn roundtrip_arbitrary_payloads(
            kind in 0u8..=255,
            payload in proptest::collection::vec(0u8..=255, 0..2048),
        ) {
            let wire = encode_frame(kind, &payload);
            let (frame, consumed) = decode_frame(&wire, MAX).unwrap().unwrap();
            prop_assert_eq!(consumed, wire.len());
            prop_assert_eq!(frame.kind, kind);
            prop_assert_eq!(frame.payload, payload);
        }

        #[test]
        fn truncation_is_a_typed_error_never_a_panic(
            payload in proptest::collection::vec(0u8..=255, 0..512),
            cut_seed in 0usize..4096,
        ) {
            let wire = encode_frame(3, &payload);
            // Cut strictly inside the frame (index 0 is clean EOF).
            let cut = 1 + cut_seed % (wire.len() - 1);
            let result = decode_frame(&wire[..cut], MAX);
            prop_assert!(
                matches!(result, Err(FrameError::ShortRead { .. })),
                "cut at {} of {} gave {:?}",
                cut,
                wire.len(),
                result
            );
        }

        #[test]
        fn single_bit_flip_is_a_typed_error_never_a_panic(
            payload in proptest::collection::vec(0u8..=255, 1..512),
            byte_seed in 0usize..4096,
            bit in 0u8..8,
        ) {
            let mut wire = encode_frame(3, &payload);
            let byte = byte_seed % wire.len();
            wire[byte] ^= 1 << bit;
            match decode_frame(&wire, MAX) {
                // Every flip must surface as a typed error...
                Err(
                    FrameError::BadMagic { .. }
                    | FrameError::UnsupportedVersion { .. }
                    | FrameError::ReservedNonZero { .. }
                    | FrameError::Oversized { .. }
                    | FrameError::Corrupt { .. }
                    | FrameError::ShortRead { .. },
                ) => {}
                // ...never a silently different frame.
                Ok(decoded) => prop_assert!(
                    false,
                    "bit flip at byte {byte} bit {bit} decoded as {decoded:?}"
                ),
                Err(FrameError::Io(detail)) => {
                    prop_assert!(false, "unexpected io error: {detail}")
                }
            }
        }

        #[test]
        fn arbitrary_garbage_never_panics_or_overreads(
            garbage in proptest::collection::vec(0u8..=255, 0..256),
        ) {
            // Whatever the bytes, decoding returns; it never panics and
            // never reads past the slice (decode_frame can't — but the
            // cap also keeps allocation bounded by the declared max).
            let _ = decode_frame(&garbage, 1024);
        }
    }
}
