//! Descriptive statistics and the binomial hypothesis test.
//!
//! * [`Cdf`] builds empirical CDFs — the harness uses these to regenerate
//!   Figures 4, 5 and 6.
//! * [`FiveNumber`] computes box-plot statistics — used for Figure 7.
//! * [`binomial_sf`] / [`OneSidedBinomialTest`] implement the paper's §7.2
//!   detection rule: a resource is considered filtered in a region when
//!   `Pr[Binomial(n, p) <= x] <= alpha` there but not elsewhere, with
//!   p = 0.7 and alpha = 0.05 in the paper.

use serde::{Deserialize, Serialize};

/// Summary statistics over a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Population standard deviation (0 for n < 2).
    pub std_dev: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Compute summary statistics of `xs`.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

/// An empirical cumulative distribution function.
///
/// Built once from a sample; supports evaluation (`fraction_at_most`),
/// quantiles, and emitting `(x, F(x))` series for plotting — the harness
/// prints these series as the figure data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from a sample (NaNs are dropped).
    pub fn new(mut xs: Vec<f64>) -> Cdf {
        xs.retain(|x| !x.is_nan());
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted: xs }
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// F(x): fraction of samples `<= x`. Returns 0 for an empty CDF.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The q-th quantile (0 <= q <= 1) using nearest-rank. Returns `None`
    /// for an empty CDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).saturating_sub(1);
        Some(self.sorted[idx.min(self.sorted.len() - 1)])
    }

    /// Median (0.5 quantile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Emit `points` evenly spaced `(x, F(x))` pairs spanning the sample
    /// range — the series a plotting tool would consume.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().unwrap();
        if points == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.fraction_at_most(x))
            })
            .collect()
    }

    /// Emit `(x, F(x))` at caller-chosen x positions (used when the paper's
    /// axis is fixed, e.g. Figure 4's 0–2000 images range).
    pub fn series_at(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.fraction_at_most(x))).collect()
    }
}

/// Five-number summary plus mean: the data behind a box plot (Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumber {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl FiveNumber {
    /// Compute the five-number summary. Returns `None` for an empty sample.
    pub fn of(xs: &[f64]) -> Option<FiveNumber> {
        if xs.is_empty() {
            return None;
        }
        let cdf = Cdf::new(xs.to_vec());
        Some(FiveNumber {
            min: cdf.quantile(0.0)?,
            q1: cdf.quantile(0.25)?,
            median: cdf.quantile(0.5)?,
            q3: cdf.quantile(0.75)?,
            max: cdf.quantile(1.0)?,
            mean: xs.iter().sum::<f64>() / xs.len() as f64,
        })
    }
}

/// Survival function of the binomial: `Pr[Binomial(n, p) <= x]` is the CDF;
/// this returns the **CDF** value `Pr[X <= x]` computed in log space for
/// numerical stability at the sample sizes the detector sees (thousands of
/// measurements per region).
///
/// Named `binomial_sf` for symmetry with the paper's test ("fails this test
/// at 0.05 significance"): the detector compares `binomial_cdf(x; n, p)`
/// against alpha. See [`OneSidedBinomialTest`].
pub fn binomial_sf(n: u64, p: f64, x: u64) -> f64 {
    binomial_cdf(n, p, x)
}

/// `Pr[Binomial(n, p) <= x]`, exact summation in log space.
pub fn binomial_cdf(n: u64, p: f64, x: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if x >= n {
        return 1.0;
    }
    if p == 0.0 {
        return 1.0; // X is identically 0 <= x.
    }
    if p == 1.0 {
        return if x >= n { 1.0 } else { 0.0 };
    }
    let ln_p = p.ln();
    let ln_q = (1.0 - p).ln();
    let mut total = 0.0f64;
    for k in 0..=x {
        let ln_pmf = ln_choose(n, k) + k as f64 * ln_p + (n - k) as f64 * ln_q;
        total += ln_pmf.exp();
    }
    total.min(1.0)
}

/// `ln(n choose k)` via the log-gamma function.
fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
fn ln_gamma(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The paper's one-sided binomial hypothesis test (§7.2).
///
/// Null hypothesis: in the absence of filtering, each measurement succeeds
/// independently with probability at least `p` (0.7 in the paper). The test
/// rejects — i.e. flags possible filtering — when observing `successes` or
/// fewer successes out of `trials` would happen with probability at most
/// `alpha` under the null.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OneSidedBinomialTest {
    /// Success probability under the null hypothesis (paper: 0.7).
    pub p: f64,
    /// Significance level (paper: 0.05).
    pub alpha: f64,
}

impl Default for OneSidedBinomialTest {
    fn default() -> Self {
        OneSidedBinomialTest {
            p: 0.7,
            alpha: 0.05,
        }
    }
}

impl OneSidedBinomialTest {
    /// Construct with explicit parameters.
    pub fn new(p: f64, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be a probability");
        OneSidedBinomialTest { p, alpha }
    }

    /// The p-value: `Pr[Binomial(trials, p) <= successes]`.
    pub fn p_value(&self, trials: u64, successes: u64) -> f64 {
        binomial_cdf(trials, self.p, successes.min(trials))
    }

    /// Whether the observation is significant (rejects the null).
    pub fn rejects(&self, trials: u64, successes: u64) -> bool {
        if trials == 0 {
            return false; // No evidence either way.
        }
        self.p_value(trials, successes) <= self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn cdf_fraction_at_most() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.fraction_at_most(0.0), 0.0);
        assert_eq!(cdf.fraction_at_most(2.0), 0.5);
        assert_eq!(cdf.fraction_at_most(2.5), 0.5);
        assert_eq!(cdf.fraction_at_most(10.0), 1.0);
    }

    #[test]
    fn cdf_quantiles() {
        let cdf = Cdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(0.5), Some(50.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        assert_eq!(cdf.median(), Some(50.0));
    }

    #[test]
    fn cdf_drops_nan() {
        let cdf = Cdf::new(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn cdf_series_monotone() {
        let cdf = Cdf::new(vec![1.0, 5.0, 5.0, 9.0, 20.0]);
        let series = cdf.series(10);
        assert_eq!(series.len(), 10);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be non-decreasing");
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_series_at_fixed_positions() {
        let cdf = Cdf::new(vec![1.0, 2.0]);
        let s = cdf.series_at(&[0.0, 1.5, 3.0]);
        assert_eq!(s, vec![(0.0, 0.0), (1.5, 0.5), (3.0, 1.0)]);
    }

    #[test]
    fn cdf_empty_behaviour() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_most(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert!(cdf.series(5).is_empty());
    }

    #[test]
    fn five_number_ordering() {
        let f = FiveNumber::of(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert!(f.min <= f.q1 && f.q1 <= f.median && f.median <= f.q3 && f.q3 <= f.max);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.max, 5.0);
        assert_eq!(f.mean, 3.0);
    }

    #[test]
    fn five_number_empty_is_none() {
        assert!(FiveNumber::of(&[]).is_none());
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..15u64 {
            let fact: f64 = (1..=n).map(|i| i as f64).product();
            let lg = ln_gamma(n as f64 + 1.0);
            assert!(
                (lg - fact.ln()).abs() < 1e-9,
                "ln_gamma({}) = {lg}, want {}",
                n + 1,
                fact.ln()
            );
        }
    }

    #[test]
    fn binomial_cdf_small_case_exact() {
        // Binomial(2, 0.5): P[X<=0]=0.25, P[X<=1]=0.75, P[X<=2]=1.
        assert!((binomial_cdf(2, 0.5, 0) - 0.25).abs() < 1e-12);
        assert!((binomial_cdf(2, 0.5, 1) - 0.75).abs() < 1e-12);
        assert!((binomial_cdf(2, 0.5, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn binomial_cdf_edge_probabilities() {
        assert_eq!(binomial_cdf(10, 0.0, 0), 1.0);
        assert_eq!(binomial_cdf(10, 1.0, 9), 0.0);
        assert_eq!(binomial_cdf(10, 1.0, 10), 1.0);
        assert_eq!(binomial_cdf(0, 0.3, 0), 1.0);
    }

    #[test]
    fn binomial_cdf_monotone_in_x() {
        let mut prev = 0.0;
        for x in 0..=50 {
            let c = binomial_cdf(50, 0.7, x);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!((prev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binomial_cdf_large_n_stable() {
        // Mean 700, sd ~14.5; P[X <= 600] should be astronomically small
        // but finite and non-negative; P[X <= 700] about a half.
        let lo = binomial_cdf(1_000, 0.7, 600);
        assert!((0.0..1e-6).contains(&lo), "lo = {lo}");
        let mid = binomial_cdf(1_000, 0.7, 700);
        assert!((0.4..0.6).contains(&mid), "mid = {mid}");
    }

    #[test]
    fn paper_test_detects_total_blocking() {
        // 100 clients measured, 10 Pakistani clients all failed (paper §5.3
        // scenario): in Pakistan 0/10 successes is significant.
        let t = OneSidedBinomialTest::default();
        assert!(t.rejects(10, 0));
        // Elsewhere 90/90 success is not.
        assert!(!t.rejects(90, 90));
    }

    #[test]
    fn paper_test_tolerates_sporadic_failure() {
        // 70% success prior: seeing 7/10 successes is entirely expected.
        let t = OneSidedBinomialTest::default();
        assert!(!t.rejects(10, 7));
        assert!(!t.rejects(10, 6)); // p-value ~0.35
    }

    #[test]
    fn paper_test_needs_enough_evidence() {
        let t = OneSidedBinomialTest::default();
        // A single failed measurement is not significant (p = 0.3).
        assert!(!t.rejects(1, 0));
        // Two failures: p = 0.09, still not significant at 0.05.
        assert!(!t.rejects(2, 0));
        // Three failures: p = 0.027 — significant.
        assert!(t.rejects(3, 0));
        // Zero trials: never significant.
        assert!(!t.rejects(0, 0));
    }

    #[test]
    fn p_value_clamps_successes() {
        let t = OneSidedBinomialTest::default();
        assert_eq!(t.p_value(5, 100), 1.0);
    }

    #[test]
    #[should_panic(expected = "p must be a probability")]
    fn test_rejects_bad_p() {
        let _ = OneSidedBinomialTest::new(1.5, 0.05);
    }
}
