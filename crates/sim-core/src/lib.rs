//! # sim-core — deterministic simulation kernel for the Encore reproduction
//!
//! Every other crate in this workspace is built on top of this kernel. It
//! provides:
//!
//! * [`time`] — a simulated clock ([`SimTime`]) and duration type
//!   ([`SimDuration`]) with microsecond resolution. The library never reads
//!   the wall clock; all timing comes from the simulation.
//! * [`queue`] — a deterministic discrete-event queue ([`EventQueue`]):
//!   events that fire at the same instant are delivered in insertion order,
//!   so two runs with the same seed are byte-identical.
//! * [`merge`] — stable k-way merging of time-ordered streams, the
//!   primitive a sharded run's per-shard outputs (visit logs, rollup
//!   series) fold back through deterministically.
//! * [`rng`] — a seedable random-number source ([`SimRng`]) with labelled
//!   forking, so independent subsystems draw from independent streams and
//!   adding randomness to one subsystem never perturbs another.
//! * [`frame`] — the versioned, length-prefixed, CRC-checksummed binary
//!   frame codec ([`frame::read_frame`]) the distributed shard engine
//!   speaks over OS pipes; every malformation is a typed
//!   [`frame::FrameError`], never a panic or over-read.
//! * [`intern`] — dense string interning ([`Interner`]), so hot-path
//!   structures key on `u32` symbols instead of owned strings.
//! * [`dist`] — the handful of distributions the simulation needs
//!   (log-normal, Pareto, exponential, Zipf, empirical), implemented locally
//!   so the only external randomness dependency is `rand`'s core RNG.
//! * [`stats`] — descriptive statistics (CDFs, percentiles, box plots) and
//!   the one-sided binomial hypothesis test that Encore's inference engine
//!   (paper §7.2) is built on.
//! * [`trace`] — a lightweight, deterministic event trace in the smoltcp
//!   idiom: every interesting wire/browser event can be recorded and
//!   asserted on in tests.
//!
//! ## Determinism contract
//!
//! Given the same root seed, every simulation in this workspace produces the
//! same results, independent of platform, thread scheduling (everything is
//! single-threaded), or hash-map iteration order (we sort or use `BTreeMap`
//! at every decision point).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bytes;
pub mod dist;
pub mod frame;
pub mod intern;
pub mod merge;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use bytes::{contains_byte, find_any3, find_byte, find_either};
pub use dist::{Empirical, Exponential, LogNormal, Pareto, Zipf, ZipfError};
pub use frame::{
    decode_frame, encode_frame, read_frame, write_frame, Frame, FrameError, FRAME_HEADER_LEN,
    FRAME_MAGIC, FRAME_VERSION,
};
pub use intern::{FxBuildHasher, Interner, Sym};
pub use merge::merge_time_ordered;
pub use queue::EventQueue;
pub use rng::{seeded_hash, splitmix_mix, SimRng};
pub use stats::{binomial_sf, Cdf, FiveNumber, OneSidedBinomialTest, Summary};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent, TraceLevel};
