//! Simulated time.
//!
//! The simulation never consults the wall clock: every timestamp is a
//! [`SimTime`] (microseconds since simulation start) and every interval is a
//! [`SimDuration`]. Microsecond resolution is enough to express sub-RTT
//! effects (the paper's Figure 7 reasons about differences of tens of
//! milliseconds) while `u64` micros gives a range of ~584,000 years, far
//! beyond the seven months of measurements the paper covers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in microseconds from simulation
/// start (time zero).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Time elapsed since an earlier instant. Saturates to zero if `earlier`
    /// is actually later, which keeps callers robust against reordered
    /// bookkeeping without panicking mid-simulation.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from whole days (useful for the month-long §6.2 run and
    /// seven-month §7 run).
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 24 * 3_600 * 1_000_000)
    }

    /// Construct from floating-point milliseconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((ms * 1_000.0).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds as a float (exact).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (exact).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest
    /// microsecond. Used by latency jitter models.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        if !k.is_finite() || k <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.0 / 1_000;
        let (s, ms) = (total_ms / 1_000, total_ms % 1_000);
        let (m, s) = (s / 60, s % 60);
        let (h, m) = (m / 60, m % 60);
        write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{:.3}s", self.0 as f64 / 1_000_000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_days(1).as_secs(), 86_400);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(100) + SimDuration::from_millis(50);
        assert_eq!(t.as_millis(), 150);
        assert_eq!((t - SimTime::from_millis(100)).as_millis(), 50);
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert_eq!((early - late).as_micros(), 0);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early).as_millis(), 10);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!((d * 3).as_millis(), 300);
        assert_eq!((d / 4).as_millis(), 25);
        assert_eq!(d.mul_f64(0.5).as_millis(), 50);
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn from_millis_f64_clamps_and_rounds() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_millis_f64(f64::INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_micros(2_500).to_string(), "2.5ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert_eq!(SimTime::from_secs(3_661).to_string(), "01:01:01.000");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(1) < SimDuration::from_millis(1));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::from_micros(u64::MAX)
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
