//! Deterministic discrete-event queue.
//!
//! The queue orders events by firing time; ties break by insertion sequence
//! number, which makes the simulation fully deterministic (a plain binary
//! heap would deliver same-time events in an unspecified order).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry: min-ordering over (time, seq).
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap and we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event priority queue with deterministic tie-breaking.
///
/// Events scheduled for the same [`SimTime`] are delivered in the order they
/// were scheduled. The queue tracks the current simulation time: it advances
/// when events are popped and scheduling in the past is clamped to "now"
/// (mirroring how real event loops treat immediately-due work).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time (the firing time of the most recently
    /// popped event, or zero).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` to fire at absolute time `at`. Scheduling in the
    /// past clamps to the current time.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedule `event` to fire immediately (at the current time, after any
    /// other events already due now).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule(self.now, event);
    }

    /// Firing time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Drain and discard all pending events (the clock is left unchanged).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        q.pop();
        // Now at t=10s; schedule for t=1s must fire at t=10s, not rewind.
        q.schedule(SimTime::from_secs(1), "clamped");
        let (at, e) = q.pop().unwrap();
        assert_eq!(e, "clamped");
        assert_eq!(at, SimTime::from_secs(10));
    }

    #[test]
    fn schedule_now_runs_after_events_already_due() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, "first");
        q.schedule_now("second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 1u32);
        q.schedule(SimTime::from_millis(3), 3u32);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(q.now() + SimDuration::from_millis(1), 2u32);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
    }
}
