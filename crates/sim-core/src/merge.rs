//! Deterministic merging of time-ordered streams.
//!
//! A sharded world produces one time-ordered stream per shard (visit
//! logs, rollup series, replayed control schedules). Folding them back
//! into one stream must be independent of thread scheduling, so the
//! merge here is a *stable* k-way merge: output is ordered by the time
//! key, and entries with equal times keep the order of their source
//! streams (earlier stream first) and their order within a stream. The
//! binary form ([`merge_time_ordered`]) is associative as long as it is
//! folded left-to-right in stream order — the same discipline the
//! population crate's shard merges follow.

use crate::time::SimTime;

/// Stable two-way merge of two time-ordered streams by a time key.
///
/// Entries of `a` precede entries of `b` at equal times; within each
/// input, relative order is preserved. Folding shards left-to-right in
/// shard-index order therefore yields a global `(time, shard, intra
/// -shard order)` ordering, independent of how the inputs were grouped.
pub fn merge_time_ordered<T>(mut a: Vec<T>, b: Vec<T>, key: impl Fn(&T) -> SimTime) -> Vec<T> {
    // Ordered-append fast path: when all of `b` is at-or-after all of
    // `a` (every chunk of a shard's in-order stream lands here), the
    // stable merge degenerates to concatenation — same output, no walk
    // of `a`. This is what keeps the coordinator's per-chunk fold
    // linear in stream length rather than quadratic in chunk count.
    match (a.last(), b.first()) {
        (Some(last_a), Some(first_b)) if key(last_a) <= key(first_b) => {
            a.extend(b);
            return a;
        }
        (_, None) => return a,
        (None, _) => return b,
        _ => {}
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut b_iter = b.into_iter().peekable();
    for item in a {
        let t = key(&item);
        while let Some(next_b) = b_iter.peek() {
            if key(next_b) < t {
                out.push(b_iter.next().unwrap());
            } else {
                break;
            }
        }
        out.push(item);
    }
    out.extend(b_iter);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn merges_by_time() {
        let a = vec![(t(1), "a1"), (t(3), "a2")];
        let b = vec![(t(2), "b1"), (t(4), "b2")];
        let m = merge_time_ordered(a, b, |e| e.0);
        let names: Vec<&str> = m.iter().map(|e| e.1).collect();
        assert_eq!(names, vec!["a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn equal_times_keep_left_stream_first() {
        let a = vec![(t(5), "a1"), (t(5), "a2")];
        let b = vec![(t(5), "b1")];
        let m = merge_time_ordered(a, b, |e| e.0);
        let names: Vec<&str> = m.iter().map(|e| e.1).collect();
        assert_eq!(names, vec!["a1", "a2", "b1"]);
    }

    #[test]
    fn fold_in_stream_order_is_associative() {
        let a = vec![(t(1), 0u32), (t(4), 1)];
        let b = vec![(t(1), 10), (t(2), 11)];
        let c = vec![(t(1), 20), (t(9), 21)];
        let left = merge_time_ordered(
            merge_time_ordered(a.clone(), b.clone(), |e| e.0),
            c.clone(),
            |e| e.0,
        );
        let right = merge_time_ordered(a, merge_time_ordered(b, c, |e| e.0), |e| e.0);
        assert_eq!(left, right);
    }

    #[test]
    fn empty_sides_are_identity() {
        let a = vec![(t(1), 1)];
        assert_eq!(merge_time_ordered(a.clone(), Vec::new(), |e| e.0), a);
        assert_eq!(merge_time_ordered(Vec::new(), a.clone(), |e| e.0), a);
    }
}
