//! SWAR byte scanning for hot-path parsers.
//!
//! The simulator's visit hot path scans the same URL bytes several
//! times per request (host extraction, path dispatch, query parsing,
//! percent decoding). `Iterator::position` walks a byte at a time; the
//! helpers here examine eight bytes per iteration using the classic
//! "SIMD within a register" zero-byte trick, which cuts the scan cost
//! several-fold on the ~200-byte URLs the simulation moves around. No
//! platform SIMD, no `unsafe` — just word loads via `from_le_bytes`.

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// Bitmask with the high bit set in every byte of `w` that is zero.
#[inline]
fn zero_bytes(w: u64) -> u64 {
    w.wrapping_sub(LO) & !w & HI
}

/// Index of the first occurrence of `needle` in `haystack`.
#[inline]
pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    let pat = u64::from(needle) * LO;
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let w = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte window"));
        let hits = zero_bytes(w ^ pat);
        if hits != 0 {
            return Some(i + (hits.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    while i < haystack.len() {
        if haystack[i] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Index of the first occurrence of either `a` or `b` in `haystack`.
#[inline]
pub fn find_either(haystack: &[u8], a: u8, b: u8) -> Option<usize> {
    let pat_a = u64::from(a) * LO;
    let pat_b = u64::from(b) * LO;
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let w = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte window"));
        let hits = zero_bytes(w ^ pat_a) | zero_bytes(w ^ pat_b);
        if hits != 0 {
            return Some(i + (hits.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    while i < haystack.len() {
        if haystack[i] == a || haystack[i] == b {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Index of the first occurrence of `a`, `b`, or `c` in `haystack`.
#[inline]
pub fn find_any3(haystack: &[u8], a: u8, b: u8, c: u8) -> Option<usize> {
    let pat_a = u64::from(a) * LO;
    let pat_b = u64::from(b) * LO;
    let pat_c = u64::from(c) * LO;
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let w = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte window"));
        let hits = zero_bytes(w ^ pat_a) | zero_bytes(w ^ pat_b) | zero_bytes(w ^ pat_c);
        if hits != 0 {
            return Some(i + (hits.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    while i < haystack.len() {
        if haystack[i] == a || haystack[i] == b || haystack[i] == c {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Whether `haystack` contains `needle` at all.
#[inline]
pub fn contains_byte(haystack: &[u8], needle: u8) -> bool {
    find_byte(haystack, needle).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation.
    fn naive(h: &[u8], n: u8) -> Option<usize> {
        h.iter().position(|&b| b == n)
    }

    #[test]
    fn matches_naive_search_on_many_inputs() {
        // Exercise every alignment and position around the 8-byte
        // window boundaries, plus absent needles.
        for len in 0..40 {
            let hay: Vec<u8> = (0..len as u8).map(|i| i.wrapping_mul(37)).collect();
            for needle in 0..=255u8 {
                assert_eq!(
                    find_byte(&hay, needle),
                    naive(&hay, needle),
                    "len={len} needle={needle}"
                );
            }
        }
    }

    #[test]
    fn finds_first_of_repeated_needles() {
        let hay = b"a=1&b=2&c=3&d=4&e=5&f=6";
        assert_eq!(find_byte(hay, b'&'), Some(3));
        assert_eq!(find_byte(&hay[4..], b'&'), Some(3));
    }

    #[test]
    fn either_returns_earliest_of_both() {
        let hay = b"path/to?query&frag";
        assert_eq!(find_either(hay, b'?', b'&'), Some(7));
        assert_eq!(find_either(hay, b'&', b'?'), Some(7));
        assert_eq!(find_either(hay, b'&', b'z'), Some(13));
        assert_eq!(find_either(hay, b'z', b'!'), None);
        for len in 0..40 {
            let hay: Vec<u8> = (0..len as u8).map(|i| i.wrapping_mul(53)).collect();
            for (a, b) in [(0u8, 255u8), (7, 212), (106, 106)] {
                let expect = hay.iter().position(|&x| x == a || x == b);
                assert_eq!(find_either(&hay, a, b), expect, "len={len} a={a} b={b}");
            }
        }
    }

    #[test]
    fn any3_matches_naive() {
        let hay = b"http://host.example:8080/path?q#f";
        assert_eq!(find_any3(hay, b'/', b'?', b'#'), Some(5));
        assert_eq!(find_any3(&hay[7..], b'/', b'?', b'#'), Some(17));
        for len in 0..40 {
            let hay: Vec<u8> = (0..len as u8).map(|i| i.wrapping_mul(29)).collect();
            for (a, b, c) in [(0u8, 128u8, 255u8), (3, 87, 203), (29, 29, 58)] {
                let expect = hay.iter().position(|&x| x == a || x == b || x == c);
                assert_eq!(find_any3(&hay, a, b, c), expect, "len={len}");
            }
        }
    }

    #[test]
    fn contains_matches_find() {
        assert!(contains_byte(b"cmh-target=x", b'='));
        assert!(!contains_byte(b"cmh-target", b'='));
        assert!(!contains_byte(b"", b'='));
    }
}
