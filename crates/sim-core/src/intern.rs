//! String interning: dense `u32` symbols for hot-path name lookups.
//!
//! The simulator's hot path touches the same handful of host names
//! millions of times (every fetch resolves a host, consults caches keyed
//! by it, and tallies per-host statistics). Keying those structures by
//! owned `String`s means an allocation and an O(len) compare per touch;
//! interning maps each distinct name to a dense `u32` symbol once, after
//! which every lookup is an array index.
//!
//! Determinism: symbols are assigned in first-intern order, so two runs
//! that intern the same names in the same order agree on every id. The
//! reverse map is never iterated (only indexed), so the internal hash
//! map's iteration order cannot leak into simulation results.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Rotate-xor-multiply hash over 8-byte words (the rustc "Fx" scheme).
/// The interner's keys are host/URL/user-agent strings hashed on every
/// fetch and every submission; SipHash's per-call setup and
/// finalisation dominate at those lengths, and byte-at-a-time hashes
/// serialise on the multiply. One multiply per 8-byte word is
/// substantially cheaper than either. DoS resistance is irrelevant
/// here — keys come from the simulation itself, not from an adversary.
#[derive(Debug, Default)]
pub struct FxHasher(u64);

const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let word = u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes"));
            h = (h.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
        }
        for &b in chunks.remainder() {
            h = (h.rotate_left(5) ^ u64::from(b)).wrapping_mul(FX_SEED);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`-constructed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A dense symbol for an interned string. The numeric value is an index
/// into the interner's table, assigned in first-seen order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// The symbol as a table index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only string interner. Strings are interned exactly as given
/// (callers normalise case *before* interning when they need
/// case-insensitive identity).
#[derive(Debug, Default)]
pub struct Interner {
    ids: HashMap<Box<str>, Sym, FxBuildHasher>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// An empty interner with room for `cap` symbols before reallocating.
    pub fn with_capacity(cap: usize) -> Interner {
        Interner {
            ids: HashMap::with_capacity_and_hasher(cap, FxBuildHasher::default()),
            strings: Vec::with_capacity(cap),
        }
    }

    /// Intern `s`, returning its symbol. The first intern of a string
    /// allocates; every later intern of an equal string is a hash lookup
    /// with no allocation. Panics if the table would exceed `u32::MAX`
    /// symbols (unreachable in practice: symbols are host/URL names).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.ids.get(s) {
            return sym;
        }
        let id = u32::try_from(self.strings.len()).expect("interner capacity exceeded");
        let sym = Sym(id);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.ids.insert(boxed, sym);
        sym
    }

    /// Look up the symbol for `s` without interning it.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.ids.get(s).copied()
    }

    /// Resolve a symbol back to its string. Panics on a symbol from a
    /// different interner (index out of range).
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of interned strings (also the next symbol's value).
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_dense_and_stable() {
        let mut i = Interner::new();
        let a = i.intern("facebook.com");
        let b = i.intern("youtube.com");
        assert_eq!(a, Sym(0));
        assert_eq!(b, Sym(1));
        // Re-interning returns the original symbol.
        assert_eq!(i.intern("facebook.com"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn ids_are_deterministic_across_runs() {
        let run = || {
            let mut i = Interner::new();
            ["c.example", "a.example", "b.example", "a.example"]
                .iter()
                .map(|s| i.intern(s).0)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![0, 1, 2, 1]);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let names = ["x.example", "y.example", "z.example"];
        let syms: Vec<Sym> = names.iter().map(|s| i.intern(s)).collect();
        for (name, sym) in names.iter().zip(&syms) {
            assert_eq!(i.resolve(*sym), *name);
            assert_eq!(i.get(name), Some(*sym));
        }
        assert_eq!(i.get("never-interned"), None);
    }

    #[test]
    fn growth_past_initial_capacity_preserves_symbols() {
        let mut i = Interner::with_capacity(2);
        let early: Vec<Sym> = (0..2)
            .map(|n| i.intern(&format!("host{n}.example")))
            .collect();
        // Grow well past the initial capacity: rehashing must not disturb
        // existing symbols or their resolutions.
        for n in 2..100 {
            i.intern(&format!("host{n}.example"));
        }
        assert_eq!(i.len(), 100);
        assert_eq!(early, vec![Sym(0), Sym(1)]);
        assert_eq!(i.resolve(Sym(0)), "host0.example");
        assert_eq!(i.resolve(Sym(1)), "host1.example");
        assert_eq!(i.get("host99.example"), Some(Sym(99)));
    }

    #[test]
    fn interning_is_case_sensitive_by_design() {
        // Case folding is the caller's policy (DNS folds, URLs don't).
        let mut i = Interner::new();
        assert_ne!(i.intern("Example.COM"), i.intern("example.com"));
    }
}
