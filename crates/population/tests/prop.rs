//! Property tests for the population models.

use netsim::geo::World;
use population::{Audience, BatchConfig, BatchReport};
use proptest::prelude::*;
use sim_core::{SimDuration, SimRng};

/// A structurally arbitrary report, generated from a seed so the merge
/// laws are exercised over the whole counter space.
fn report_from(seed: u64) -> BatchReport {
    let mut rng = SimRng::new(seed);
    let mut draw = || rng.range_u64(0, 1 << 40);
    BatchReport {
        visits: draw(),
        origin_loads: draw(),
        visits_with_tasks: draw(),
        tasks_executed: draw(),
        results_delivered: draw(),
        clients_created: draw(),
        clients_reused: draw(),
        dns_cache_hits: draw(),
        connections_reused: draw(),
        session_fetches: draw(),
        sim_span: SimDuration::from_micros(draw()),
    }
}

proptest! {
    #[test]
    fn batch_report_merge_is_commutative(a in any::<u64>(), b in any::<u64>()) {
        let (ra, rb) = (report_from(a), report_from(b));
        prop_assert_eq!(ra.merge(&rb), rb.merge(&ra));
    }

    #[test]
    fn batch_report_merge_is_associative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (ra, rb, rc) = (report_from(a), report_from(b), report_from(c));
        let left = ra.merge(&rb).merge(&rc);
        let right = ra.merge(&rb.merge(&rc));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn batch_report_merge_identity_is_default(a in any::<u64>()) {
        let r = report_from(a);
        prop_assert_eq!(r.merge(&BatchReport::default()), r);
        prop_assert_eq!(BatchReport::default().merge(&r), r);
    }

    #[test]
    fn shard_partition_conserves_visits(visits in 0u64..100_000, shards in 1usize..32) {
        let total = BatchConfig { visits, ..BatchConfig::default() };
        let sum: u64 = (0..shards)
            .map(|i| population::shard::shard_batch_config(&total, shards, i).visits)
            .sum();
        prop_assert_eq!(sum, visits);
        // Earlier shards never carry less than later ones (remainder
        // goes to the front), and the split is as even as possible.
        let sizes: Vec<u64> = (0..shards)
            .map(|i| population::shard::shard_batch_config(&total, shards, i).visits)
            .collect();
        for w in sizes.windows(2) {
            prop_assert!(w[0] >= w[1] && w[0] - w[1] <= 1);
        }
    }

    #[test]
    fn rollup_series_merge_is_associative_and_commutative(
        a in proptest::collection::vec((0u64..40, 0u64..1_000, 0usize..1_000), 0..8),
        b in proptest::collection::vec((0u64..40, 0u64..1_000, 0usize..1_000), 0..8),
        c in proptest::collection::vec((0u64..40, 0u64..1_000, 0usize..1_000), 0..8),
    ) {
        use population::{merge_in_order, Merge, Rollup, RollupSeries};
        use sim_core::SimTime;
        // Sort each generated series by time (rollup series are always
        // time-ordered — they are recorded by a monotone event queue)
        // and deduplicate instants (one rollup fires per instant).
        let series = |mut v: Vec<(u64, u64, usize)>| {
            v.sort_by_key(|e| e.0);
            v.dedup_by_key(|e| e.0);
            RollupSeries(
                v.into_iter()
                    .map(|(t, visits, collected)| Rollup {
                        at: SimTime::from_secs(t),
                        visits,
                        collected,
                    })
                    .collect(),
            )
        };
        let (sa, sb, sc) = (series(a), series(b), series(c));
        let left = sa.clone().merge(sb.clone()).merge(sc.clone());
        let right = sa.clone().merge(sb.clone().merge(sc.clone()));
        prop_assert_eq!(&left, &right, "associativity");
        prop_assert_eq!(
            sa.clone().merge(sb.clone()),
            sb.clone().merge(sa.clone()),
            "commutativity"
        );
        prop_assert_eq!(sa.clone().merge(RollupSeries::default()), sa.clone(), "identity");
        prop_assert_eq!(
            merge_in_order([sa.clone(), sb, sc]).unwrap(),
            left,
            "merge_in_order is the same fold"
        );
    }

    #[test]
    fn shard_recipe_thins_arrivals_but_broadcasts_control(
        shards in 1usize..9,
        visits in 0u64..10_000,
    ) {
        use population::{shard_recipe, RunMode, WorldRecipe};
        use sim_core::SimTime;
        let timeline = censor::timeline::PolicyTimeline::new().at(
            SimTime::from_secs(100),
            censor::timeline::PolicyChange::Lift { name: "x".into() },
        );
        let recipe = WorldRecipe::batch(BatchConfig { visits, ..BatchConfig::default() })
            .with_timeline(timeline.clone())
            .with_rollups(SimDuration::from_secs(500))
            .with_maintenance(SimDuration::from_secs(700));
        let mut total = 0u64;
        for index in 0..shards {
            let sharded = shard_recipe(&recipe, shards, index);
            // Control half: broadcast verbatim.
            prop_assert_eq!(sharded.timeline(), &timeline);
            // Arrival half: thinned 1/N.
            match sharded.mode() {
                RunMode::Batch(cfg) => total += cfg.visits,
                RunMode::Deployment(_) => prop_assert!(false, "mode changed"),
            }
        }
        prop_assert_eq!(total, visits, "thinning must conserve the workload");
    }

    #[test]
    fn shard_deployment_config_conserves_aggregate_rate(
        shards in 1usize..17,
        rate_times_10 in 1u64..10_000,
    ) {
        let total = population::DeploymentConfig {
            visits_per_day_per_weight: rate_times_10 as f64 / 10.0,
            ..population::DeploymentConfig::default()
        };
        let per_shard: Vec<_> = (0..shards)
            .map(|i| population::shard::shard_deployment_config(&total, shards, i))
            .collect();
        let aggregate: f64 = per_shard.iter().map(|c| c.visits_per_day_per_weight).sum();
        prop_assert!(
            (aggregate - total.visits_per_day_per_weight).abs()
                < 1e-9 * total.visits_per_day_per_weight.max(1.0)
        );
        for c in &per_shard {
            prop_assert_eq!(c.duration, total.duration, "span is never divided");
        }
        // One shard is the serial config, bit for bit.
        prop_assert_eq!(
            population::shard::shard_deployment_config(&total, 1, 0),
            total
        );
    }

    #[test]
    fn shard_rng_streams_are_disjoint(seed in any::<u64>(), shards in 2usize..8) {
        let mut rngs = population::shard::shard_rngs(seed, shards);
        let mut firsts: Vec<u64> = rngs.iter_mut().map(|r| r.next_u64()).collect();
        firsts.sort_unstable();
        firsts.dedup();
        prop_assert_eq!(firsts.len(), shards);
    }

    #[test]
    fn dwell_samples_are_positive_and_bounded(seed in any::<u64>()) {
        let a = Audience::academic();
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let d = a.sample_dwell(&mut rng);
            prop_assert!(d > SimDuration::ZERO);
            // Nobody stays on an academic homepage for a week.
            prop_assert!(d < SimDuration::from_days(1), "dwell = {d}");
        }
    }

    #[test]
    fn visitors_always_come_from_known_countries(seed in any::<u64>()) {
        let world = World::with_long_tail(170);
        let a = Audience::world(&world);
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let v = a.sample(&mut rng);
            prop_assert!(world.get(v.country).is_some(), "unknown country {}", v.country);
        }
    }

    #[test]
    fn sampling_is_seed_deterministic(seed in any::<u64>()) {
        let a = Audience::academic();
        let mut r1 = SimRng::new(seed);
        let mut r2 = SimRng::new(seed);
        for _ in 0..20 {
            let v1 = a.sample(&mut r1);
            let v2 = a.sample(&mut r2);
            prop_assert_eq!(v1, v2);
        }
    }
}

/// Streaming fold-and-evict properties: a [`WindowedRollups`] window
/// must lose no information relative to keeping the whole series (its
/// fold plus the resident tail reconstructs the end-of-run fold
/// exactly, for every window size and stream length), and the summary
/// types the shards exchange must form commutative merge monoids.
mod streaming_fold_props {
    use super::*;
    use encore::streaming::DropCounters;
    use population::{Merge, Rollup, RollupFold, StreamSummary, WindowedRollups};
    use sim_core::SimTime;

    /// A structurally arbitrary time-ordered rollup series.
    fn series_from(seed: u64, len: usize) -> Vec<Rollup> {
        let mut rng = SimRng::new(seed);
        let mut at = 0u64;
        (0..len)
            .map(|_| {
                at += rng.range_u64(1, 10_000);
                Rollup {
                    at: SimTime::from_secs(at),
                    visits: rng.range_u64(0, 1 << 30),
                    collected: rng.range_u64(0, 1 << 30) as usize,
                }
            })
            .collect()
    }

    fn fold_from(seed: u64) -> RollupFold {
        let mut rng = SimRng::new(seed);
        let last = if rng.range_u64(0, 2) == 0 {
            None
        } else {
            Some(Rollup {
                at: SimTime::from_secs(rng.range_u64(0, 1 << 30)),
                visits: rng.range_u64(0, 1 << 30),
                collected: rng.range_u64(0, 1 << 30) as usize,
            })
        };
        RollupFold {
            points: rng.range_u64(0, 1 << 30),
            last,
        }
    }

    fn summary_from(seed: u64) -> StreamSummary {
        let mut rng = SimRng::new(seed);
        let mut draw = || rng.range_u64(0, 1 << 30);
        StreamSummary {
            window: draw(),
            evicted: fold_from(seed ^ 0xF01D),
            drops: DropCounters {
                queue_full: draw(),
                queue_full_congested: draw(),
                expired: draw(),
                duplicate: draw(),
            },
            accepted: draw(),
        }
    }

    proptest! {
        /// Folding-and-evicting as the stream advances equals folding
        /// everything at the end of the run, for any window size, and
        /// the resident set never outgrows the window.
        #[test]
        fn windowed_fold_and_evict_equals_end_of_run_fold(
            seed in any::<u64>(),
            len in 0usize..40,
            window in 1usize..9,
        ) {
            let all = series_from(seed, len);
            let mut windowed = WindowedRollups::new(window);
            for (i, r) in all.iter().enumerate() {
                windowed.push(*r);
                prop_assert!(windowed.resident_len() <= window);
                // No point is ever lost or double-counted mid-stream.
                prop_assert_eq!(
                    windowed.folded().points + windowed.resident_len() as u64,
                    i as u64 + 1
                );
            }
            let (tail, evicted) = windowed.into_parts();
            let mut reconstructed = evicted;
            for r in &tail.0 {
                reconstructed.absorb(*r);
            }
            prop_assert_eq!(reconstructed, RollupFold::of_series(&all));
        }

        /// RollupFold's merge is associative and commutative with the
        /// default as identity — shards may combine in any order.
        #[test]
        fn rollup_fold_merge_is_monoidal(
            a in any::<u64>(), b in any::<u64>(), c in any::<u64>(),
        ) {
            let (fa, fb, fc) = (fold_from(a), fold_from(b), fold_from(c));
            prop_assert_eq!(fa.merge(fb), fb.merge(fa), "commutativity");
            prop_assert_eq!(
                fa.merge(fb).merge(fc),
                fa.merge(fb.merge(fc)),
                "associativity"
            );
            prop_assert_eq!(fa.merge(RollupFold::default()), fa, "identity");
        }

        /// StreamSummary (the per-shard wire summary) merges as a
        /// commutative monoid too: drops and accepted add, the evicted
        /// fold merges, the window annotation takes the max.
        #[test]
        fn stream_summary_merge_is_monoidal(
            a in any::<u64>(), b in any::<u64>(), c in any::<u64>(),
        ) {
            let (sa, sb, sc) = (summary_from(a), summary_from(b), summary_from(c));
            prop_assert_eq!(sa.merge(sb), sb.merge(sa), "commutativity");
            prop_assert_eq!(
                sa.merge(sb).merge(sc),
                sa.merge(sb.merge(sc)),
                "associativity"
            );
            prop_assert_eq!(sa.merge(StreamSummary::default()), sa, "identity");
            let merged = sa.merge(sb);
            prop_assert_eq!(merged.accepted, sa.accepted + sb.accepted);
            prop_assert_eq!(merged.drops.total(), sa.drops.total() + sb.drops.total());
        }
    }
}

/// World-engine event-ordering properties: arbitrary interleavings of
/// scheduled configuration events with the arrival stream must neither
/// perturb the visit stream (when the events are behaviour-neutral) nor
/// break run-to-run determinism.
mod world_engine_props {
    use super::*;
    use encore::coordination::SchedulingStrategy;
    use encore::delivery::OriginSite;
    use encore::system::EncoreSystem;
    use encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
    use netsim::geo::country;
    use netsim::http::{ContentType, HttpResponse};
    use netsim::network::{ConstHandler, Network};
    use population::{DeploymentConfig, WorldEngine};
    use sim_core::SimTime;

    fn tiny_world() -> (Network, EncoreSystem) {
        let mut net = Network::ideal(World::builtin());
        net.add_server(
            "target.example",
            country("US"),
            Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
        );
        let tasks = vec![MeasurementTask {
            id: MeasurementId(0),
            spec: TaskSpec::Image {
                url: "http://target.example/favicon.ico".into(),
            },
        }];
        let sys = EncoreSystem::deploy(
            &mut net,
            tasks,
            SchedulingStrategy::RoundRobin,
            vec![OriginSite::academic("prof.example")],
            country("US"),
        );
        (net, sys)
    }

    fn two_days() -> DeploymentConfig {
        DeploymentConfig {
            duration: SimDuration::from_days(2),
            visits_per_day_per_weight: 20.0,
            ..DeploymentConfig::default()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        // Neutral events (no-op mutations, maintenance ticks, rollups) at
        // arbitrary instants — including instants colliding with arrivals
        // — leave the visit log byte-identical to an event-free run.
        #[test]
        fn interleaved_neutral_events_never_perturb_the_visit_stream(
            seed in any::<u64>(),
            mutation_secs in proptest::collection::vec(0u64..200_000, 0..6),
            tick_secs in 600u64..90_000,
        ) {
            let audience = Audience::academic();
            let bare = {
                let (mut net, mut sys) = tiny_world();
                let mut rng = SimRng::new(seed);
                WorldEngine::deployment(&mut net, &mut sys, &audience, &two_days(), &mut rng)
                    .run()
                    .log
            };
            let noisy = {
                let (mut net, mut sys) = tiny_world();
                let mut rng = SimRng::new(seed);
                let mut engine =
                    WorldEngine::deployment(&mut net, &mut sys, &audience, &two_days(), &mut rng);
                for &s in &mutation_secs {
                    engine.schedule_mutation(SimTime::from_secs(s), |_, _| {});
                }
                engine.schedule_maintenance(SimDuration::from_secs(tick_secs));
                engine.schedule_rollups(SimDuration::from_secs(tick_secs));
                engine.run().log
            };
            prop_assert_eq!(bare, noisy);
        }

        // A fixed seed plus a fixed event schedule reproduces the full
        // outcome — log, report, and rollups — run to run.
        #[test]
        fn engine_runs_are_reproducible_under_interleaving(
            seed in any::<u64>(),
            strategy_switch_secs in 0u64..200_000,
        ) {
            let audience = Audience::academic();
            let go = || {
                let (mut net, mut sys) = tiny_world();
                let mut rng = SimRng::new(seed);
                let mut engine =
                    WorldEngine::deployment(&mut net, &mut sys, &audience, &two_days(), &mut rng);
                engine.schedule_reprioritization(
                    SimTime::from_secs(strategy_switch_secs),
                    SchedulingStrategy::Random,
                );
                engine.schedule_rollups(SimDuration::from_secs(7_200));
                let out = engine.run();
                (out.log, out.report, out.rollups)
            };
            prop_assert_eq!(go(), go());
        }
    }
}
