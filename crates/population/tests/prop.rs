//! Property tests for the population models.

use netsim::geo::World;
use population::Audience;
use proptest::prelude::*;
use sim_core::{SimDuration, SimRng};

proptest! {
    #[test]
    fn dwell_samples_are_positive_and_bounded(seed in any::<u64>()) {
        let a = Audience::academic();
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let d = a.sample_dwell(&mut rng);
            prop_assert!(d > SimDuration::ZERO);
            // Nobody stays on an academic homepage for a week.
            prop_assert!(d < SimDuration::from_days(1), "dwell = {d}");
        }
    }

    #[test]
    fn visitors_always_come_from_known_countries(seed in any::<u64>()) {
        let world = World::with_long_tail(170);
        let a = Audience::world(&world);
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let v = a.sample(&mut rng);
            prop_assert!(world.get(v.country).is_some(), "unknown country {}", v.country);
        }
    }

    #[test]
    fn sampling_is_seed_deterministic(seed in any::<u64>()) {
        let a = Audience::academic();
        let mut r1 = SimRng::new(seed);
        let mut r2 = SimRng::new(seed);
        for _ in 0..20 {
            let v1 = a.sample(&mut r1);
            let v2 = a.sample(&mut r2);
            prop_assert_eq!(v1, v2);
        }
    }
}
