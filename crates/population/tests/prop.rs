//! Property tests for the population models.

use netsim::geo::World;
use population::{Audience, BatchConfig, BatchReport};
use proptest::prelude::*;
use sim_core::{SimDuration, SimRng};

/// A structurally arbitrary report, generated from a seed so the merge
/// laws are exercised over the whole counter space.
fn report_from(seed: u64) -> BatchReport {
    let mut rng = SimRng::new(seed);
    let mut draw = || rng.range_u64(0, 1 << 40);
    BatchReport {
        visits: draw(),
        origin_loads: draw(),
        visits_with_tasks: draw(),
        tasks_executed: draw(),
        results_delivered: draw(),
        clients_created: draw(),
        clients_reused: draw(),
        dns_cache_hits: draw(),
        connections_reused: draw(),
        session_fetches: draw(),
        sim_span: SimDuration::from_micros(draw()),
    }
}

proptest! {
    #[test]
    fn batch_report_merge_is_commutative(a in any::<u64>(), b in any::<u64>()) {
        let (ra, rb) = (report_from(a), report_from(b));
        prop_assert_eq!(ra.merge(&rb), rb.merge(&ra));
    }

    #[test]
    fn batch_report_merge_is_associative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (ra, rb, rc) = (report_from(a), report_from(b), report_from(c));
        let left = ra.merge(&rb).merge(&rc);
        let right = ra.merge(&rb.merge(&rc));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn batch_report_merge_identity_is_default(a in any::<u64>()) {
        let r = report_from(a);
        prop_assert_eq!(r.merge(&BatchReport::default()), r);
        prop_assert_eq!(BatchReport::default().merge(&r), r);
    }

    #[test]
    fn shard_partition_conserves_visits(visits in 0u64..100_000, shards in 1usize..32) {
        let total = BatchConfig { visits, ..BatchConfig::default() };
        let sum: u64 = (0..shards)
            .map(|i| population::shard::shard_batch_config(&total, shards, i).visits)
            .sum();
        prop_assert_eq!(sum, visits);
        // Earlier shards never carry less than later ones (remainder
        // goes to the front), and the split is as even as possible.
        let sizes: Vec<u64> = (0..shards)
            .map(|i| population::shard::shard_batch_config(&total, shards, i).visits)
            .collect();
        for w in sizes.windows(2) {
            prop_assert!(w[0] >= w[1] && w[0] - w[1] <= 1);
        }
    }

    #[test]
    fn shard_rng_streams_are_disjoint(seed in any::<u64>(), shards in 2usize..8) {
        let mut rngs = population::shard::shard_rngs(seed, shards);
        let mut firsts: Vec<u64> = rngs.iter_mut().map(|r| r.next_u64()).collect();
        firsts.sort_unstable();
        firsts.dedup();
        prop_assert_eq!(firsts.len(), shards);
    }

    #[test]
    fn dwell_samples_are_positive_and_bounded(seed in any::<u64>()) {
        let a = Audience::academic();
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let d = a.sample_dwell(&mut rng);
            prop_assert!(d > SimDuration::ZERO);
            // Nobody stays on an academic homepage for a week.
            prop_assert!(d < SimDuration::from_days(1), "dwell = {d}");
        }
    }

    #[test]
    fn visitors_always_come_from_known_countries(seed in any::<u64>()) {
        let world = World::with_long_tail(170);
        let a = Audience::world(&world);
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let v = a.sample(&mut rng);
            prop_assert!(world.get(v.country).is_some(), "unknown country {}", v.country);
        }
    }

    #[test]
    fn sampling_is_seed_deterministic(seed in any::<u64>()) {
        let a = Audience::academic();
        let mut r1 = SimRng::new(seed);
        let mut r2 = SimRng::new(seed);
        for _ in 0..20 {
            let v1 = a.sample(&mut r1);
            let v2 = a.sample(&mut r2);
            prop_assert_eq!(v1, v2);
        }
    }
}
