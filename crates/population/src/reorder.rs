//! Canonical reorder buffer: fold indexed shard outputs **in arrival
//! order** while producing exactly the shard-index-order merge.
//!
//! The sharded coordinator used to collect every shard's output into a
//! `Vec` and fold at the end — O(shards × outcome) resident state. The
//! reorder buffer makes the streaming merge real: each output is folded
//! the moment it arrives. Because the [`Merge`] path is associative
//! (property-tested here and enforced over generated worlds by
//! simcheck's merge-algebra oracle), adjacent index runs can be
//! compacted eagerly — output 3 arriving after 2 folds into the `2..=3`
//! run immediately, without waiting for 0 and 1. Resident state is one
//! folded aggregate **per discontiguous run**, not one per shard: in the
//! common case (roughly index-ordered completion) that is O(1), and it
//! is bounded by ⌈shards/2⌉ even under adversarial arrival order.
//!
//! The invariant, property-tested below over arbitrary arrival
//! permutations: [`ReorderBuffer::finish`] returns exactly
//! `merge_in_order([v₀, v₁, …, vₙ₋₁])` — the shard-index-order fold —
//! no matter the order in which `accept` saw the values.

use crate::analytics::Merge;
use std::collections::BTreeMap;

/// An arrival-order folding buffer over `expected` indexed values.
#[derive(Debug)]
pub struct ReorderBuffer<T> {
    expected: usize,
    accepted: usize,
    /// Discontiguous runs: start index → (length, fold of that run).
    runs: BTreeMap<usize, (usize, T)>,
    peak_runs: usize,
}

impl<T: Merge> ReorderBuffer<T> {
    /// A buffer expecting values for indices `0..expected`.
    ///
    /// # Panics
    ///
    /// Panics if `expected` is zero — an empty merge has no identity
    /// element in the [`Merge`] algebra.
    pub fn new(expected: usize) -> ReorderBuffer<T> {
        assert!(expected >= 1, "reorder buffer needs at least one slot");
        ReorderBuffer {
            expected,
            accepted: 0,
            runs: BTreeMap::new(),
            peak_runs: 0,
        }
    }

    /// Fold in the value for `index`, compacting with any adjacent run
    /// on either side.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range or duplicate index — both are
    /// coordinator bugs, not data conditions.
    pub fn accept(&mut self, index: usize, value: T) {
        assert!(
            index < self.expected,
            "index {index} out of range 0..{}",
            self.expected
        );
        // Find the run covering or preceding `index` to detect overlap
        // and left-adjacency in one lookup.
        let left = self
            .runs
            .range(..=index)
            .next_back()
            .map(|(&start, &(len, _))| (start, len));
        if let Some((start, len)) = left {
            assert!(
                start + len <= index,
                "duplicate shard output for index {index}"
            );
        }

        let (start, mut folded) = match left {
            // Left run ends exactly at `index`: extend it rightward.
            Some((start, len)) if start + len == index => {
                let (_, run) = self.runs.remove(&start).expect("run exists");
                (start, run.merge(value))
            }
            _ => (index, value),
        };
        let mut len = index - start + 1;

        // Right-adjacent run starts exactly where the grown run ends.
        if let Some((right_len, right)) = self.runs.remove(&(start + len)) {
            folded = folded.merge(right);
            len += right_len;
        }

        self.runs.insert(start, (len, folded));
        self.accepted += 1;
        self.peak_runs = self.peak_runs.max(self.runs.len());
    }

    /// Number of values folded in so far.
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// Discontiguous runs currently resident — the buffer's live memory
    /// in units of folded aggregates.
    pub fn pending_runs(&self) -> usize {
        self.runs.len()
    }

    /// The largest number of runs ever simultaneously resident — the
    /// peak-memory figure `transport_scale` asserts on.
    pub fn peak_runs(&self) -> usize {
        self.peak_runs
    }

    /// Consume the buffer and return the index-order fold.
    ///
    /// Returns `None` unless every one of the `expected` indices was
    /// accepted (a shard died or the coordinator lost an output).
    pub fn finish(mut self) -> Option<T> {
        if self.accepted != self.expected {
            return None;
        }
        let (start, (len, folded)) = self.runs.pop_first()?;
        debug_assert_eq!((start, len), (0, self.expected), "runs not compacted");
        Some(folded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::merge_in_order;
    use proptest::prelude::*;

    /// Concatenation — associative but *not* commutative, so any
    /// ordering mistake in the buffer shows up as a reordered vector.
    impl Merge for Vec<u32> {
        fn merge(mut self, other: Vec<u32>) -> Vec<u32> {
            self.extend(other);
            self
        }
    }

    fn fold_permutation(n: usize, order: &[usize]) -> (Vec<u32>, usize) {
        let mut buf: ReorderBuffer<Vec<u32>> = ReorderBuffer::new(n);
        for &i in order {
            buf.accept(i, vec![i as u32]);
        }
        let peak = buf.peak_runs();
        (buf.finish().expect("all indices accepted"), peak)
    }

    #[test]
    fn in_order_arrival_is_single_run() {
        let (folded, peak) = fold_permutation(5, &[0, 1, 2, 3, 4]);
        assert_eq!(folded, vec![0, 1, 2, 3, 4]);
        assert_eq!(peak, 1, "ordered arrival must compact eagerly");
    }

    #[test]
    fn reverse_arrival_still_index_order() {
        let (folded, peak) = fold_permutation(5, &[4, 3, 2, 1, 0]);
        assert_eq!(folded, vec![0, 1, 2, 3, 4]);
        // Reverse order keeps exactly one (growing) run resident plus
        // nothing else: 4 | 3..=4 | 2..=4 | ...
        assert_eq!(peak, 1);
    }

    #[test]
    fn alternating_arrival_bounded_by_half() {
        let (folded, peak) = fold_permutation(8, &[0, 2, 4, 6, 1, 3, 5, 7]);
        assert_eq!(folded, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(peak <= 4, "adversarial order exceeded ⌈n/2⌉ runs: {peak}");
    }

    #[test]
    fn incomplete_buffer_refuses_to_finish() {
        let mut buf: ReorderBuffer<Vec<u32>> = ReorderBuffer::new(3);
        buf.accept(0, vec![0]);
        buf.accept(2, vec![2]);
        assert_eq!(buf.accepted(), 2);
        assert_eq!(buf.pending_runs(), 2);
        assert_eq!(buf.finish(), None);
    }

    #[test]
    #[should_panic(expected = "duplicate shard output")]
    fn duplicate_index_panics() {
        let mut buf: ReorderBuffer<Vec<u32>> = ReorderBuffer::new(2);
        buf.accept(1, vec![1]);
        buf.accept(1, vec![1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let mut buf: ReorderBuffer<Vec<u32>> = ReorderBuffer::new(2);
        buf.accept(2, vec![2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The satellite guarantee: any arrival permutation folds to
        /// exactly the shard-index-order merge, and resident runs never
        /// exceed ⌈n/2⌉.
        #[test]
        fn arbitrary_permutations_match_index_order_fold(
            n in 1usize..24,
            shuffle_seed in 0u64..u64::MAX,
        ) {
            let mut order: Vec<usize> = (0..n).collect();
            // Deterministic Fisher-Yates from the seed.
            let mut state = shuffle_seed | 1;
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                order.swap(i, j);
            }
            let (folded, peak) = fold_permutation(n, &order);
            let expected =
                merge_in_order((0..n).map(|i| vec![i as u32])).expect("non-empty");
            prop_assert_eq!(folded, expected);
            prop_assert!(peak <= n.div_ceil(2), "peak {} > {}", peak, n.div_ceil(2));
        }
    }
}
