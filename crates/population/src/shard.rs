//! Sharded multi-core population engine.
//!
//! One [`crate::world::WorldRecipe`] — arrivals *plus* the full control
//! plane of a longitudinal run (policy timelines, mutations,
//! re-prioritisations, maintenance, rollups) — executes across N OS
//! threads the way large discrete-event simulators parallelise:
//! **control events are broadcast** verbatim to every shard
//! ([`shard_recipe`]), **workload events are partitioned** 1/N
//! ([`shard_batch_config`] / [`shard_deployment_config`]), and per-shard
//! outputs **merge deterministically** in shard order through the
//! associative [`crate::analytics::Merge`] path. [`run_sharded_world`]
//! is the general entry point; [`run_sharded_batch`] is the flat-batch
//! wrapper over it. Each shard thread runs its own private world engine
//! with
//!
//! * an **independent deterministic RNG stream** ([`SimRng::split`]:
//!   disjoint 2^192-draw blocks *and* a re-keyed fork namespace, with
//!   shard 0 reproducing the serial stream exactly),
//! * a **private `Network` + `EncoreSystem`** built from a shared,
//!   `Send + Sync` scenario via the caller's builder (nothing
//!   thread-unsafe ever crosses a thread boundary — each shard's striped
//!   [`netsim::ip::IpAllocator`] keeps its address space disjoint from
//!   every sibling's), and
//! * a **thinned Poisson arrival process**: shard *i* of *N* runs 1/N of
//!   the visits at N× the inter-arrival gap. Superposing N independent
//!   Poisson processes of rate λ/N yields a Poisson process of rate λ,
//!   so the sharded population is statistically the serial population —
//!   and at N = 1 it is *bitwise* the serial population.
//!
//! Afterwards the per-shard outputs merge through associative APIs
//! ([`BatchReport::merge`], [`CollectionSnapshot::merge`],
//! [`GeoDb::merge`]) in shard-index order, so the merged run is
//! byte-stable regardless of thread scheduling, and the §7.2 detector
//! runs once over the union.

use crate::analytics::Merge;
use crate::audience::Audience;
use crate::batch::{BatchConfig, BatchReport};
use crate::driver::DeploymentConfig;
use crate::reorder::ReorderBuffer;
use crate::world::{RunMode, WorldEngine, WorldOutcome, WorldRecipe};
use encore::collection::CollectionSnapshot;
use encore::geo::GeoDb;
use encore::system::EncoreSystem;
use netsim::network::Network;
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimRng};
use std::sync::mpsc;
use std::thread;

/// Which slice of a sharded run a builder is materialising.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardContext {
    /// This shard's index, `0..shards`.
    pub index: usize,
    /// Total shard count.
    pub shards: usize,
}

/// Configuration of a sharded batch run: the *total* workload, which the
/// engine partitions across shards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardedBatchConfig {
    /// Number of shards (OS threads). Must be at least 1.
    pub shards: usize,
    /// The total batch: visits and pool size are divided across shards;
    /// the arrival gap is multiplied by the shard count (Poisson
    /// thinning), so the union covers the same simulated span at the
    /// same aggregate rate as a serial run of this config.
    pub batch: BatchConfig,
}

/// The merged outcome of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// Union of all shard reports ([`BatchReport::merge`]).
    pub report: BatchReport,
    /// Per-shard reports, in shard-index order.
    pub per_shard: Vec<BatchReport>,
    /// Union of all shard collection stores, in canonical order.
    pub collection: CollectionSnapshot,
    /// Union of all shard GeoIP databases (disjoint striped ranges).
    pub geo: GeoDb,
}

/// The batch configuration shard `index` of `shards` actually runs:
/// `1/shards` of the visits (earlier shards take the remainder), the
/// arrival gap scaled by `shards` (Poisson thinning), and a
/// proportionally divided client pool. With `shards == 1` this is the
/// input config unchanged — the lockstep guarantee.
pub fn shard_batch_config(total: &BatchConfig, shards: usize, index: usize) -> BatchConfig {
    assert!(shards >= 1, "shard count must be at least 1");
    assert!(
        index < shards,
        "shard index {index} out of range 0..{shards}"
    );
    if shards == 1 {
        // Bitwise lockstep with the serial driver: not even a float
        // round-trip on the gap, not even a clamped pool size.
        return *total;
    }
    let base = total.visits / shards as u64;
    let remainder = total.visits % shards as u64;
    let visits = base + u64::from((index as u64) < remainder);
    let mean_gap = SimDuration::from_millis_f64(total.mean_gap.as_millis_f64() * shards as f64);
    BatchConfig {
        visits,
        mean_gap,
        repeat_visitor_rate: total.repeat_visitor_rate,
        client_pool: total.client_pool.div_ceil(shards),
    }
}

/// The deployment configuration shard `index` of `shards` actually runs:
/// the Poisson arrival *rate* divides by the shard count (thinning — the
/// per-origin gap distribution stretches by N, and superposing the N
/// thinned streams reproduces the aggregate rate), the span is
/// unchanged, and the returning-visitor pool divides proportionally.
/// With `shards == 1` this is the input config unchanged — the lockstep
/// guarantee.
pub fn shard_deployment_config(
    total: &DeploymentConfig,
    shards: usize,
    index: usize,
) -> DeploymentConfig {
    assert!(shards >= 1, "shard count must be at least 1");
    assert!(
        index < shards,
        "shard index {index} out of range 0..{shards}"
    );
    if shards == 1 {
        // Bitwise lockstep with the serial engine: not even a float
        // round-trip on the rate.
        return *total;
    }
    DeploymentConfig {
        duration: total.duration,
        visits_per_day_per_weight: total.visits_per_day_per_weight / shards as f64,
        repeat_visitor_rate: total.repeat_visitor_rate,
        returning_pool: total.returning_pool.div_ceil(shards),
    }
}

/// The recipe shard `index` of `shards` actually executes: **control
/// events broadcast verbatim** (the policy timeline, shared mutations,
/// re-prioritisations, maintenance and rollup cadences are byte-for-byte
/// the caller's — every shard replays the identical control schedule
/// against its own private world), while the **arrival process thins
/// 1/N** ([`shard_batch_config`] / [`shard_deployment_config`]). At
/// `shards == 1` the recipe is returned unchanged, so a one-shard
/// sharded run replays the serial engine exactly.
pub fn shard_recipe(recipe: &WorldRecipe, shards: usize, index: usize) -> WorldRecipe {
    let mut sharded = recipe.clone();
    sharded.mode = match recipe.mode {
        RunMode::Deployment(config) => {
            RunMode::Deployment(shard_deployment_config(&config, shards, index))
        }
        RunMode::Batch(config) => RunMode::Batch(shard_batch_config(&config, shards, index)),
    };
    sharded
}

/// Derive the per-shard RNG streams from a root seed. Stream 0 is an
/// exact snapshot of `SimRng::new(seed)` (so a one-shard run replays the
/// serial run); streams 1..N occupy disjoint long-jump blocks with
/// re-keyed fork namespaces.
pub fn shard_rngs(seed: u64, shards: usize) -> Vec<SimRng> {
    let mut root = SimRng::new(seed);
    (0..shards).map(|_| root.split()).collect()
}

/// One shard's thread-portable output.
pub(crate) struct ShardOutput {
    pub(crate) outcome: WorldOutcome,
    pub(crate) collection: CollectionSnapshot,
    pub(crate) geo: GeoDb,
}

impl Merge for ShardOutput {
    /// Piecewise fold through each component's associative merge, so a
    /// whole shard output can ride the streaming reorder buffer.
    fn merge(self, other: ShardOutput) -> ShardOutput {
        ShardOutput {
            outcome: self.outcome.merge(other.outcome),
            collection: Merge::merge(self.collection, other.collection),
            geo: Merge::merge(self.geo, other.geo),
        }
    }
}

/// The merged outcome of a sharded world run.
#[derive(Debug, Clone)]
pub struct ShardedWorldRun {
    /// The merged world outcome: union report, time-interleaved visit
    /// log, pointwise-summed rollup series, control-plane policy count.
    pub outcome: WorldOutcome,
    /// Per-shard reports, in shard-index order.
    pub per_shard: Vec<BatchReport>,
    /// Union of all shard collection stores, in canonical order.
    pub collection: CollectionSnapshot,
    /// Union of all shard GeoIP databases (disjoint striped ranges).
    pub geo: GeoDb,
}

/// Execute one [`WorldRecipe`] across `shards` OS threads — the
/// longitudinal, event-driven counterpart of [`run_sharded_batch`], and
/// the engine both drivers now share.
///
/// `build` is called once per shard, *on that shard's thread*, and must
/// return a freshly built `Network` + deployed `EncoreSystem` for the
/// given [`ShardContext`] — typically via
/// [`netsim::scenario::NetworkScenario::build_shard`] (or
/// [`netsim::scenario::WorldScenario::build_shard`] for worlds with
/// pre-installed middleboxes) plus `EncoreSystem::deploy`. The builder
/// must be deterministic in the context: building the same shard twice
/// must yield identical deployments.
///
/// Each shard runs [`WorldEngine::from_recipe`] over
/// [`shard_recipe`]\(recipe, shards, index\): control events (policy
/// changes, mutations, re-prioritisations, maintenance, rollups) are
/// **broadcast** verbatim to every shard, arrival events are **thinned**
/// 1/N, and the per-shard RNG streams come from [`shard_rngs`]
/// (`SimRng::split` / `long_jump`, shard 0 reproducing the serial stream
/// exactly). Per-shard outcomes then merge **in shard-index order**
/// through the associative [`crate::analytics::Merge`] path, so the
/// result is deterministic in `(seed, recipe, shards, scenario)` no
/// matter how the threads were scheduled — and at `shards == 1` it is
/// byte-identical to `WorldEngine::from_recipe(..).run()` on the same
/// recipe (`tests/world_shard_equivalence.rs`).
pub fn run_sharded_world<F>(
    build: &F,
    audience: &Audience,
    recipe: &WorldRecipe,
    shards: usize,
    seed: u64,
) -> ShardedWorldRun
where
    F: Fn(ShardContext) -> (Network, EncoreSystem) + Sync,
{
    assert!(shards >= 1, "shard count must be at least 1");
    let rngs = shard_rngs(seed, shards);

    // Streaming merge: shard outputs fold in *arrival* order through a
    // canonical reorder buffer on this (coordinator) thread, so resident
    // state is one folded aggregate per discontiguous completion run —
    // O(1) in the common case — instead of one buffered output per
    // shard. Associativity of the `Merge` path (simcheck's merge-algebra
    // oracle; `reorder` property tests) guarantees the result is exactly
    // the shard-index-order fold the old collect-then-merge path
    // computed.
    let (tx, rx) = mpsc::channel::<(usize, ShardOutput)>();
    let (merged, mut per_shard) = thread::scope(|scope| {
        for (index, mut rng) in rngs.into_iter().enumerate() {
            let tx = tx.clone();
            scope.spawn(move || {
                let ctx = ShardContext { index, shards };
                let (mut net, mut sys) = build(ctx);
                let shard_cfg = shard_recipe(recipe, shards, index);
                let outcome =
                    WorldEngine::from_recipe(&mut net, &mut sys, audience, &shard_cfg, &mut rng)
                        .run();
                let output = ShardOutput {
                    outcome,
                    collection: sys.collection.snapshot(),
                    geo: GeoDb::from_allocator(&net.allocator),
                };
                // A disconnected receiver means the coordinator already
                // gave up (a sibling panicked); nothing left to report.
                let _ = tx.send((index, output));
            });
        }
        drop(tx);

        let mut buffer: ReorderBuffer<ShardOutput> = ReorderBuffer::new(shards);
        let mut per_shard: Vec<(usize, BatchReport)> = Vec::with_capacity(shards);
        for (index, output) in rx {
            per_shard.push((index, output.outcome.report));
            buffer.accept(index, output);
        }
        (buffer.finish(), per_shard)
    });
    // A missing output means a shard thread panicked before sending;
    // `thread::scope` re-raises that panic on join, so this expect is
    // only reachable on a double-fault — keep the old message for it.
    let merged = merged.expect("shard thread panicked");

    per_shard.sort_by_key(|&(index, _)| index);
    ShardedWorldRun {
        outcome: merged.outcome,
        per_shard: per_shard.into_iter().map(|(_, report)| report).collect(),
        collection: merged.collection,
        geo: merged.geo,
    }
}

/// Run `config.batch` visits against the scenario, partitioned across
/// `config.shards` OS threads.
///
/// Since the sharded-world refactor this is a thin wrapper over
/// [`run_sharded_world`] with a control-free batch recipe — one engine,
/// two entry points. The output is bit-identical to the pre-refactor
/// runner (the golden merged-report snapshot in
/// `tests/shard_equivalence.rs` pins this).
pub fn run_sharded_batch<F>(
    build: &F,
    audience: &Audience,
    config: &ShardedBatchConfig,
    seed: u64,
) -> ShardedRun
where
    F: Fn(ShardContext) -> (Network, EncoreSystem) + Sync,
{
    let recipe = WorldRecipe::batch(config.batch);
    let run = run_sharded_world(build, audience, &recipe, config.shards, seed);
    ShardedRun {
        report: run.outcome.report,
        per_shard: run.per_shard,
        collection: run.collection,
        geo: run.geo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore::coordination::SchedulingStrategy;
    use encore::delivery::OriginSite;
    use encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
    use netsim::geo::country;
    use netsim::http::{ContentType, HttpResponse};
    use netsim::scenario::{NetworkScenario, WorldSpec};

    fn scenario() -> NetworkScenario {
        NetworkScenario::new(WorldSpec::Builtin)
            .with_ideal_paths()
            .with_server(
                "target.example",
                country("US"),
                HttpResponse::ok(ContentType::Image, 400),
            )
    }

    fn build(ctx: ShardContext) -> (Network, EncoreSystem) {
        let mut net = scenario().build_shard(ctx.index, ctx.shards);
        let tasks = vec![MeasurementTask {
            id: MeasurementId(0),
            spec: TaskSpec::Image {
                url: "http://target.example/favicon.ico".into(),
            },
        }];
        let sys = EncoreSystem::deploy(
            &mut net,
            tasks,
            SchedulingStrategy::RoundRobin,
            vec![OriginSite::academic("prof.example")],
            country("US"),
        );
        (net, sys)
    }

    #[test]
    fn visits_partition_exactly() {
        let total = BatchConfig {
            visits: 10,
            ..BatchConfig::default()
        };
        for shards in [1usize, 2, 3, 7, 10, 11] {
            let sum: u64 = (0..shards)
                .map(|i| shard_batch_config(&total, shards, i).visits)
                .sum();
            assert_eq!(sum, 10, "visits lost at {shards} shards");
        }
    }

    #[test]
    fn one_shard_config_is_the_serial_config() {
        let total = BatchConfig::default();
        assert_eq!(shard_batch_config(&total, 1, 0), total);
        // Including degenerate configs — a zero pool must stay zero, or
        // the 1-shard RNG stream diverges from the serial driver's.
        let no_pool = BatchConfig {
            client_pool: 0,
            ..BatchConfig::default()
        };
        assert_eq!(shard_batch_config(&no_pool, 1, 0), no_pool);
        assert_eq!(shard_batch_config(&no_pool, 4, 2).client_pool, 0);
    }

    #[test]
    fn gap_scales_with_shard_count() {
        let total = BatchConfig::default();
        let two = shard_batch_config(&total, 2, 0);
        assert_eq!(
            two.mean_gap.as_millis_f64(),
            total.mean_gap.as_millis_f64() * 2.0
        );
    }

    #[test]
    fn sharded_run_produces_merged_measurements() {
        let config = ShardedBatchConfig {
            shards: 2,
            batch: BatchConfig {
                visits: 1_000,
                ..BatchConfig::default()
            },
        };
        let run = run_sharded_batch(&build, &Audience::academic(), &config, 0x5A4D);
        assert_eq!(run.report.visits, 1_000);
        assert_eq!(run.per_shard.len(), 2);
        assert_eq!(run.per_shard[0].visits, 500);
        assert_eq!(run.per_shard[1].visits, 500);
        assert!(run.report.results_delivered > 100, "{:?}", run.report);
        assert!(!run.collection.is_empty());
        // Every record geolocates through the merged striped database.
        let located = run
            .collection
            .records
            .iter()
            .filter(|r| run.geo.lookup(r.client_ip).is_some())
            .count();
        assert_eq!(located, run.collection.len());
    }

    #[test]
    fn sharded_run_is_reproducible() {
        let config = ShardedBatchConfig {
            shards: 3,
            batch: BatchConfig {
                visits: 300,
                ..BatchConfig::default()
            },
        };
        let go = || run_sharded_batch(&build, &Audience::academic(), &config, 77);
        let (a, b) = (go(), go());
        assert_eq!(a.report, b.report);
        assert_eq!(a.collection, b.collection);
        assert_eq!(a.per_shard, b.per_shard);
    }

    #[test]
    fn shards_see_different_streams() {
        let config = ShardedBatchConfig {
            shards: 2,
            batch: BatchConfig {
                visits: 400,
                ..BatchConfig::default()
            },
        };
        let run = run_sharded_batch(&build, &Audience::academic(), &config, 3);
        assert_ne!(
            run.per_shard[0], run.per_shard[1],
            "shards replayed the same stream"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_shards_rejected() {
        let config = ShardedBatchConfig {
            shards: 0,
            batch: BatchConfig::default(),
        };
        let _ = run_sharded_batch(&build, &Audience::academic(), &config, 1);
    }
}
