//! The deployment driver: Poisson visit arrivals over simulated months.
//!
//! Each arrival samples a visitor from the origin's audience, creates a
//! browser client at that vantage point, and runs the full Figure 2 visit
//! flow. The driver is how the §6.2 pilot (one academic page, one month)
//! and the §7 study (many origins, seven months, 141,626 measurements)
//! are both expressed.

use crate::audience::Audience;
use crate::world::WorldEngine;
use encore::system::{EncoreSystem, VisitOutcome};
use netsim::geo::CountryCode;
use netsim::network::Network;
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimRng, SimTime};

/// Driver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// Simulated time span.
    pub duration: SimDuration,
    /// Mean visits per day per unit of origin popularity weight.
    pub visits_per_day_per_weight: f64,
    /// Probability a visit comes from a returning client (same IP, warm
    /// cache) rather than a fresh one.
    pub repeat_visitor_rate: f64,
    /// Cap on retained returning clients (bounds memory).
    pub returning_pool: usize,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            duration: SimDuration::from_days(28),
            visits_per_day_per_weight: 40.0,
            repeat_visitor_rate: 0.2,
            returning_pool: 256,
        }
    }
}

/// One visit's record (the driver's analogue of a Google-Analytics row
/// plus Encore's own outcome).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisitRecord {
    /// Arrival time.
    pub at: SimTime,
    /// Which origin was visited (index into the system's origin list).
    pub origin_index: usize,
    /// Visitor country (ground truth, for analytics — the *detector*
    /// only ever sees GeoIP'd addresses).
    pub country: CountryCode,
    /// Dwell time.
    pub dwell: SimDuration,
    /// Automated traffic?
    pub is_crawler: bool,
    /// What Encore observed during the visit.
    pub outcome: VisitOutcome,
}

/// Run a deployment: Poisson arrivals at every origin site over the
/// configured span. Returns the visit log (chronological).
///
/// This is a thin wrapper over the event engine: every arrival is a
/// [`crate::world::WorldEvent::DeploymentArrival`] on the world's
/// queue, and the output is bit-identical to the pre-engine driver for
/// any fixed seed (`tests/world_engine_equivalence.rs`). Construct the
/// [`WorldEngine`] directly to add scheduled censorship dynamics or
/// other world mutations to the same run.
pub fn run_deployment(
    net: &mut Network,
    system: &mut EncoreSystem,
    audience: &Audience,
    config: &DeploymentConfig,
    rng: &mut SimRng,
) -> Vec<VisitRecord> {
    WorldEngine::deployment(net, system, audience, config, rng)
        .run()
        .log
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore::coordination::SchedulingStrategy;
    use encore::delivery::OriginSite;
    use encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
    use netsim::geo::{country, World};
    use netsim::http::{ContentType, HttpResponse};
    use netsim::network::ConstHandler;

    fn small_deployment() -> (Network, EncoreSystem) {
        let mut net = Network::ideal(World::builtin());
        net.add_server(
            "target.example",
            country("US"),
            Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
        );
        let tasks = vec![MeasurementTask {
            id: MeasurementId(0),
            spec: TaskSpec::Image {
                url: "http://target.example/favicon.ico".into(),
            },
        }];
        let origin = OriginSite::academic("prof.example");
        let sys = EncoreSystem::deploy(
            &mut net,
            tasks,
            SchedulingStrategy::RoundRobin,
            vec![origin],
            country("US"),
        );
        (net, sys)
    }

    fn week_config() -> DeploymentConfig {
        DeploymentConfig {
            duration: SimDuration::from_days(7),
            visits_per_day_per_weight: 30.0,
            ..DeploymentConfig::default()
        }
    }

    #[test]
    fn deployment_produces_visits_and_measurements() {
        let (mut net, mut sys) = small_deployment();
        let mut rng = SimRng::new(0x715);
        let log = run_deployment(
            &mut net,
            &mut sys,
            &Audience::academic(),
            &week_config(),
            &mut rng,
        );
        // ~30/day for 7 days ≈ 210 visits.
        assert!((140..300).contains(&log.len()), "visits = {}", log.len());
        // Some visits executed tasks and submitted results.
        let measured = log
            .iter()
            .filter(|v| !v.outcome.executed.is_empty())
            .count();
        assert!(measured > 30, "measured = {measured}");
        assert!(
            sys.collection.len() > 60,
            "collector has {}",
            sys.collection.len()
        );
    }

    #[test]
    fn visit_log_is_chronological() {
        let (mut net, mut sys) = small_deployment();
        let mut rng = SimRng::new(0x716);
        let log = run_deployment(
            &mut net,
            &mut sys,
            &Audience::academic(),
            &week_config(),
            &mut rng,
        );
        for w in log.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn deployment_is_deterministic() {
        let run = |seed: u64| {
            let (mut net, mut sys) = small_deployment();
            let mut rng = SimRng::new(seed);
            let log = run_deployment(
                &mut net,
                &mut sys,
                &Audience::academic(),
                &week_config(),
                &mut rng,
            );
            (log.len(), sys.collection.len())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn bounced_visits_run_no_tasks() {
        let (mut net, mut sys) = small_deployment();
        let mut rng = SimRng::new(0x717);
        let log = run_deployment(
            &mut net,
            &mut sys,
            &Audience::academic(),
            &week_config(),
            &mut rng,
        );
        for v in &log {
            if v.dwell < SimDuration::from_secs(2) {
                assert!(v.outcome.executed.is_empty());
            }
        }
    }

    #[test]
    fn zero_weight_origin_gets_no_visits() {
        let mut net = Network::ideal(World::builtin());
        let origin = OriginSite::academic("ghost.example").with_popularity(0.0);
        let mut sys = EncoreSystem::deploy(
            &mut net,
            vec![],
            SchedulingStrategy::Random,
            vec![origin],
            country("US"),
        );
        let mut rng = SimRng::new(1);
        let log = run_deployment(
            &mut net,
            &mut sys,
            &Audience::academic(),
            &week_config(),
            &mut rng,
        );
        assert!(log.is_empty());
    }
}
