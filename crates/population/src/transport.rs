//! Distributed shard backends: one trait, two transports.
//!
//! [`ShardTransport`] abstracts *where* a sharded world's shards run:
//!
//! * [`ThreadTransport`] — today's OS threads in this process,
//!   zero-copy, delegating to [`crate::shard::run_sharded_world`];
//!   byte-identical to calling that function directly.
//! * [`ProcessTransport`] — worker **processes** connected by OS pipes
//!   speaking the length-prefixed, checksummed [`sim_core::frame`]
//!   protocol. The coordinator serializes the [`WorldSpec`] **once**
//!   and broadcasts the same frame bytes to every worker (control
//!   traffic rides the same framed channel as data); each worker
//!   rebuilds its private world from the spec, runs its shard, and
//!   streams its output back **incrementally** in bounded chunks that
//!   fold through the associative [`crate::analytics::Merge`] path as
//!   frames arrive — coordinator peak memory is O(1 merged outcome),
//!   not O(shards × outcome).
//!
//! Closures never cross the process boundary: a [`WorldSpec`] is a
//! compact serializable *description* (fixture name + parameters, or a
//! generator seed) from which the worker deterministically rebuilds the
//! scenario, recipe, and audience. That is what makes cross-backend
//! byte-identity provable — both backends execute
//! `shard_recipe(spec.recipe(), ..)` with `shard_rngs(seed, ..)` streams
//! on worlds built by the same deterministic builder.
//!
//! ## Wire protocol (version [`sim_core::frame::FRAME_VERSION`])
//!
//! ```text
//! coordinator → worker   SPEC  (binary WorldSpec, identical bytes to all)
//!                        JOB   (shard index, count, seed, chunk, window)
//!                        ACK   (one credit, after each data frame folds)
//! worker → coordinator   LOG_CHUNK*    (≤ chunk VisitRecords each)
//!                        RECORD_CHUNK* (≤ chunk StoredMeasurements each)
//!                        SKETCH?       (streaming mode: bounded analytics)
//!                        FINAL (report, rollups, counters, geo)
//!                        ERROR (human-readable failure, then exit 1)
//! ```
//!
//! In streaming mode the record log never materialises, so the
//! RECORD_CHUNK stream is empty and the shard's entire collection-side
//! analytics — count-min sketch, reservoir sample, closed-window count
//! matrices, drop counters — crosses as **one** bounded SKETCH frame
//! whose size is fixed by the [`encore::streaming::StreamingConfig`],
//! not by traffic volume. SKETCH frames fold into the per-shard partial
//! like any data frame, so the coordinator still holds at most the
//! running accumulator plus one shard's partial.
//!
//! **Backpressure:** a worker may have at most `window` unacknowledged
//! data frames in flight; past that it blocks until the coordinator
//! acks, so coordinator-side buffering is bounded regardless of how
//! large a shard's log is. **Failure:** a worker that dies mid-stream
//! surfaces as a typed [`TransportError`] (clean worker-exit/short-read
//! path — never a panic), and the coordinator kills the remaining
//! workers before returning.

use crate::analytics::{Merge, StreamSummary};
use crate::audience::Audience;
use crate::batch::BatchReport;
use crate::driver::VisitRecord;
use crate::shard::{run_sharded_world, shard_recipe, shard_rngs, ShardContext, ShardedWorldRun};
use crate::world::{WorldEngine, WorldOutcome, WorldRecipe};
use encore::collection::{CollectionSnapshot, StoredMeasurement};
use encore::geo::GeoDb;
use encore::system::EncoreSystem;
use netsim::network::Network;
use serde::{Deserialize, Serialize};
use sim_core::frame::{encode_frame, read_frame, write_frame, FrameError};
use std::fmt;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::str::FromStr;

/// Frame kind: the serialized [`WorldSpec`], broadcast to every worker.
pub const KIND_SPEC: u8 = 1;
/// Frame kind: one worker's job assignment ([`WorkerJob`]).
pub const KIND_JOB: u8 = 2;
/// Frame kind: a bounded chunk of the shard's visit log.
pub const KIND_LOG_CHUNK: u8 = 3;
/// Frame kind: a bounded chunk of the shard's collection records.
pub const KIND_RECORD_CHUNK: u8 = 4;
/// Frame kind: the shard's final aggregates ([`FinalPayload`]).
pub const KIND_FINAL: u8 = 5;
/// Frame kind: one flow-control credit from the coordinator.
pub const KIND_ACK: u8 = 6;
/// Frame kind: a worker-side failure description (worker exits 1 after).
pub const KIND_ERROR: u8 = 7;
/// Frame kind: the shard's bounded streaming analytics
/// ([`encore::streaming::StreamingStats`]) — sent at most once, before
/// FINAL, only by streaming-mode shards.
pub const KIND_SKETCH: u8 = 8;

/// Default records per streamed data frame. Sized so a frame is a few
/// hundred kilobytes of payload: large enough that per-frame costs
/// (header parse, ack round-trip, payload allocation) vanish against
/// the codec work, small enough that `window` frames in flight stay a
/// few megabytes of bounded coordinator buffering.
pub const DEFAULT_CHUNK: usize = 4096;
/// Default credit window: max unacknowledged data frames per worker.
pub const DEFAULT_WINDOW: usize = 8;
/// Default payload cap (bytes) enforced by both ends of the pipe.
pub const DEFAULT_MAX_PAYLOAD: u32 = 64 << 20;

/// Environment variable overriding worker-binary resolution (takes
/// precedence over sibling lookup for every worker name).
pub const WORKER_BIN_ENV: &str = "ENCORE_WORKER_BIN";

/// A compact, serializable description of a sharded world run — the
/// unit a worker process rebuilds its world from.
///
/// Implementations must be **deterministic**: the same spec value must
/// build byte-identical worlds in every process, because cross-backend
/// equivalence (threads vs process, proven in
/// `tests/transport_equivalence.rs` and simcheck's transport oracle)
/// rests on it. Closures stay out of the picture by construction — only
/// the spec's serialized fields cross the pipe.
pub trait WorldSpec: Serialize + Deserialize + Send + Sync {
    /// The audience every shard samples visitors from.
    fn audience(&self) -> Audience;
    /// The *total* (unsharded) recipe; each shard runs
    /// [`shard_recipe`]\(recipe, shards, index\).
    fn recipe(&self) -> WorldRecipe;
    /// Build this shard's private network + deployed Encore system.
    fn build(&self, ctx: ShardContext) -> (Network, EncoreSystem);
}

/// One worker's assignment, carried by a [`KIND_JOB`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerJob {
    /// This worker's shard index, `0..shards`.
    pub index: usize,
    /// Total shard count.
    pub shards: usize,
    /// Root seed; the worker derives its stream via [`shard_rngs`].
    pub seed: u64,
    /// Records per streamed data frame.
    pub chunk: usize,
    /// Credit window: max unacknowledged data frames in flight.
    pub window: usize,
}

/// A shard's final aggregates, carried by a [`KIND_FINAL`] frame. The
/// visit log and collection records stream separately in bounded
/// chunks; this is everything that remains.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FinalPayload {
    /// Aggregate counters.
    pub report: BatchReport,
    /// Periodic rollups.
    pub rollups: RollupsWire,
    /// Policy-timeline changes that mutated the shard's world.
    pub policy_changes_applied: usize,
    /// Censor control signals a middlebox applied.
    pub control_signals_applied: usize,
    /// Malformed submissions the shard's collection server dropped.
    pub malformed: u64,
    /// Streaming-mode run summary (evicted-rollup fold + drop
    /// accounting); absent — and absent from the wire — in exact mode.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub streaming: Option<StreamSummary>,
    /// The shard's striped GeoIP database.
    pub geo: GeoDb,
}

/// Wire shape of [`crate::analytics::RollupSeries`] (its inner vector;
/// the newtype itself predates the derive support for tuple structs
/// used here, so the wire carries the vector explicitly).
pub type RollupsWire = Vec<crate::analytics::Rollup>;

/// Every way a transport run can fail. All coordinator-side failure
/// modes are values — worker death, truncated frames, malformed
/// payloads — never panics.
#[derive(Debug)]
pub enum TransportError {
    /// A frame failed to decode (truncation, corruption, bad version).
    Frame {
        /// Which end / shard the frame came from.
        context: String,
        /// The codec's typed error.
        error: FrameError,
    },
    /// The stream violated the protocol (unexpected kind or EOF).
    Protocol(String),
    /// A payload failed to (de)serialize.
    Payload(String),
    /// The worker binary could not be found.
    MissingWorker(String),
    /// The worker process could not be spawned.
    Spawn {
        /// Path of the binary that failed to spawn.
        worker: PathBuf,
        /// OS error detail.
        detail: String,
    },
    /// A worker exited without completing its stream.
    WorkerExit {
        /// The worker's shard index.
        shard: usize,
        /// Exit-status description.
        detail: String,
    },
    /// A worker reported a failure via a [`KIND_ERROR`] frame.
    Worker {
        /// The worker's shard index.
        shard: usize,
        /// The worker's failure message.
        detail: String,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Frame { context, error } => {
                write!(f, "frame error ({context}): {error}")
            }
            TransportError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            TransportError::Payload(detail) => write!(f, "payload codec error: {detail}"),
            TransportError::MissingWorker(detail) => {
                write!(f, "worker binary not found: {detail}")
            }
            TransportError::Spawn { worker, detail } => {
                write!(f, "failed to spawn worker {}: {detail}", worker.display())
            }
            TransportError::WorkerExit { shard, detail } => {
                write!(f, "worker for shard {shard} exited mid-stream: {detail}")
            }
            TransportError::Worker { shard, detail } => {
                write!(f, "worker for shard {shard} reported: {detail}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Which backend a sharded run executes on. Parses from
/// `--transport {threads,process}` / `ENCORE_TRANSPORT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransportKind {
    /// In-process OS threads (the default; zero-copy).
    Threads,
    /// Worker processes over the frame protocol.
    Process,
}

impl FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<TransportKind, String> {
        match s {
            "threads" => Ok(TransportKind::Threads),
            "process" => Ok(TransportKind::Process),
            other => Err(format!(
                "unknown transport {other:?} (expected \"threads\" or \"process\")"
            )),
        }
    }
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransportKind::Threads => "threads",
            TransportKind::Process => "process",
        })
    }
}

impl TransportKind {
    /// Run `spec` on this backend: threads in-process, or worker
    /// processes resolved from `worker` (a sibling-binary name, see
    /// [`sibling_worker`]).
    pub fn run<S: WorldSpec>(
        self,
        worker: &str,
        spec: &S,
        shards: usize,
        seed: u64,
    ) -> Result<ShardedWorldRun, TransportError> {
        match self {
            TransportKind::Threads => ThreadTransport.run(spec, shards, seed),
            TransportKind::Process => ProcessTransport::for_worker(worker)?.run(spec, shards, seed),
        }
    }
}

/// A backend that can execute a [`WorldSpec`] across shards.
pub trait ShardTransport {
    /// Execute `spec` over `shards` shards from root `seed`, returning
    /// the merged run. Both backends must produce byte-identical
    /// results for the same inputs.
    fn run<S: WorldSpec>(
        &self,
        spec: &S,
        shards: usize,
        seed: u64,
    ) -> Result<ShardedWorldRun, TransportError>;
}

/// The in-process backend: today's scoped OS threads, delegating to
/// [`run_sharded_world`]. Never fails; the `Result` exists only to
/// satisfy the shared trait signature.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadTransport;

impl ShardTransport for ThreadTransport {
    fn run<S: WorldSpec>(
        &self,
        spec: &S,
        shards: usize,
        seed: u64,
    ) -> Result<ShardedWorldRun, TransportError> {
        let audience = spec.audience();
        let recipe = spec.recipe();
        Ok(run_sharded_world(
            &|ctx| spec.build(ctx),
            &audience,
            &recipe,
            shards,
            seed,
        ))
    }
}

/// Deterministic streaming counters from one [`ProcessTransport`] run —
/// the numbers `transport_scale` gates peak coordinator memory on.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TransportStats {
    /// Shard (worker process) count.
    pub shards: usize,
    /// Data frames streamed back (log + record chunks).
    pub data_frames: u64,
    /// Total streamed payload bytes.
    pub streamed_payload_bytes: u64,
    /// Largest single payload seen.
    pub largest_payload_bytes: u64,
    /// The credit window: max unacknowledged data frames any worker may
    /// have in flight (protocol-enforced bound on coordinator buffering).
    pub window: usize,
    /// Peak outcome-shaped aggregates simultaneously resident on the
    /// coordinator: the running accumulator plus at most the partial
    /// fold of the one shard currently being drained — the O(1)
    /// streaming-merge guarantee, independent of shard count.
    /// (In-flight chunks are bounded separately, by [`Self::window`].)
    pub peak_resident_outcomes: usize,
}

/// The multi-process backend: spawns one worker per shard, broadcasts
/// the spec as identical frame bytes, and folds the streamed chunks
/// incrementally.
#[derive(Debug, Clone)]
pub struct ProcessTransport {
    worker: PathBuf,
    chunk: usize,
    window: usize,
    max_payload: u32,
}

impl ProcessTransport {
    /// A process transport spawning `worker` with default chunking.
    pub fn new(worker: PathBuf) -> ProcessTransport {
        ProcessTransport {
            worker,
            chunk: DEFAULT_CHUNK,
            window: DEFAULT_WINDOW,
            max_payload: DEFAULT_MAX_PAYLOAD,
        }
    }

    /// Resolve `name` via [`sibling_worker`] and build a transport on it.
    pub fn for_worker(name: &str) -> Result<ProcessTransport, TransportError> {
        let path = sibling_worker(name).ok_or_else(|| {
            TransportError::MissingWorker(format!(
                "{name:?} is not beside the current executable and {WORKER_BIN_ENV} is unset \
                 (build it first: `cargo build --release`)"
            ))
        })?;
        Ok(ProcessTransport::new(path))
    }

    /// Override records-per-frame chunking (min 1).
    pub fn with_chunk(mut self, chunk: usize) -> ProcessTransport {
        self.chunk = chunk.max(1);
        self
    }

    /// Override the credit window (min 1).
    pub fn with_window(mut self, window: usize) -> ProcessTransport {
        self.window = window.max(1);
        self
    }

    /// The worker binary this transport spawns.
    pub fn worker(&self) -> &PathBuf {
        &self.worker
    }

    /// Run and also return the deterministic streaming counters.
    pub fn run_with_stats<S: WorldSpec>(
        &self,
        spec: &S,
        shards: usize,
        seed: u64,
    ) -> Result<(ShardedWorldRun, TransportStats), TransportError> {
        assert!(shards >= 1, "shard count must be at least 1");
        let mut children = self.spawn_workers(spec, shards, seed)?;
        let result = self.drain(&mut children, shards);
        if result.is_err() {
            // Clean failure path: no orphans, no zombies.
            for child in &mut children {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        result
    }

    /// Spawn all workers and hand each the broadcast spec + its job.
    fn spawn_workers<S: WorldSpec>(
        &self,
        spec: &S,
        shards: usize,
        seed: u64,
    ) -> Result<Vec<Child>, TransportError> {
        // Control traffic serializes ONCE: every worker receives the
        // same spec frame bytes.
        let spec_frame = encode_frame(KIND_SPEC, &encode_payload(spec)?);
        let mut children: Vec<Child> = Vec::with_capacity(shards);
        for index in 0..shards {
            let spawned = Command::new(&self.worker)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn();
            let mut child = match spawned {
                Ok(child) => child,
                Err(err) => {
                    for mut orphan in children {
                        let _ = orphan.kill();
                        let _ = orphan.wait();
                    }
                    return Err(TransportError::Spawn {
                        worker: self.worker.clone(),
                        detail: err.to_string(),
                    });
                }
            };
            let job = WorkerJob {
                index,
                shards,
                seed,
                chunk: self.chunk,
                window: self.window,
            };
            let handoff = (|| -> Result<(), TransportError> {
                let stdin = child.stdin.as_mut().expect("stdin piped at spawn");
                stdin
                    .write_all(&spec_frame)
                    .map_err(|e| io_err(index, "writing spec frame", &e))?;
                write_frame(stdin, KIND_JOB, &encode_payload(&job)?).map_err(|error| {
                    TransportError::Frame {
                        context: format!("writing job frame to shard {index}"),
                        error,
                    }
                })?;
                stdin
                    .flush()
                    .map_err(|e| io_err(index, "flushing handshake", &e))?;
                Ok(())
            })();
            if let Err(err) = handoff {
                let _ = child.kill();
                let _ = child.wait();
                for mut orphan in children {
                    let _ = orphan.kill();
                    let _ = orphan.wait();
                }
                return Err(err);
            }
            children.push(child);
        }
        Ok(children)
    }

    /// Drain every worker's stream in shard order, folding each frame
    /// into the running aggregates the moment it arrives.
    fn drain(
        &self,
        children: &mut [Child],
        shards: usize,
    ) -> Result<(ShardedWorldRun, TransportStats), TransportError> {
        let mut stats = TransportStats {
            shards,
            data_frames: 0,
            streamed_payload_bytes: 0,
            largest_payload_bytes: 0,
            window: self.window,
            peak_resident_outcomes: 0,
        };
        // O(1) resident state: one running fold of everything drained
        // so far, plus the partial fold of the shard currently being
        // drained. Chunks fold into the *shard* partial as they arrive
        // (each fold walks at most one shard's outcome, never the
        // global accumulator), and each completed shard folds exactly
        // once into the running merge — so the total merge work is the
        // same O(shards × data) as merging whole shard outcomes, not
        // quadratic in the chunk count. Workers are drained in shard
        // order and each worker streams its chunks in time order, so by
        // associativity this grouped fold equals the
        // shard-index-order whole-outcome merge (the stable
        // `merge_time_ordered` keeps earlier-folded records ahead of
        // later ones at equal timestamps, exactly like merging whole
        // shard outcomes in index order).
        let mut outcome_acc: Option<WorldOutcome> = None;
        let mut collection_acc = CollectionSnapshot::default();
        let mut geo_acc: Option<GeoDb> = None;
        let mut per_shard: Vec<BatchReport> = Vec::with_capacity(shards);

        for (shard, child) in children.iter_mut().enumerate() {
            let mut shard_outcome: Option<WorldOutcome> = None;
            let mut shard_collection = CollectionSnapshot::default();
            let mut stdout =
                io::BufReader::new(child.stdout.take().expect("stdout piped at spawn"));
            loop {
                let frame = match read_frame(&mut stdout, self.max_payload) {
                    Ok(Some(frame)) => frame,
                    Ok(None) => {
                        // EOF before FINAL: the worker died. Report its
                        // exit status instead of panicking.
                        let detail = match child.wait() {
                            Ok(status) => status.to_string(),
                            Err(err) => format!("unwaitable: {err}"),
                        };
                        return Err(TransportError::WorkerExit { shard, detail });
                    }
                    Err(error) => {
                        return Err(TransportError::Frame {
                            context: format!("reading from shard {shard}"),
                            error,
                        })
                    }
                };
                let payload_len = frame.payload.len() as u64;
                match frame.kind {
                    KIND_LOG_CHUNK => {
                        let log: Vec<VisitRecord> = decode_payload(&frame.payload, "log chunk")?;
                        let partial = WorldOutcome {
                            log,
                            report: BatchReport::default(),
                            rollups: crate::analytics::RollupSeries::default(),
                            policy_changes_applied: 0,
                            control_signals_applied: 0,
                            streaming: None,
                        };
                        stats.peak_resident_outcomes = stats
                            .peak_resident_outcomes
                            .max(usize::from(outcome_acc.is_some()) + 1);
                        shard_outcome = Some(match shard_outcome.take() {
                            Some(acc) => acc.merge(partial),
                            None => partial,
                        });
                        stats.data_frames += 1;
                        stats.streamed_payload_bytes += payload_len;
                        stats.largest_payload_bytes = stats.largest_payload_bytes.max(payload_len);
                        ack(child, shard);
                    }
                    KIND_RECORD_CHUNK => {
                        let records: Vec<StoredMeasurement> =
                            decode_payload(&frame.payload, "record chunk")?;
                        shard_collection = shard_collection.merge_owned(CollectionSnapshot {
                            records,
                            malformed: 0,
                            streaming: None,
                        });
                        stats.data_frames += 1;
                        stats.streamed_payload_bytes += payload_len;
                        stats.largest_payload_bytes = stats.largest_payload_bytes.max(payload_len);
                        ack(child, shard);
                    }
                    KIND_SKETCH => {
                        let sketch: encore::streaming::StreamingStats =
                            decode_payload(&frame.payload, "sketch")?;
                        shard_collection = shard_collection.merge_owned(CollectionSnapshot {
                            records: Vec::new(),
                            malformed: 0,
                            streaming: Some(sketch),
                        });
                        stats.data_frames += 1;
                        stats.streamed_payload_bytes += payload_len;
                        stats.largest_payload_bytes = stats.largest_payload_bytes.max(payload_len);
                        ack(child, shard);
                    }
                    KIND_FINAL => {
                        let fin: FinalPayload = decode_payload(&frame.payload, "final")?;
                        per_shard.push(fin.report);
                        let partial = WorldOutcome {
                            log: Vec::new(),
                            report: fin.report,
                            rollups: crate::analytics::RollupSeries(fin.rollups),
                            policy_changes_applied: fin.policy_changes_applied,
                            control_signals_applied: fin.control_signals_applied,
                            streaming: fin.streaming,
                        };
                        stats.peak_resident_outcomes = stats
                            .peak_resident_outcomes
                            .max(usize::from(outcome_acc.is_some()) + 1);
                        let completed = match shard_outcome.take() {
                            Some(acc) => acc.merge(partial),
                            None => partial,
                        };
                        outcome_acc = Some(match outcome_acc.take() {
                            Some(acc) => acc.merge(completed),
                            None => completed,
                        });
                        shard_collection.malformed += fin.malformed;
                        collection_acc =
                            collection_acc.merge_owned(std::mem::take(&mut shard_collection));
                        geo_acc = Some(match geo_acc.take() {
                            Some(acc) => Merge::merge(acc, fin.geo),
                            None => fin.geo,
                        });
                        break;
                    }
                    KIND_ERROR => {
                        return Err(TransportError::Worker {
                            shard,
                            detail: String::from_utf8_lossy(&frame.payload).into_owned(),
                        })
                    }
                    other => {
                        return Err(TransportError::Protocol(format!(
                            "unexpected frame kind {other} from shard {shard}"
                        )))
                    }
                }
            }
            // Stream complete: release the worker and insist on a clean
            // exit.
            drop(child.stdin.take());
            match child.wait() {
                Ok(status) if status.success() => {}
                Ok(status) => {
                    return Err(TransportError::WorkerExit {
                        shard,
                        detail: format!("after FINAL: {status}"),
                    })
                }
                Err(err) => {
                    return Err(TransportError::WorkerExit {
                        shard,
                        detail: format!("unwaitable: {err}"),
                    })
                }
            }
        }

        let outcome = outcome_acc.ok_or_else(|| {
            TransportError::Protocol("no shard produced a FINAL frame".to_string())
        })?;
        let geo = geo_acc.ok_or_else(|| {
            TransportError::Protocol("no shard produced a geo database".to_string())
        })?;
        Ok((
            ShardedWorldRun {
                outcome,
                per_shard,
                collection: collection_acc,
                geo,
            },
            stats,
        ))
    }
}

impl ShardTransport for ProcessTransport {
    fn run<S: WorldSpec>(
        &self,
        spec: &S,
        shards: usize,
        seed: u64,
    ) -> Result<ShardedWorldRun, TransportError> {
        self.run_with_stats(spec, shards, seed).map(|(run, _)| run)
    }
}

/// Acknowledge one data frame — handing the worker a credit. Write
/// failures are deliberately ignored: they only occur when the worker
/// already finished (sent FINAL and exited, so the last few credits go
/// unread) or already died (which the read path reports with full
/// context).
fn ack(child: &mut Child, _shard: usize) {
    if let Some(stdin) = child.stdin.as_mut() {
        let _ = write_frame(stdin, KIND_ACK, &[]);
        let _ = stdin.flush();
    }
}

fn io_err(shard: usize, action: &str, err: &io::Error) -> TransportError {
    TransportError::Protocol(format!("{action} for shard {shard}: {err}"))
}

/// Payloads cross the pipe in `serde::bin`'s positional binary
/// encoding, not JSON: the stream is a transient coordinator↔worker
/// wire (always the same build on both ends), and the binary form is
/// both several times smaller and decodes without building a `Value`
/// tree — the difference between the process backend fitting its
/// overhead budget and missing it.
fn encode_payload<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, TransportError> {
    Ok(serde::bin::to_vec(value))
}

fn decode_payload<T: Deserialize>(payload: &[u8], what: &str) -> Result<T, TransportError> {
    serde::bin::from_slice(payload).map_err(|err| TransportError::Payload(format!("{what}: {err}")))
}

/// Locate the worker binary `name`: [`WORKER_BIN_ENV`] wins if set;
/// otherwise look beside the current executable, then one directory up
/// (so test binaries in `target/<profile>/deps/` find workers in
/// `target/<profile>/`).
pub fn sibling_worker(name: &str) -> Option<PathBuf> {
    if let Ok(path) = std::env::var(WORKER_BIN_ENV) {
        let path = PathBuf::from(path);
        return path.is_file().then_some(path);
    }
    let exe = std::env::current_exe().ok()?;
    let file = format!("{name}{}", std::env::consts::EXE_SUFFIX);
    let dir = exe.parent()?;
    for candidate_dir in [Some(dir), dir.parent()].into_iter().flatten() {
        let candidate = candidate_dir.join(&file);
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

/// A worker that blocks for coordinator credits once its window is
/// exhausted — the protocol's explicit backpressure.
struct CreditedSender<'a, R: Read, W: Write> {
    input: &'a mut R,
    output: &'a mut W,
    credits: usize,
}

impl<R: Read, W: Write> CreditedSender<'_, R, W> {
    fn send(&mut self, kind: u8, payload: &[u8]) -> Result<(), TransportError> {
        if self.credits == 0 {
            // Everything written so far must actually reach the
            // coordinator before blocking on a credit — an unflushed
            // buffered frame would deadlock both ends.
            self.output.flush().map_err(|err| {
                TransportError::Protocol(format!("flushing before credit wait: {err}"))
            })?;
            match read_frame(self.input, DEFAULT_MAX_PAYLOAD).map_err(|error| {
                TransportError::Frame {
                    context: "reading credit".to_string(),
                    error,
                }
            })? {
                Some(frame) if frame.kind == KIND_ACK => {}
                Some(frame) => {
                    return Err(TransportError::Protocol(format!(
                        "expected ACK credit, got frame kind {}",
                        frame.kind
                    )))
                }
                None => {
                    return Err(TransportError::Protocol(
                        "coordinator closed the control pipe mid-stream".to_string(),
                    ))
                }
            }
        } else {
            self.credits -= 1;
        }
        write_frame(self.output, kind, payload).map_err(|error| TransportError::Frame {
            context: "writing data frame".to_string(),
            error,
        })
    }
}

/// The worker side of the protocol, generic over its pipes so the
/// handshake and streaming are unit-testable in-process. Reads the
/// spec and job, runs the shard, streams chunks under the credit
/// window, and finishes with a FINAL frame.
pub fn run_worker<S: WorldSpec, R: Read, W: Write>(
    input: &mut R,
    output: &mut W,
) -> Result<(), TransportError> {
    let spec_frame = expect_frame(input, KIND_SPEC, "spec")?;
    let spec: S = decode_payload(&spec_frame, "spec")?;
    let job_frame = expect_frame(input, KIND_JOB, "job")?;
    let job: WorkerJob = decode_payload(&job_frame, "job")?;
    if job.shards == 0 || job.index >= job.shards {
        return Err(TransportError::Protocol(format!(
            "job assigns shard {} of {}",
            job.index, job.shards
        )));
    }

    let audience = spec.audience();
    let ctx = ShardContext {
        index: job.index,
        shards: job.shards,
    };
    let (mut net, mut sys) = spec.build(ctx);
    let shard_cfg = shard_recipe(&spec.recipe(), job.shards, job.index);
    let mut rng = shard_rngs(job.seed, job.shards)
        .into_iter()
        .nth(job.index)
        .expect("index validated above");
    let outcome =
        WorldEngine::from_recipe(&mut net, &mut sys, &audience, &shard_cfg, &mut rng).run();
    let mut collection = sys.collection.snapshot();
    let geo = GeoDb::from_allocator(&net.allocator);

    let chunk = job.chunk.max(1);
    let mut sender = CreditedSender {
        input,
        output,
        credits: job.window.max(1),
    };
    for piece in outcome.log.chunks(chunk) {
        sender.send(KIND_LOG_CHUNK, &encode_payload(piece)?)?;
    }
    for piece in collection.records.chunks(chunk) {
        sender.send(KIND_RECORD_CHUNK, &encode_payload(piece)?)?;
    }
    // Streaming mode: the whole bounded analytics state is one frame,
    // sized by configuration rather than traffic.
    if let Some(sketch) = collection.streaming.take() {
        sender.send(KIND_SKETCH, &encode_payload(&sketch)?)?;
    }
    let fin = FinalPayload {
        report: outcome.report,
        rollups: outcome.rollups.0,
        policy_changes_applied: outcome.policy_changes_applied,
        control_signals_applied: outcome.control_signals_applied,
        malformed: collection.malformed,
        streaming: outcome.streaming,
        geo,
    };
    write_frame(output, KIND_FINAL, &encode_payload(&fin)?).map_err(|error| {
        TransportError::Frame {
            context: "writing final frame".to_string(),
            error,
        }
    })?;
    output
        .flush()
        .map_err(|err| TransportError::Protocol(format!("flushing final frame: {err}")))?;
    Ok(())
}

/// Read one frame and insist on the given kind.
fn expect_frame<R: Read>(input: &mut R, kind: u8, what: &str) -> Result<Vec<u8>, TransportError> {
    match read_frame(input, DEFAULT_MAX_PAYLOAD).map_err(|error| TransportError::Frame {
        context: format!("reading {what} frame"),
        error,
    })? {
        Some(frame) if frame.kind == kind => Ok(frame.payload),
        Some(frame) => Err(TransportError::Protocol(format!(
            "expected {what} frame (kind {kind}), got kind {}",
            frame.kind
        ))),
        None => Err(TransportError::Protocol(format!(
            "stream ended before the {what} frame"
        ))),
    }
}

/// Entry point for worker binaries: speak the protocol over
/// stdin/stdout, report failures as an ERROR frame + exit code 1.
/// A worker binary's `main` is one line:
/// `std::process::exit(worker_main::<MySpec>())`.
pub fn worker_main<S: WorldSpec>() -> i32 {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut input = stdin.lock();
    let mut output = io::BufWriter::new(stdout.lock());
    match run_worker::<S, _, _>(&mut input, &mut output) {
        Ok(()) => 0,
        Err(err) => {
            // Best effort: tell the coordinator why before dying.
            let _ = write_frame(&mut output, KIND_ERROR, err.to_string().as_bytes());
            let _ = output.flush();
            eprintln!("shard worker failed: {err}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audience::Audience;
    use crate::batch::BatchConfig;
    use encore::coordination::SchedulingStrategy;
    use encore::delivery::OriginSite;
    use encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
    use netsim::geo::country;
    use netsim::http::{ContentType, HttpResponse};
    use netsim::scenario::{NetworkScenario, WorldSpec as NetWorldSpec};

    /// A minimal serializable spec mirroring `shard.rs`'s test world.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct TinySpec {
        visits: u64,
        #[serde(default)]
        streaming: bool,
    }

    impl TinySpec {
        fn exact(visits: u64) -> TinySpec {
            TinySpec {
                visits,
                streaming: false,
            }
        }
    }

    impl WorldSpec for TinySpec {
        fn audience(&self) -> Audience {
            Audience::academic()
        }

        fn recipe(&self) -> WorldRecipe {
            let recipe = WorldRecipe::batch(BatchConfig {
                visits: self.visits,
                ..BatchConfig::default()
            });
            if self.streaming {
                recipe.with_streaming(crate::world::StreamingSpec::with_window(
                    sim_core::SimDuration::from_secs(60),
                ))
            } else {
                recipe
            }
        }

        fn build(&self, ctx: ShardContext) -> (Network, EncoreSystem) {
            let mut net = NetworkScenario::new(NetWorldSpec::Builtin)
                .with_ideal_paths()
                .with_server(
                    "target.example",
                    country("US"),
                    HttpResponse::ok(ContentType::Image, 400),
                )
                .build_shard(ctx.index, ctx.shards);
            let tasks = vec![MeasurementTask {
                id: MeasurementId(0),
                spec: TaskSpec::Image {
                    url: "http://target.example/favicon.ico".into(),
                },
            }];
            let sys = EncoreSystem::deploy(
                &mut net,
                tasks,
                SchedulingStrategy::RoundRobin,
                vec![OriginSite::academic("prof.example")],
                country("US"),
            );
            (net, sys)
        }
    }

    #[test]
    fn transport_kind_parses_and_displays() {
        assert_eq!(
            "threads".parse::<TransportKind>(),
            Ok(TransportKind::Threads)
        );
        assert_eq!(
            "process".parse::<TransportKind>(),
            Ok(TransportKind::Process)
        );
        assert!("Threads".parse::<TransportKind>().is_err());
        assert!("sockets".parse::<TransportKind>().is_err());
        assert_eq!(TransportKind::Threads.to_string(), "threads");
        assert_eq!(TransportKind::Process.to_string(), "process");
    }

    #[test]
    fn thread_transport_matches_run_sharded_world() {
        let spec = TinySpec::exact(300);
        let via_trait = ThreadTransport.run(&spec, 2, 41).expect("threads run");
        let audience = spec.audience();
        let recipe = spec.recipe();
        let direct = run_sharded_world(&|ctx| spec.build(ctx), &audience, &recipe, 2, 41);
        assert_eq!(via_trait.outcome, direct.outcome);
        assert_eq!(via_trait.collection, direct.collection);
        assert_eq!(via_trait.per_shard, direct.per_shard);
    }

    /// Drive the worker protocol entirely in-process: the "coordinator"
    /// side here is a scripted byte buffer (window large enough that no
    /// credits are needed), and the worker's streamed frames fold back
    /// through the same partial-outcome path `ProcessTransport` uses.
    #[test]
    fn in_process_worker_stream_folds_to_thread_result() {
        let spec = TinySpec::exact(240);
        let (shards, seed) = (2usize, 97u64);

        let expected = ThreadTransport.run(&spec, shards, seed).expect("threads");

        let mut outcome_acc: Option<WorldOutcome> = None;
        let mut collection_acc = CollectionSnapshot::default();
        let mut per_shard = Vec::new();
        for index in 0..shards {
            let mut script = Vec::new();
            write_frame(&mut script, KIND_SPEC, &encode_payload(&spec).unwrap()).unwrap();
            let job = WorkerJob {
                index,
                shards,
                seed,
                chunk: 7,
                window: usize::MAX,
            };
            write_frame(&mut script, KIND_JOB, &encode_payload(&job).unwrap()).unwrap();

            let mut input: &[u8] = &script;
            let mut wire = Vec::new();
            run_worker::<TinySpec, _, _>(&mut input, &mut wire).expect("worker runs");

            let mut stream: &[u8] = &wire;
            loop {
                let frame = read_frame(&mut stream, DEFAULT_MAX_PAYLOAD)
                    .expect("valid frame")
                    .expect("stream ends with FINAL");
                match frame.kind {
                    KIND_LOG_CHUNK => {
                        let log: Vec<VisitRecord> = decode_payload(&frame.payload, "log").unwrap();
                        let partial = WorldOutcome {
                            log,
                            report: BatchReport::default(),
                            rollups: crate::analytics::RollupSeries::default(),
                            policy_changes_applied: 0,
                            control_signals_applied: 0,
                            streaming: None,
                        };
                        outcome_acc = Some(match outcome_acc.take() {
                            Some(acc) => acc.merge(partial),
                            None => partial,
                        });
                    }
                    KIND_RECORD_CHUNK => {
                        let records: Vec<StoredMeasurement> =
                            decode_payload(&frame.payload, "records").unwrap();
                        collection_acc = collection_acc.merge(&CollectionSnapshot {
                            records,
                            malformed: 0,
                            streaming: None,
                        });
                    }
                    KIND_FINAL => {
                        let fin: FinalPayload = decode_payload(&frame.payload, "final").unwrap();
                        per_shard.push(fin.report);
                        let partial = WorldOutcome {
                            log: Vec::new(),
                            report: fin.report,
                            rollups: crate::analytics::RollupSeries(fin.rollups),
                            policy_changes_applied: fin.policy_changes_applied,
                            control_signals_applied: fin.control_signals_applied,
                            streaming: fin.streaming,
                        };
                        outcome_acc = Some(match outcome_acc.take() {
                            Some(acc) => acc.merge(partial),
                            None => partial,
                        });
                        collection_acc = collection_acc.merge(&CollectionSnapshot {
                            records: Vec::new(),
                            malformed: fin.malformed,
                            streaming: None,
                        });
                        break;
                    }
                    other => panic!("unexpected frame kind {other}"),
                }
            }
            assert_eq!(
                read_frame(&mut stream, DEFAULT_MAX_PAYLOAD).unwrap(),
                None,
                "worker must close its stream after FINAL"
            );
        }

        assert_eq!(outcome_acc.expect("two shards folded"), expected.outcome);
        assert_eq!(collection_acc, expected.collection);
        assert_eq!(per_shard, expected.per_shard);
    }

    /// Streaming vs exact over the *same* 2-shard traffic (same seed,
    /// and streaming's RNG forks are pure, so the visit streams are
    /// byte-identical): the merged window matrices must judge exactly
    /// like the merged exact record log.
    #[test]
    fn sharded_streaming_verdicts_match_sharded_exact() {
        let window = sim_core::SimDuration::from_secs(60);
        let exact = ThreadTransport
            .run(&TinySpec::exact(400), 2, 77)
            .expect("exact run");
        let streamed = ThreadTransport
            .run(
                &TinySpec {
                    visits: 400,
                    streaming: true,
                },
                2,
                77,
            )
            .expect("streaming run");

        // Enabling streaming never perturbs the traffic.
        assert_eq!(exact.outcome.report, streamed.outcome.report);
        assert_eq!(exact.per_shard, streamed.per_shard);

        // The record log never materialises in streaming mode; the
        // bounded stats carry everything the detector needs.
        assert!(streamed.collection.records.is_empty());
        let stats = streamed.collection.streaming.as_ref().expect("stats");
        assert!(!stats.windows.is_empty(), "windows closed");
        assert_eq!(stats.accepted as usize, exact.collection.records.len());

        let det = encore::inference::FilteringDetector::default();
        let exact_reports = det.detect_windows(&exact.collection.records, &exact.geo, window);
        assert_eq!(det.judge_streamed(stats), exact_reports);

        // Outcome-side summary: merged across shards, no shedding in
        // this gentle world.
        let summary = streamed.outcome.streaming.expect("merged summary");
        assert_eq!(summary.accepted, stats.accepted);
        assert_eq!(summary.drops.total(), 0);
    }

    /// Streaming mode on the wire: the worker sends zero RECORD_CHUNK
    /// frames and exactly one SKETCH frame, and folding its stream
    /// reproduces the thread backend's merged run.
    #[test]
    fn in_process_streaming_worker_sends_one_bounded_sketch_frame() {
        let spec = TinySpec {
            visits: 240,
            streaming: true,
        };
        let (shards, seed) = (2usize, 97u64);
        let expected = ThreadTransport.run(&spec, shards, seed).expect("threads");

        let mut outcome_acc: Option<WorldOutcome> = None;
        let mut collection_acc = CollectionSnapshot::default();
        for index in 0..shards {
            let mut script = Vec::new();
            write_frame(&mut script, KIND_SPEC, &encode_payload(&spec).unwrap()).unwrap();
            let job = WorkerJob {
                index,
                shards,
                seed,
                chunk: 7,
                window: usize::MAX,
            };
            write_frame(&mut script, KIND_JOB, &encode_payload(&job).unwrap()).unwrap();
            let mut input: &[u8] = &script;
            let mut wire = Vec::new();
            run_worker::<TinySpec, _, _>(&mut input, &mut wire).expect("worker runs");

            let (mut sketches, mut record_chunks) = (0, 0);
            let mut stream: &[u8] = &wire;
            loop {
                let frame = read_frame(&mut stream, DEFAULT_MAX_PAYLOAD)
                    .expect("valid frame")
                    .expect("stream ends with FINAL");
                match frame.kind {
                    KIND_RECORD_CHUNK => record_chunks += 1,
                    KIND_SKETCH => {
                        sketches += 1;
                        let stats: encore::streaming::StreamingStats =
                            decode_payload(&frame.payload, "sketch").unwrap();
                        collection_acc = collection_acc.merge_owned(CollectionSnapshot {
                            records: Vec::new(),
                            malformed: 0,
                            streaming: Some(stats),
                        });
                    }
                    KIND_FINAL => {
                        let fin: FinalPayload = decode_payload(&frame.payload, "final").unwrap();
                        let partial = WorldOutcome {
                            log: Vec::new(),
                            report: fin.report,
                            rollups: crate::analytics::RollupSeries(fin.rollups),
                            policy_changes_applied: fin.policy_changes_applied,
                            control_signals_applied: fin.control_signals_applied,
                            streaming: fin.streaming,
                        };
                        outcome_acc = Some(match outcome_acc.take() {
                            Some(acc) => acc.merge(partial),
                            None => partial,
                        });
                        collection_acc = collection_acc.merge_owned(CollectionSnapshot {
                            records: Vec::new(),
                            malformed: fin.malformed,
                            streaming: None,
                        });
                        break;
                    }
                    KIND_LOG_CHUNK => {} // batch mode: none expected, tolerated
                    other => panic!("unexpected frame kind {other}"),
                }
            }
            assert_eq!(record_chunks, 0, "no record chunks in streaming mode");
            assert_eq!(sketches, 1, "exactly one bounded sketch frame");
        }

        assert_eq!(outcome_acc.expect("folded"), expected.outcome);
        assert_eq!(collection_acc, expected.collection);
    }

    #[test]
    fn worker_without_credits_errors_instead_of_hanging() {
        // window 1 and a tiny chunk size forces the worker to need
        // credits, but the scripted input has none: the worker must
        // surface a typed error, not block or panic.
        let spec = TinySpec::exact(200);
        let mut script = Vec::new();
        write_frame(&mut script, KIND_SPEC, &encode_payload(&spec).unwrap()).unwrap();
        let job = WorkerJob {
            index: 0,
            shards: 1,
            seed: 7,
            chunk: 1,
            window: 1,
        };
        write_frame(&mut script, KIND_JOB, &encode_payload(&job).unwrap()).unwrap();
        let mut input: &[u8] = &script;
        let mut output = Vec::new();
        let err = run_worker::<TinySpec, _, _>(&mut input, &mut output)
            .expect_err("no credits available");
        assert!(matches!(err, TransportError::Protocol(_)), "{err}");
    }

    #[test]
    fn worker_rejects_malformed_handshake() {
        // Job before spec.
        let job = WorkerJob {
            index: 0,
            shards: 1,
            seed: 7,
            chunk: 8,
            window: 8,
        };
        let mut script = Vec::new();
        write_frame(&mut script, KIND_JOB, &encode_payload(&job).unwrap()).unwrap();
        let mut input: &[u8] = &script;
        let mut output = Vec::new();
        let err = run_worker::<TinySpec, _, _>(&mut input, &mut output).unwrap_err();
        assert!(matches!(err, TransportError::Protocol(_)), "{err}");

        // Truncated spec frame.
        let mut script = Vec::new();
        write_frame(
            &mut script,
            KIND_SPEC,
            &encode_payload(&TinySpec::exact(1)).unwrap(),
        )
        .unwrap();
        script.truncate(script.len() - 3);
        let mut input: &[u8] = &script;
        let mut output = Vec::new();
        let err = run_worker::<TinySpec, _, _>(&mut input, &mut output).unwrap_err();
        assert!(
            matches!(
                err,
                TransportError::Frame {
                    error: FrameError::ShortRead { .. },
                    ..
                }
            ),
            "{err}"
        );

        // Out-of-range shard index.
        let bad_job = WorkerJob {
            index: 3,
            shards: 2,
            seed: 7,
            chunk: 8,
            window: 8,
        };
        let mut script = Vec::new();
        write_frame(
            &mut script,
            KIND_SPEC,
            &encode_payload(&TinySpec::exact(1)).unwrap(),
        )
        .unwrap();
        write_frame(&mut script, KIND_JOB, &encode_payload(&bad_job).unwrap()).unwrap();
        let mut input: &[u8] = &script;
        let mut output = Vec::new();
        let err = run_worker::<TinySpec, _, _>(&mut input, &mut output).unwrap_err();
        assert!(matches!(err, TransportError::Protocol(_)), "{err}");
    }

    #[test]
    fn missing_worker_binary_is_a_typed_error() {
        let transport = ProcessTransport::new(PathBuf::from(
            "/nonexistent/encore-shard-worker-for-this-test",
        ));
        let spec = TinySpec::exact(10);
        match transport.run(&spec, 1, 1) {
            Err(TransportError::Spawn { .. }) => {}
            other => panic!("expected Spawn error, got {other:?}"),
        }
    }
}
