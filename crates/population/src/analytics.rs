//! Visit analytics — the §6.2 demographic report, the shared visit
//! classification, and the **single merge path** for sharded outputs.
//!
//! The paper's pilot evidence that ordinary web traffic suffices for
//! censorship measurement: 1,171 monthly visits to one academic page,
//! a long tail of countries, 16% of visitors in filtering countries,
//! and dwell times long enough for measurement tasks.
//!
//! Everything a sharded run folds back together — batch reports, rollup
//! series, whole world outcomes, collection snapshots, GeoIP databases —
//! merges through the [`Merge`] trait defined here, so the associativity
//! the shard runner relies on lives (and is property-tested) in exactly
//! one place instead of bespoke counter summing scattered across
//! `shard.rs` and `world.rs`.

use crate::batch::BatchReport;
use crate::driver::VisitRecord;
use crate::world::WorldOutcome;
use encore::collection::CollectionSnapshot;
use encore::geo::GeoDb;
use encore::system::VisitOutcome;
use encore::tasks::TaskOutcome;
use netsim::geo::CountryCode;
use serde::{Deserialize, Serialize};
use sim_core::{merge_time_ordered, SimDuration, SimTime};
use std::collections::BTreeMap;

/// The aggregate facts one visit contributes to a report — the single
/// source of truth for how a [`VisitOutcome`] classifies. Every consumer
/// (the per-visit [`Analytics`], the batch driver's counters, the world
/// engine) derives its numbers from this one function, so "what counts
/// as a loaded origin / an attempted measurement / a blocked task" can
/// never drift between drivers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisitTally {
    /// The origin page itself loaded.
    pub origin_loaded: bool,
    /// The client obtained at least one measurement task.
    pub got_task: bool,
    /// The visit attempted at least one measurement (executed ≥ 1 task).
    pub attempted_measurement: bool,
    /// Tasks executed during the visit.
    pub tasks_executed: u64,
    /// Executed tasks whose cross-origin resource loaded (the target was
    /// reachable: the "ok" classification).
    pub tasks_succeeded: u64,
    /// Executed tasks whose resource failed to load — the observable
    /// signal a censor (or an unlucky network) produces; the detector,
    /// not the client, decides which ("blocked" vs "error" is a
    /// statistical verdict, §7.2).
    pub tasks_failed: u64,
    /// Init beacons that reached the collection server.
    pub inits_delivered: u64,
    /// Results that reached the collection server.
    pub results_delivered: u64,
}

/// Classify one visit's outcome. See [`VisitTally`].
pub fn tally_outcome(outcome: &VisitOutcome) -> VisitTally {
    let succeeded = outcome
        .executed
        .iter()
        .filter(|(_, exec)| exec.outcome == TaskOutcome::Success)
        .count() as u64;
    let executed = outcome.executed.len() as u64;
    VisitTally {
        origin_loaded: outcome.origin_loaded,
        got_task: outcome.got_task,
        attempted_measurement: executed > 0,
        tasks_executed: executed,
        tasks_succeeded: succeeded,
        tasks_failed: executed - succeeded,
        inits_delivered: outcome.inits_delivered as u64,
        results_delivered: outcome.results_delivered as u64,
    }
}

/// One periodic rollup record: how far a world run had progressed when
/// the rollup event fired.
///
/// Serialization is canonical: fields serialize in declaration order
/// (`at`, `visits`, `collected`), pinned by a unit test, so golden
/// snapshots can cover rollup series byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rollup {
    /// When the rollup fired.
    pub at: SimTime,
    /// Visits executed so far.
    pub visits: u64,
    /// Records in the collection store so far.
    pub collected: usize,
}

/// A time-ordered rollup series with a stable serialized form (a JSON
/// array of canonical [`Rollup`] objects) and an associative merge.
///
/// Merging treats each series as a step function that is 0 before its
/// first sample and holds its last value after its final sample: the
/// merged series samples the *sum* of the step functions at the union of
/// the sample times. Broadcast rollup schedules fire at the same instants
/// on every shard, so in practice this is pointwise summing — the
/// carry-forward only matters at the tail, where shards whose arrivals
/// ran out early stop rescheduling rollups before their siblings do.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RollupSeries(pub Vec<Rollup>);

impl RollupSeries {
    /// Number of rollups in the series.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate over the rollups in firing order.
    pub fn iter(&self) -> std::slice::Iter<'_, Rollup> {
        self.0.iter()
    }
}

impl std::ops::Deref for RollupSeries {
    type Target = [Rollup];
    fn deref(&self) -> &[Rollup] {
        &self.0
    }
}

impl<'a> IntoIterator for &'a RollupSeries {
    type Item = &'a Rollup;
    type IntoIter = std::slice::Iter<'a, Rollup>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// The fold of a set of evicted (closed) rollup points — what remains
/// of a rollup series after windowed eviction. Rollup counters are
/// cumulative, so the fold needs only the number of points folded away
/// and the last point's values; prepending the fold's `last` to the
/// resident tail reconstructs the step function the full series would
/// have sampled from that point on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RollupFold {
    /// Rollup points folded (evicted) into this summary.
    pub points: u64,
    /// The most recent evicted point.
    pub last: Option<Rollup>,
}

impl RollupFold {
    /// Fold one more (later) rollup point in.
    pub fn absorb(&mut self, r: Rollup) {
        debug_assert!(
            self.last.is_none_or(|l| l.at <= r.at),
            "folds are time-ordered"
        );
        self.points += 1;
        self.last = Some(r);
    }

    /// Fold an entire series (the end-of-run equivalent the windowed
    /// fold-and-evict is property-tested against).
    pub fn of_series(rollups: &[Rollup]) -> RollupFold {
        let mut fold = RollupFold::default();
        for &r in rollups {
            fold.absorb(r);
        }
        fold
    }
}

impl Merge for RollupFold {
    /// Shards evict on the same broadcast rollup schedule, so `points`
    /// agree and merge by max; `last` values are cumulative per-shard
    /// counters sampled at the latest evicted instant, so they sum (a
    /// shard whose arrivals ran out early carries its final value
    /// forward, matching [`RollupSeries`]'s step-function merge).
    fn merge(self, other: RollupFold) -> RollupFold {
        let last = match (self.last, other.last) {
            (Some(a), Some(b)) => Some(Rollup {
                at: a.at.max(b.at),
                visits: a.visits + b.visits,
                collected: a.collected + b.collected,
            }),
            (a, b) => a.or(b),
        };
        RollupFold {
            points: self.points.max(other.points),
            last,
        }
    }
}

/// A rollup series that keeps only the trailing `window` points
/// resident, folding older points into a [`RollupFold`] as new ones
/// arrive — the engine's streaming-mode replacement for the unbounded
/// [`RollupSeries`], making peak resident rollups O(window) instead of
/// O(days).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowedRollups {
    window: usize,
    resident: std::collections::VecDeque<Rollup>,
    folded: RollupFold,
}

impl WindowedRollups {
    /// Keep at most `window` rollup points resident (min 1).
    pub fn new(window: usize) -> WindowedRollups {
        WindowedRollups {
            window: window.max(1),
            resident: std::collections::VecDeque::new(),
            folded: RollupFold::default(),
        }
    }

    /// Append a rollup, evicting the oldest resident point into the
    /// fold if the window is full.
    pub fn push(&mut self, r: Rollup) {
        self.resident.push_back(r);
        while self.resident.len() > self.window {
            let evicted = self.resident.pop_front().expect("non-empty");
            self.folded.absorb(evicted);
        }
    }

    /// The resident (most recent) points, oldest first.
    pub fn resident(&self) -> impl Iterator<Item = &Rollup> {
        self.resident.iter()
    }

    /// Resident point count (≤ window).
    pub fn resident_len(&self) -> usize {
        self.resident.len()
    }

    /// The fold of everything evicted so far.
    pub fn folded(&self) -> RollupFold {
        self.folded
    }

    /// Decompose into the resident tail (as a series) and the fold.
    pub fn into_parts(self) -> (RollupSeries, RollupFold) {
        (
            RollupSeries(self.resident.into_iter().collect()),
            self.folded,
        )
    }
}

/// Streaming-mode summary of a world run: what the engine reports
/// instead of unbounded per-day state. Rides the `FINAL` transport
/// frame next to the exact-mode counters; absent (and unserialized) in
/// exact mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamSummary {
    /// Resident rollup window (points kept in full).
    pub window: u64,
    /// Fold of the evicted rollup points.
    pub evicted: RollupFold,
    /// Collection-server per-cause drop accounting.
    pub drops: encore::streaming::DropCounters,
    /// Submissions the collection server accepted.
    pub accepted: u64,
}

impl Merge for StreamSummary {
    fn merge(self, other: StreamSummary) -> StreamSummary {
        let mut drops = self.drops;
        drops.merge(&other.drops);
        StreamSummary {
            window: self.window.max(other.window),
            evicted: self.evicted.merge(other.evicted),
            drops,
            accepted: self.accepted + other.accepted,
        }
    }
}

/// An associative combine for shard outputs.
///
/// Laws (property-tested in `crates/population/tests/prop.rs`):
/// `merge` must be associative, and for counter-like types commutative
/// with the type's `Default` as identity. The shard runner folds
/// per-shard values **in shard-index order**, so order-sensitive types
/// (like time-ordered visit logs, where equal timestamps keep
/// lower-shard entries first) still merge deterministically.
pub trait Merge: Sized {
    /// Combine two values, consuming both.
    fn merge(self, other: Self) -> Self;
}

/// Fold an iterator of shard outputs in iteration order through
/// [`Merge`]. Returns `None` for an empty iterator.
pub fn merge_in_order<T: Merge>(items: impl IntoIterator<Item = T>) -> Option<T> {
    let mut it = items.into_iter();
    let first = it.next()?;
    Some(it.fold(first, Merge::merge))
}

impl Merge for BatchReport {
    /// Counters add; spans take the maximum (shards run concurrently
    /// over the same simulated window, so the union's span is the
    /// longest shard's, not the sum).
    fn merge(mut self, other: BatchReport) -> BatchReport {
        self.visits += other.visits;
        self.origin_loads += other.origin_loads;
        self.visits_with_tasks += other.visits_with_tasks;
        self.tasks_executed += other.tasks_executed;
        self.results_delivered += other.results_delivered;
        self.clients_created += other.clients_created;
        self.clients_reused += other.clients_reused;
        self.dns_cache_hits += other.dns_cache_hits;
        self.connections_reused += other.connections_reused;
        self.session_fetches += other.session_fetches;
        self.sim_span = self.sim_span.max(other.sim_span);
        self
    }
}

impl Merge for RollupSeries {
    fn merge(self, other: RollupSeries) -> RollupSeries {
        if other.is_empty() {
            return self;
        }
        if self.is_empty() {
            return other;
        }
        let (a, b) = (self.0, other.0);
        let mut out = Vec::with_capacity(a.len().max(b.len()));
        let (mut i, mut j) = (0usize, 0usize);
        let (mut last_a, mut last_b): (Option<Rollup>, Option<Rollup>) = (None, None);
        while i < a.len() || j < b.len() {
            let ta = a.get(i).map(|r| r.at);
            let tb = b.get(j).map(|r| r.at);
            let t = match (ta, tb) {
                (Some(x), Some(y)) => x.min(y),
                (Some(x), None) => x,
                (None, Some(y)) => y,
                (None, None) => unreachable!("loop guard"),
            };
            if ta == Some(t) {
                last_a = Some(a[i]);
                i += 1;
            }
            if tb == Some(t) {
                last_b = Some(b[j]);
                j += 1;
            }
            out.push(Rollup {
                at: t,
                visits: last_a.map_or(0, |r| r.visits) + last_b.map_or(0, |r| r.visits),
                collected: last_a.map_or(0, |r| r.collected) + last_b.map_or(0, |r| r.collected),
            });
        }
        RollupSeries(out)
    }
}

impl Merge for WorldOutcome {
    /// Merge two shards' world outcomes: reports and rollup series merge
    /// through their own [`Merge`] impls, visit logs interleave by
    /// arrival time (equal times keep the left/lower shard first), and
    /// `policy_changes_applied` and `control_signals_applied` —
    /// *control-plane* facts replicated on every shard by the broadcast,
    /// not additive counters — merge by maximum (shards agree on them
    /// whenever they replayed the same control schedule). Streaming
    /// summaries, when present, merge through [`StreamSummary`]'s impl.
    fn merge(self, other: WorldOutcome) -> WorldOutcome {
        let streaming = match (self.streaming, other.streaming) {
            (Some(a), Some(b)) => Some(a.merge(b)),
            (a, b) => a.or(b),
        };
        WorldOutcome {
            log: merge_time_ordered(self.log, other.log, |v| v.at),
            report: self.report.merge(&other.report),
            rollups: self.rollups.merge(other.rollups),
            policy_changes_applied: self
                .policy_changes_applied
                .max(other.policy_changes_applied),
            control_signals_applied: self
                .control_signals_applied
                .max(other.control_signals_applied),
            streaming,
        }
    }
}

impl Merge for CollectionSnapshot {
    fn merge(self, other: CollectionSnapshot) -> CollectionSnapshot {
        CollectionSnapshot::merge_owned(self, other)
    }
}

impl Merge for GeoDb {
    fn merge(self, other: GeoDb) -> GeoDb {
        GeoDb::merge(self, &other)
    }
}

/// Aggregated analytics over a visit log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Analytics {
    /// Total visits.
    pub total_visits: usize,
    /// Visits per country, descending.
    pub by_country: Vec<(CountryCode, usize)>,
    /// Visits that were automated traffic.
    pub crawler_visits: usize,
    /// Visits that attempted at least one measurement task.
    pub attempted_measurement: usize,
    /// Fraction of human visits dwelling longer than 10 seconds.
    pub frac_over_10s: f64,
    /// Fraction of human visits dwelling longer than 60 seconds.
    pub frac_over_60s: f64,
}

impl Analytics {
    /// Compute analytics from a visit log.
    pub fn from_visits(visits: &[VisitRecord]) -> Analytics {
        let mut by_country: BTreeMap<CountryCode, usize> = BTreeMap::new();
        let mut crawler_visits = 0;
        let mut attempted = 0;
        let mut humans = 0usize;
        let mut over10 = 0usize;
        let mut over60 = 0usize;
        for v in visits {
            *by_country.entry(v.country).or_default() += 1;
            if v.is_crawler {
                crawler_visits += 1;
            } else {
                humans += 1;
                if v.dwell > SimDuration::from_secs(10) {
                    over10 += 1;
                }
                if v.dwell > SimDuration::from_secs(60) {
                    over60 += 1;
                }
            }
            if tally_outcome(&v.outcome).attempted_measurement {
                attempted += 1;
            }
        }
        let mut by_country: Vec<_> = by_country.into_iter().collect();
        by_country.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Analytics {
            total_visits: visits.len(),
            by_country,
            crawler_visits,
            attempted_measurement: attempted,
            frac_over_10s: if humans == 0 {
                0.0
            } else {
                over10 as f64 / humans as f64
            },
            frac_over_60s: if humans == 0 {
                0.0
            } else {
                over60 as f64 / humans as f64
            },
        }
    }

    /// Number of countries with more than `threshold` visits.
    pub fn countries_with_more_than(&self, threshold: usize) -> usize {
        self.by_country
            .iter()
            .filter(|(_, n)| *n > threshold)
            .count()
    }

    /// Fraction of all visits from the given set of countries.
    pub fn fraction_from(&self, countries: &[CountryCode]) -> f64 {
        if self.total_visits == 0 {
            return 0.0;
        }
        let n: usize = self
            .by_country
            .iter()
            .filter(|(c, _)| countries.contains(c))
            .map(|(_, n)| n)
            .sum();
        n as f64 / self.total_visits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore::system::VisitOutcome;
    use netsim::geo::country;
    use sim_core::SimTime;

    fn visit(cc: &str, dwell_s: u64, crawler: bool, ran_task: bool) -> VisitRecord {
        let mut outcome = VisitOutcome {
            origin_loaded: true,
            got_task: ran_task,
            executed: Vec::new(),
            inits_delivered: 0,
            results_delivered: 0,
        };
        if ran_task {
            outcome.executed.push((
                encore::tasks::MeasurementTask {
                    id: encore::tasks::MeasurementId(1),
                    spec: encore::tasks::TaskSpec::Image {
                        url: "http://t/favicon.ico".into(),
                    },
                },
                encore::tasks::TaskExecution {
                    outcome: encore::tasks::TaskOutcome::Success,
                    elapsed: SimDuration::from_millis(200),
                    executed_untrusted_code: false,
                    congested: false,
                },
            ));
        }
        VisitRecord {
            at: SimTime::ZERO,
            origin_index: 0,
            country: country(cc),
            dwell: SimDuration::from_secs(dwell_s),
            is_crawler: crawler,
            outcome,
        }
    }

    #[test]
    fn aggregates_match_hand_counts() {
        let visits = vec![
            visit("US", 5, false, false),
            visit("US", 30, false, true),
            visit("PK", 120, false, true),
            visit("US", 2, true, false),
        ];
        let a = Analytics::from_visits(&visits);
        assert_eq!(a.total_visits, 4);
        assert_eq!(a.crawler_visits, 1);
        assert_eq!(a.attempted_measurement, 2);
        assert_eq!(a.by_country[0], (country("US"), 3));
        // Humans: 3; over 10s: 2; over 60s: 1.
        assert!((a.frac_over_10s - 2.0 / 3.0).abs() < 1e-9);
        assert!((a.frac_over_60s - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn country_threshold_counting() {
        let mut visits = Vec::new();
        for _ in 0..20 {
            visits.push(visit("US", 30, false, true));
        }
        for cc in ["PK", "CN", "IN"] {
            for _ in 0..11 {
                visits.push(visit(cc, 30, false, true));
            }
        }
        visits.push(visit("DE", 30, false, true));
        let a = Analytics::from_visits(&visits);
        assert_eq!(a.countries_with_more_than(10), 4);
        let frac = a.fraction_from(&[country("PK"), country("CN"), country("IN")]);
        assert!((frac - 33.0 / 54.0).abs() < 1e-9);
    }

    #[test]
    fn tally_classifies_success_and_failure() {
        let ok = visit("US", 30, false, true);
        let t = tally_outcome(&ok.outcome);
        assert!(t.origin_loaded && t.got_task && t.attempted_measurement);
        assert_eq!(
            (t.tasks_executed, t.tasks_succeeded, t.tasks_failed),
            (1, 1, 0)
        );

        let mut blocked = visit("PK", 30, false, true);
        blocked.outcome.executed[0].1.outcome = encore::tasks::TaskOutcome::Failure;
        let t = tally_outcome(&blocked.outcome);
        assert_eq!(
            (t.tasks_executed, t.tasks_succeeded, t.tasks_failed),
            (1, 0, 1)
        );

        let idle = visit("US", 1, false, false);
        let t = tally_outcome(&idle.outcome);
        assert!(!t.attempted_measurement);
        assert_eq!(t.tasks_executed, 0);
    }

    fn roll(at_s: u64, visits: u64, collected: usize) -> Rollup {
        Rollup {
            at: SimTime::from_secs(at_s),
            visits,
            collected,
        }
    }

    #[test]
    fn rollup_serialization_is_canonical() {
        // Golden snapshots depend on this exact byte layout: field order
        // `at`, `visits`, `collected`, series as a plain JSON array.
        let series = RollupSeries(vec![roll(86_400, 12, 7)]);
        let json = serde_json::to_string(&series).unwrap();
        assert_eq!(json, r#"[{"at":86400000000,"visits":12,"collected":7}]"#);
        let back: RollupSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back, series);
    }

    #[test]
    fn rollup_series_merge_sums_pointwise() {
        let a = RollupSeries(vec![roll(10, 5, 2), roll(20, 9, 4)]);
        let b = RollupSeries(vec![roll(10, 3, 1), roll(20, 6, 2)]);
        let m = a.merge(b);
        assert_eq!(m, RollupSeries(vec![roll(10, 8, 3), roll(20, 15, 6)]));
    }

    #[test]
    fn rollup_series_merge_carries_forward_finished_shards() {
        // Shard A's arrivals ran out after t=20; its last counters must
        // still contribute to the union at t=30.
        let a = RollupSeries(vec![roll(10, 5, 2), roll(20, 9, 4)]);
        let b = RollupSeries(vec![roll(10, 3, 1), roll(20, 6, 2), roll(30, 8, 3)]);
        let m = a.merge(b);
        assert_eq!(
            m,
            RollupSeries(vec![roll(10, 8, 3), roll(20, 15, 6), roll(30, 17, 7)])
        );
    }

    #[test]
    fn rollup_series_merge_is_associative_with_identity() {
        let a = RollupSeries(vec![roll(10, 1, 1), roll(25, 2, 2)]);
        let b = RollupSeries(vec![roll(10, 10, 0), roll(20, 20, 5)]);
        let c = RollupSeries(vec![roll(5, 7, 7)]);
        let left = a.clone().merge(b.clone()).merge(c.clone());
        let right = a.clone().merge(b.merge(c));
        assert_eq!(left, right);
        assert_eq!(a.clone().merge(RollupSeries::default()), a);
        assert_eq!(RollupSeries::default().merge(a.clone()), a);
    }

    #[test]
    fn world_outcome_merge_interleaves_logs_and_maxes_policy_count() {
        let v = |at_s: u64, cc: &str| {
            let mut rec = visit(cc, 30, false, false);
            rec.at = SimTime::from_secs(at_s);
            rec
        };
        let report_a = BatchReport {
            visits: 2,
            ..BatchReport::default()
        };
        let report_b = BatchReport {
            visits: 1,
            ..BatchReport::default()
        };
        let a = WorldOutcome {
            log: vec![v(1, "US"), v(5, "US")],
            report: report_a,
            rollups: RollupSeries(vec![roll(10, 2, 0)]),
            policy_changes_applied: 2,
            control_signals_applied: 3,
            streaming: None,
        };
        let b = WorldOutcome {
            log: vec![v(3, "TR")],
            report: report_b,
            rollups: RollupSeries(vec![roll(10, 1, 0)]),
            policy_changes_applied: 2,
            control_signals_applied: 3,
            streaming: None,
        };
        let m = a.merge(b);
        let order: Vec<u64> = m.log.iter().map(|r| r.at.as_secs()).collect();
        assert_eq!(order, vec![1, 3, 5]);
        assert_eq!(m.report.visits, 3);
        assert_eq!(m.rollups, RollupSeries(vec![roll(10, 3, 0)]));
        assert_eq!(m.policy_changes_applied, 2);
        assert_eq!(m.control_signals_applied, 3);
    }

    #[test]
    fn empty_log_is_all_zero() {
        let a = Analytics::from_visits(&[]);
        assert_eq!(a.total_visits, 0);
        assert_eq!(a.frac_over_10s, 0.0);
        assert_eq!(a.fraction_from(&[country("US")]), 0.0);
    }

    #[test]
    fn windowed_rollups_fold_equals_end_of_run_fold() {
        let points: Vec<Rollup> = (1..=10).map(|i| roll(i * 5, i * 3, i as usize)).collect();
        let mut windowed = WindowedRollups::new(3);
        for &r in &points {
            windowed.push(r);
        }
        assert_eq!(windowed.resident_len(), 3);
        let (resident, fold) = windowed.clone().into_parts();
        assert_eq!(resident.0, points[7..]);
        // Fold of the evicted prefix == folding those same points
        // directly: eviction order is arrival order.
        assert_eq!(fold, RollupFold::of_series(&points[..7]));
        // Resident tail + fold reconstructs the full series' fold.
        let mut total = fold;
        for r in windowed.resident() {
            total.absorb(*r);
        }
        assert_eq!(total, RollupFold::of_series(&points));
    }

    #[test]
    fn rollup_fold_merge_is_associative_with_identity() {
        let f = |points: &[Rollup]| RollupFold::of_series(points);
        let a = f(&[roll(10, 4, 1), roll(20, 9, 3)]);
        let b = f(&[roll(10, 2, 0), roll(20, 5, 1)]);
        let c = f(&[roll(10, 1, 1)]);
        assert_eq!(a.merge(b).merge(c), a.merge(b.merge(c)));
        let id = RollupFold::default();
        assert_eq!(a.merge(id), a);
        assert_eq!(id.merge(a), a);
        // Same rollup schedule on both shards: points agree (max), the
        // last evicted point's cumulative counters sum.
        let m = a.merge(b);
        assert_eq!(m.points, 2);
        assert_eq!(m.last, Some(roll(20, 14, 4)));
        // A shard that stopped evicting earlier carries its last value
        // forward, like RollupSeries' step-function merge tail.
        let m = a.merge(c);
        assert_eq!(m.points, 2);
        assert_eq!(m.last, Some(roll(20, 10, 4)));
    }

    #[test]
    fn stream_summary_merges_drops_and_accepted_additively() {
        let a = StreamSummary {
            window: 8,
            evicted: RollupFold::of_series(&[roll(5, 2, 1)]),
            drops: encore::streaming::DropCounters {
                queue_full: 3,
                queue_full_congested: 1,
                expired: 2,
                duplicate: 4,
            },
            accepted: 100,
        };
        let b = StreamSummary {
            window: 8,
            evicted: RollupFold::of_series(&[roll(5, 1, 0)]),
            drops: encore::streaming::DropCounters {
                queue_full: 1,
                ..Default::default()
            },
            accepted: 50,
        };
        let m = a.merge(b);
        assert_eq!(m.accepted, 150);
        assert_eq!(m.drops.queue_full, 4);
        assert_eq!(m.drops.duplicate, 4);
        assert_eq!(m.evicted.last, Some(roll(5, 3, 1)));
        // Option<StreamSummary> on WorldOutcome: one-sided summaries
        // survive a merge with an exact-mode shard.
        let out = |s: Option<StreamSummary>| WorldOutcome {
            log: Vec::new(),
            report: BatchReport::default(),
            rollups: RollupSeries::default(),
            policy_changes_applied: 0,
            control_signals_applied: 0,
            streaming: s,
        };
        let merged = out(Some(a)).merge(out(None));
        assert_eq!(merged.streaming, Some(a));
        let merged = out(Some(a)).merge(out(Some(b)));
        assert_eq!(merged.streaming, Some(m));
    }
}
