//! Visit analytics — the §6.2 demographic report.
//!
//! The paper's pilot evidence that ordinary web traffic suffices for
//! censorship measurement: 1,171 monthly visits to one academic page,
//! a long tail of countries, 16% of visitors in filtering countries,
//! and dwell times long enough for measurement tasks.

use crate::driver::VisitRecord;
use encore::system::VisitOutcome;
use encore::tasks::TaskOutcome;
use netsim::geo::CountryCode;
use serde::{Deserialize, Serialize};
use sim_core::SimDuration;
use std::collections::BTreeMap;

/// The aggregate facts one visit contributes to a report — the single
/// source of truth for how a [`VisitOutcome`] classifies. Every consumer
/// (the per-visit [`Analytics`], the batch driver's counters, the world
/// engine) derives its numbers from this one function, so "what counts
/// as a loaded origin / an attempted measurement / a blocked task" can
/// never drift between drivers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisitTally {
    /// The origin page itself loaded.
    pub origin_loaded: bool,
    /// The client obtained at least one measurement task.
    pub got_task: bool,
    /// The visit attempted at least one measurement (executed ≥ 1 task).
    pub attempted_measurement: bool,
    /// Tasks executed during the visit.
    pub tasks_executed: u64,
    /// Executed tasks whose cross-origin resource loaded (the target was
    /// reachable: the "ok" classification).
    pub tasks_succeeded: u64,
    /// Executed tasks whose resource failed to load — the observable
    /// signal a censor (or an unlucky network) produces; the detector,
    /// not the client, decides which ("blocked" vs "error" is a
    /// statistical verdict, §7.2).
    pub tasks_failed: u64,
    /// Init beacons that reached the collection server.
    pub inits_delivered: u64,
    /// Results that reached the collection server.
    pub results_delivered: u64,
}

/// Classify one visit's outcome. See [`VisitTally`].
pub fn tally_outcome(outcome: &VisitOutcome) -> VisitTally {
    let succeeded = outcome
        .executed
        .iter()
        .filter(|(_, exec)| exec.outcome == TaskOutcome::Success)
        .count() as u64;
    let executed = outcome.executed.len() as u64;
    VisitTally {
        origin_loaded: outcome.origin_loaded,
        got_task: outcome.got_task,
        attempted_measurement: executed > 0,
        tasks_executed: executed,
        tasks_succeeded: succeeded,
        tasks_failed: executed - succeeded,
        inits_delivered: outcome.inits_delivered as u64,
        results_delivered: outcome.results_delivered as u64,
    }
}

/// Aggregated analytics over a visit log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Analytics {
    /// Total visits.
    pub total_visits: usize,
    /// Visits per country, descending.
    pub by_country: Vec<(CountryCode, usize)>,
    /// Visits that were automated traffic.
    pub crawler_visits: usize,
    /// Visits that attempted at least one measurement task.
    pub attempted_measurement: usize,
    /// Fraction of human visits dwelling longer than 10 seconds.
    pub frac_over_10s: f64,
    /// Fraction of human visits dwelling longer than 60 seconds.
    pub frac_over_60s: f64,
}

impl Analytics {
    /// Compute analytics from a visit log.
    pub fn from_visits(visits: &[VisitRecord]) -> Analytics {
        let mut by_country: BTreeMap<CountryCode, usize> = BTreeMap::new();
        let mut crawler_visits = 0;
        let mut attempted = 0;
        let mut humans = 0usize;
        let mut over10 = 0usize;
        let mut over60 = 0usize;
        for v in visits {
            *by_country.entry(v.country).or_default() += 1;
            if v.is_crawler {
                crawler_visits += 1;
            } else {
                humans += 1;
                if v.dwell > SimDuration::from_secs(10) {
                    over10 += 1;
                }
                if v.dwell > SimDuration::from_secs(60) {
                    over60 += 1;
                }
            }
            if tally_outcome(&v.outcome).attempted_measurement {
                attempted += 1;
            }
        }
        let mut by_country: Vec<_> = by_country.into_iter().collect();
        by_country.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Analytics {
            total_visits: visits.len(),
            by_country,
            crawler_visits,
            attempted_measurement: attempted,
            frac_over_10s: if humans == 0 {
                0.0
            } else {
                over10 as f64 / humans as f64
            },
            frac_over_60s: if humans == 0 {
                0.0
            } else {
                over60 as f64 / humans as f64
            },
        }
    }

    /// Number of countries with more than `threshold` visits.
    pub fn countries_with_more_than(&self, threshold: usize) -> usize {
        self.by_country
            .iter()
            .filter(|(_, n)| *n > threshold)
            .count()
    }

    /// Fraction of all visits from the given set of countries.
    pub fn fraction_from(&self, countries: &[CountryCode]) -> f64 {
        if self.total_visits == 0 {
            return 0.0;
        }
        let n: usize = self
            .by_country
            .iter()
            .filter(|(c, _)| countries.contains(c))
            .map(|(_, n)| n)
            .sum();
        n as f64 / self.total_visits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore::system::VisitOutcome;
    use netsim::geo::country;
    use sim_core::SimTime;

    fn visit(cc: &str, dwell_s: u64, crawler: bool, ran_task: bool) -> VisitRecord {
        let mut outcome = VisitOutcome {
            origin_loaded: true,
            got_task: ran_task,
            executed: Vec::new(),
            inits_delivered: 0,
            results_delivered: 0,
        };
        if ran_task {
            outcome.executed.push((
                encore::tasks::MeasurementTask {
                    id: encore::tasks::MeasurementId(1),
                    spec: encore::tasks::TaskSpec::Image {
                        url: "http://t/favicon.ico".into(),
                    },
                },
                encore::tasks::TaskExecution {
                    outcome: encore::tasks::TaskOutcome::Success,
                    elapsed: SimDuration::from_millis(200),
                    executed_untrusted_code: false,
                },
            ));
        }
        VisitRecord {
            at: SimTime::ZERO,
            origin_index: 0,
            country: country(cc),
            dwell: SimDuration::from_secs(dwell_s),
            is_crawler: crawler,
            outcome,
        }
    }

    #[test]
    fn aggregates_match_hand_counts() {
        let visits = vec![
            visit("US", 5, false, false),
            visit("US", 30, false, true),
            visit("PK", 120, false, true),
            visit("US", 2, true, false),
        ];
        let a = Analytics::from_visits(&visits);
        assert_eq!(a.total_visits, 4);
        assert_eq!(a.crawler_visits, 1);
        assert_eq!(a.attempted_measurement, 2);
        assert_eq!(a.by_country[0], (country("US"), 3));
        // Humans: 3; over 10s: 2; over 60s: 1.
        assert!((a.frac_over_10s - 2.0 / 3.0).abs() < 1e-9);
        assert!((a.frac_over_60s - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn country_threshold_counting() {
        let mut visits = Vec::new();
        for _ in 0..20 {
            visits.push(visit("US", 30, false, true));
        }
        for cc in ["PK", "CN", "IN"] {
            for _ in 0..11 {
                visits.push(visit(cc, 30, false, true));
            }
        }
        visits.push(visit("DE", 30, false, true));
        let a = Analytics::from_visits(&visits);
        assert_eq!(a.countries_with_more_than(10), 4);
        let frac = a.fraction_from(&[country("PK"), country("CN"), country("IN")]);
        assert!((frac - 33.0 / 54.0).abs() < 1e-9);
    }

    #[test]
    fn tally_classifies_success_and_failure() {
        let ok = visit("US", 30, false, true);
        let t = tally_outcome(&ok.outcome);
        assert!(t.origin_loaded && t.got_task && t.attempted_measurement);
        assert_eq!(
            (t.tasks_executed, t.tasks_succeeded, t.tasks_failed),
            (1, 1, 0)
        );

        let mut blocked = visit("PK", 30, false, true);
        blocked.outcome.executed[0].1.outcome = encore::tasks::TaskOutcome::Failure;
        let t = tally_outcome(&blocked.outcome);
        assert_eq!(
            (t.tasks_executed, t.tasks_succeeded, t.tasks_failed),
            (1, 0, 1)
        );

        let idle = visit("US", 1, false, false);
        let t = tally_outcome(&idle.outcome);
        assert!(!t.attempted_measurement);
        assert_eq!(t.tasks_executed, 0);
    }

    #[test]
    fn empty_log_is_all_zero() {
        let a = Analytics::from_visits(&[]);
        assert_eq!(a.total_visits, 0);
        assert_eq!(a.frac_over_10s, 0.0);
        assert_eq!(a.fraction_from(&[country("US")]), 0.0);
    }
}
