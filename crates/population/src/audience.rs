//! Audience models: who visits an origin site.
//!
//! §6.2 measured a professor's homepage for February 2014: 1,171 visits,
//! "most visitors were from the United States, but we saw more than 10
//! users from 10 other countries, and 16% of visitors reside in countries
//! with well-known Web filtering policies (India, China, Pakistan, the
//! UK, and South Korea)". Dwell: "45% of visitors remained on the page
//! for longer than 10 seconds … 35% … longer than a minute".

use browser::Engine;
use netsim::geo::{country, CountryCode, IspClass, World};
use serde::{Deserialize, Serialize};
use sim_core::dist::{Empirical, LogNormal, Sample};
use sim_core::{SimDuration, SimRng};

/// A sampled visitor profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Visitor {
    /// Where the visitor is.
    pub country: CountryCode,
    /// Their access network.
    pub isp: IspClass,
    /// Their browser.
    pub engine: Engine,
    /// How long they stay on the page.
    pub dwell: SimDuration,
    /// Whether this is automated traffic (the §6.2 "automated traffic
    /// from our campus' security scanner").
    pub is_crawler: bool,
}

impl Visitor {
    /// The self-reported user agent: crawlers announce themselves, humans
    /// report the browser actually driving the visit (which, for a
    /// returning pooled client, may differ from this visitor's sampled
    /// engine).
    pub fn user_agent(&self, client_engine: Engine) -> &'static str {
        if self.is_crawler {
            "CampusSecurityScanner/1.0 (bot)"
        } else {
            client_engine.name()
        }
    }

    /// Dwell time as the Encore snippet experiences it. Most automated
    /// clients never execute JavaScript, so they load the origin page but
    /// attempt no measurement; a 25% minority are headless browsers that
    /// do (the "erroneously contributed measurements" of §7.1).
    pub fn effective_dwell(&self, rng: &mut SimRng) -> SimDuration {
        if self.is_crawler && !rng.chance(0.25) {
            SimDuration::ZERO
        } else {
            self.dwell
        }
    }
}

/// An origin site's audience.
#[derive(Debug, Clone)]
pub struct Audience {
    /// Country mix.
    pub countries: Empirical<CountryCode>,
    /// Access-network mix.
    pub isps: Empirical<IspClass>,
    /// Browser mix.
    pub engines: Empirical<Engine>,
    /// Fraction of visits that bounce in under ten seconds.
    pub bounce_fraction: f64,
    /// Fraction of visits that stay over a minute (the rest dwell
    /// 10–60 s).
    pub long_stay_fraction: f64,
    /// Fraction of automated visits.
    pub crawler_fraction: f64,
}

impl Audience {
    /// The §6.2 academic-homepage audience.
    pub fn academic() -> Audience {
        let countries = Empirical::new(vec![
            (country("US"), 62.0),
            // The five "well-known Web filtering" countries: 16% combined.
            (country("IN"), 6.0),
            (country("CN"), 4.0),
            (country("PK"), 2.0),
            (country("GB"), 2.5),
            (country("KR"), 1.5),
            // A tail of ten-plus other countries.
            (country("DE"), 4.0),
            (country("CA"), 3.5),
            (country("FR"), 2.5),
            (country("BR"), 2.0),
            (country("JP"), 2.0),
            (country("AU"), 1.5),
            (country("NL"), 1.5),
            (country("IT"), 1.5),
            (country("ES"), 1.5),
            (country("SE"), 1.0),
            (country("IR"), 1.0),
        ]);
        Audience {
            countries,
            isps: Empirical::new(vec![
                (IspClass::Residential, 0.55),
                (IspClass::Academic, 0.30),
                (IspClass::Mobile, 0.15),
            ]),
            engines: Engine::market_distribution(),
            bounce_fraction: 0.55,
            long_stay_fraction: 0.35,
            crawler_fraction: 0.12,
        }
    }

    /// A world audience matching the world table's population weights —
    /// for the §7 full-scale runs (popular origin sites with global
    /// reach).
    pub fn world(world: &World) -> Audience {
        let countries = Empirical::new(
            world
                .iter()
                .map(|c| (c.code, c.population_weight))
                .collect(),
        );
        Audience {
            countries,
            isps: Empirical::new(vec![
                (IspClass::Residential, 0.62),
                (IspClass::Mobile, 0.28),
                (IspClass::Academic, 0.07),
                (IspClass::Datacenter, 0.03),
            ]),
            engines: Engine::market_distribution(),
            bounce_fraction: 0.50,
            long_stay_fraction: 0.30,
            crawler_fraction: 0.04,
        }
    }

    /// Sample one visitor.
    pub fn sample(&self, rng: &mut SimRng) -> Visitor {
        let dwell = self.sample_dwell(rng);
        Visitor {
            country: *self.countries.sample(rng),
            isp: *self.isps.sample(rng),
            engine: *self.engines.sample(rng),
            dwell,
            is_crawler: rng.chance(self.crawler_fraction),
        }
    }

    /// Sample a dwell time matching the §6.2 fractions: a three-way
    /// mixture of bounces (<10 s), medium stays (10–60 s), and long
    /// stays (log-normal above 60 s).
    pub fn sample_dwell(&self, rng: &mut SimRng) -> SimDuration {
        let u = rng.unit();
        if u < self.bounce_fraction {
            SimDuration::from_millis_f64(rng.range_f64(500.0, 9_500.0))
        } else if u < 1.0 - self.long_stay_fraction {
            SimDuration::from_millis_f64(rng.range_f64(10_000.0, 59_000.0))
        } else {
            let extra = LogNormal::from_median(120.0, 0.9).sample(rng); // seconds
            SimDuration::from_secs(60) + SimDuration::from_millis_f64(extra * 1_000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn academic_audience_dwell_fractions_match_paper() {
        let a = Audience::academic();
        let mut rng = SimRng::new(0xD4E11);
        let n = 20_000;
        let dwells: Vec<SimDuration> = (0..n).map(|_| a.sample_dwell(&mut rng)).collect();
        let over_10s = dwells
            .iter()
            .filter(|d| **d > SimDuration::from_secs(10))
            .count() as f64
            / n as f64;
        let over_60s = dwells
            .iter()
            .filter(|d| **d > SimDuration::from_secs(60))
            .count() as f64
            / n as f64;
        assert!((0.42..0.48).contains(&over_10s), ">10s = {over_10s}");
        assert!((0.32..0.38).contains(&over_60s), ">60s = {over_60s}");
    }

    #[test]
    fn academic_audience_is_mostly_us_with_filtering_tail() {
        let a = Audience::academic();
        let mut rng = SimRng::new(2);
        let n = 20_000;
        let mut us = 0;
        let mut filtering = 0;
        for _ in 0..n {
            let v = a.sample(&mut rng);
            if v.country == country("US") {
                us += 1;
            }
            if ["IN", "CN", "PK", "GB", "KR"]
                .iter()
                .any(|c| v.country == country(c))
            {
                filtering += 1;
            }
        }
        let us_frac = us as f64 / n as f64;
        let filt_frac = filtering as f64 / n as f64;
        assert!(us_frac > 0.5, "US fraction {us_frac}");
        // Paper: "16% of visitors reside in countries with well-known Web
        // filtering policies".
        assert!((0.12..0.20).contains(&filt_frac), "filtering {filt_frac}");
    }

    #[test]
    fn world_audience_spans_many_countries() {
        let world = World::with_long_tail(170);
        let a = Audience::world(&world);
        let mut rng = SimRng::new(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..30_000 {
            seen.insert(a.sample(&mut rng).country);
        }
        assert!(seen.len() > 100, "only {} countries sampled", seen.len());
    }

    #[test]
    fn crawler_fraction_respected() {
        let a = Audience::academic();
        let mut rng = SimRng::new(4);
        let crawlers = (0..10_000)
            .filter(|_| a.sample(&mut rng).is_crawler)
            .count();
        assert!((900..1_500).contains(&crawlers), "crawlers = {crawlers}");
    }

    #[test]
    fn visitors_get_varied_engines() {
        let a = Audience::academic();
        let mut rng = SimRng::new(5);
        let engines: std::collections::BTreeSet<_> =
            (0..1_000).map(|_| a.sample(&mut rng).engine).collect();
        assert_eq!(engines.len(), 4);
    }
}
