//! The discrete-event world engine — one queue drives everything.
//!
//! Earlier revisions of this crate ran deployments as stateless batch
//! loops: the Poisson driver materialised its whole arrival schedule up
//! front, the batch driver advanced a local clock inline, and anything
//! that had to *change the world mid-run* (a censorship block switching
//! on for an election, a scheduler re-prioritising) had no place to
//! stand. `WorldEngine` replaces those loops with a single
//! [`sim_core::queue::EventQueue`]: client arrivals, scheduled policy
//! changes ([`censor::timeline::PolicyTimeline`]), arbitrary world
//! mutations, coordination re-prioritisation, session maintenance
//! ticks, and periodic collection rollups are all [`WorldEvent`]s popped
//! from one tie-break-ordered heap. Censorship dynamics — the paper's
//! §1 point that filtering "varies over time" and must be measured
//! continuously — become first-class events instead of per-phase world
//! rebuilds.
//!
//! A whole run can also be *described* rather than imperatively
//! scheduled: a [`WorldRecipe`] is the `Send + Sync + Clone` value of a
//! run (arrival mode + timeline + mutations + re-prioritisations +
//! housekeeping cadences), replayed serially by
//! [`WorldEngine::from_recipe`] in a canonical order and executed across
//! all cores by [`crate::shard::run_sharded_world`], which broadcasts
//! the recipe's control half to every shard and thins its arrival half
//! 1/N. One description, two execution paths, provably the same
//! experiment (`tests/world_shard_equivalence.rs`).
//!
//! ## Equivalence contract
//!
//! [`crate::driver::run_deployment`] and [`crate::batch::run_visit_batch`]
//! are thin wrappers over this engine and produce **bit-identical**
//! output to their pre-engine implementations for any fixed seed
//! (`tests/world_engine_equivalence.rs` pins this against verbatim
//! copies of the legacy drivers; `tests/shard_equivalence.rs`'s golden
//! snapshot would also catch any drift). Three facts make that hold:
//!
//! * **RNG stream discipline.** Arrival gaps and visitor draws live on
//!   separate forked streams (`*-arrivals` / `*-visitors`), so moving
//!   the gap draw from "top of the loop" to "end of the previous
//!   arrival's handler" reorders draws *across* streams but never
//!   *within* one.
//! * **Tie-break parity.** The legacy Poisson driver sorted its schedule
//!   by `(time, origin_index)`; the engine schedules per-origin arrival
//!   streams in origin order, so the queue's insertion-sequence
//!   tie-break reproduces that exact order.
//! * **Neutral housekeeping.** Maintenance ticks only prune session
//!   state the fetch path would never serve
//!   ([`netsim::session::FetchSession::prune_expired`]), rollups only
//!   read, and policy/mutation/re-prioritisation events draw no RNG —
//!   none of them perturb the visit streams.
//!
//! Scheduled *configuration* events (timeline changes, mutations,
//! re-prioritisations, periodic ticks) are enqueued before the traffic
//! is, so at equal timestamps they fire **before** any arrival — a
//! block installed "at day 10" is in force for the first visit of
//! day 10.

use crate::analytics::{tally_outcome, Rollup, RollupSeries, StreamSummary, WindowedRollups};
use crate::audience::{Audience, Visitor};
use crate::batch::{BatchConfig, BatchReport};
use crate::driver::{DeploymentConfig, VisitRecord};
use browser::BrowserClient;
use censor::adaptive::ReactionPolicy;
use censor::timeline::{PolicyChange, PolicyTimeline};
use encore::coordination::SchedulingStrategy;
use encore::delivery::OriginSite;
use encore::system::{EncoreSystem, VisitOutcome};
use netsim::geo::CountryCode;
use netsim::network::Network;
use serde::{Deserialize, Serialize};
use sim_core::dist::{Exponential, Sample};
use sim_core::queue::EventQueue;
use sim_core::{SimDuration, SimRng, SimTime};
use std::sync::Arc;

/// An event on the world's queue. Same-time events fire in scheduling
/// order (the queue's insertion-sequence tie-break).
#[derive(Debug)]
pub enum WorldEvent {
    /// A pre-scheduled Poisson arrival at one origin (deployment mode).
    DeploymentArrival {
        /// Index into the system's origin list.
        origin_index: usize,
    },
    /// The `seq`-th batch visit (1-based). Its handler executes the
    /// visit, then schedules arrival `seq + 1` — the self-scheduling
    /// arrival process of classic discrete-event simulation.
    BatchArrival {
        /// 1-based visit number.
        seq: u64,
    },
    /// Apply the policy-timeline change at `index` (world mutation
    /// through the middlebox generation counter).
    PolicyChange {
        /// Index into the engine's merged policy schedule.
        index: usize,
    },
    /// Deliver the scheduled censor control signal at `index` — a
    /// [`censor::adaptive::ReactionPolicy`] step driving a stateful
    /// middlebox ([`netsim::middlebox::Middlebox::on_control`]) without
    /// reinstalling it. Control signals change middlebox *behaviour*,
    /// never coverage, so no generation bump and no pipeline recompile.
    CensorSignal {
        /// Index into the engine's merged signal schedule.
        index: usize,
    },
    /// Run the scheduled one-shot world mutation at `index`.
    Mutation {
        /// Index into the engine's mutation list.
        index: usize,
    },
    /// Swap the coordination server's scheduling strategy mid-run.
    Reprioritize {
        /// The strategy to adopt from this instant on.
        strategy: SchedulingStrategy,
    },
    /// Periodic session maintenance: prune expired DNS/keep-alive state
    /// from every pooled client, then reschedule while traffic remains.
    MaintenanceTick {
        /// Tick period.
        period: SimDuration,
    },
    /// Periodic collection rollup: snapshot progress counters, then
    /// reschedule while traffic remains.
    CollectionRollup {
        /// Rollup period.
        period: SimDuration,
    },
}

/// A one-shot scheduled world mutation.
pub type WorldMutation = Box<dyn FnOnce(&mut Network, &mut EncoreSystem)>;

/// A world mutation that can be shared across shard threads: every shard
/// applies the same function to its own private world, so it must be
/// `Fn` (reusable) and `Send + Sync` (broadcast).
pub type SharedMutation = Arc<dyn Fn(&mut Network, &mut EncoreSystem) + Send + Sync>;

/// Which arrival process a world runs — the traffic half of a
/// [`WorldRecipe`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RunMode {
    /// Poisson arrivals at every origin over a fixed span, with a full
    /// visit log ([`WorldEngine::deployment`]).
    Deployment(DeploymentConfig),
    /// A fixed number of self-scheduling arrivals with flat-memory
    /// counters ([`WorldEngine::batch`]).
    Batch(BatchConfig),
}

/// Everything a finished world run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldOutcome {
    /// Chronological per-visit records (deployment mode; empty for batch
    /// runs, which deliberately keep memory flat).
    pub log: Vec<VisitRecord>,
    /// Aggregate counters (both modes).
    pub report: BatchReport,
    /// Periodic rollups, in firing order
    /// ([`crate::analytics::RollupSeries`]: stable serialized form,
    /// associative merge).
    pub rollups: RollupSeries,
    /// How many policy-timeline changes actually mutated the world
    /// (a lift addressed to a name that was never installed is a no-op
    /// and is not counted).
    pub policy_changes_applied: usize,
    /// How many scheduled censor control signals a middlebox understood
    /// and applied (signals addressed to an uninstalled name, unknown
    /// vocabulary, or a no-op transition are not counted).
    pub control_signals_applied: usize,
    /// Streaming-mode summary — the evicted-rollup fold and the
    /// collection server's drop accounting. `None` in exact mode.
    pub streaming: Option<StreamSummary>,
}

/// Opt-in streaming analytics for a world run — the recipe half of the
/// constant-memory pipeline. The collection server trades its unbounded
/// record log for a count-min sketch, a bounded reservoir sample, and
/// per-window count matrices ([`encore::streaming`]), and the engine
/// keeps only the trailing `resident_rollups` rollup points resident,
/// folding older ones away as new ones fire.
///
/// The spec is broadcast verbatim to every shard, so `sketch_seed` —
/// which defines the sketch's hash functions and must be identical for
/// shard sketches to merge — is shard-invariant by construction. Each
/// shard's reservoir draws priorities from its own forked RNG stream;
/// reservoir merge is a union, so per-shard streams are fine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingSpec {
    /// Collection-side knobs: detection window, sketch dimensions,
    /// reservoir capacity, ingest-queue bounds, filter toggles. The
    /// window should equal the rollup cadence so windows close exactly
    /// as rollups fire.
    pub config: encore::streaming::StreamingConfig,
    /// Seed defining the sketch hash functions (shard-invariant).
    pub sketch_seed: u64,
    /// Rollup points kept resident; older points fold-and-evict.
    pub resident_rollups: usize,
}

impl StreamingSpec {
    /// A spec whose analytics window matches the given rollup cadence,
    /// with default sketch/reservoir/queue parameters.
    pub fn with_window(window: SimDuration) -> StreamingSpec {
        StreamingSpec {
            config: encore::streaming::StreamingConfig::with_window(window),
            sketch_seed: 0x5EED_5EED,
            resident_rollups: 8,
        }
    }
}

/// A `Send + Sync + Clone` description of an entire world run: the
/// arrival process plus every scheduled dynamic — the policy timeline,
/// shared world mutations, coordination re-prioritisations, maintenance
/// ticks, and rollup cadence.
///
/// One recipe drives both execution paths: [`WorldEngine::from_recipe`]
/// replays it serially, and [`crate::shard::run_sharded_world`] executes
/// it on N OS threads by broadcasting the *control* half verbatim to
/// every shard while thinning the *arrival* half 1/N
/// ([`crate::shard::shard_recipe`]). The replay order is canonical —
/// timeline, then censor reactions, then mutations, then
/// re-prioritisations, then maintenance, then rollups, each in insertion
/// order, all before any traffic — so a recipe-driven run is
/// bit-identical to the equivalent imperative `schedule_*` calls made in
/// that same order.
#[derive(Clone)]
pub struct WorldRecipe {
    pub(crate) mode: RunMode,
    pub(crate) timeline: PolicyTimeline,
    pub(crate) reactions: Vec<ReactionPolicy>,
    pub(crate) mutations: Vec<(SimTime, SharedMutation)>,
    pub(crate) reprioritizations: Vec<(SimTime, SchedulingStrategy)>,
    pub(crate) maintenance: Option<SimDuration>,
    pub(crate) rollups: Option<SimDuration>,
    pub(crate) streaming: Option<StreamingSpec>,
}

impl std::fmt::Debug for WorldRecipe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldRecipe")
            .field("mode", &self.mode)
            .field("timeline", &self.timeline)
            .field("reactions", &self.reactions)
            .field("mutations", &self.mutations.len())
            .field("reprioritizations", &self.reprioritizations)
            .field("maintenance", &self.maintenance)
            .field("rollups", &self.rollups)
            .field("streaming", &self.streaming)
            .finish()
    }
}

impl WorldRecipe {
    fn new(mode: RunMode) -> WorldRecipe {
        WorldRecipe {
            mode,
            timeline: PolicyTimeline::new(),
            reactions: Vec::new(),
            mutations: Vec::new(),
            reprioritizations: Vec::new(),
            maintenance: None,
            rollups: None,
            streaming: None,
        }
    }

    /// A deployment-mode recipe (Poisson arrivals, full visit log).
    pub fn deployment(config: DeploymentConfig) -> WorldRecipe {
        WorldRecipe::new(RunMode::Deployment(config))
    }

    /// A batch-mode recipe (fixed visit count, flat-memory counters).
    pub fn batch(config: BatchConfig) -> WorldRecipe {
        WorldRecipe::new(RunMode::Batch(config))
    }

    /// The arrival process this recipe runs.
    pub fn mode(&self) -> RunMode {
        self.mode
    }

    /// The scheduled policy timeline (control plane).
    pub fn timeline(&self) -> &PolicyTimeline {
        &self.timeline
    }

    /// Builder: set the policy timeline.
    pub fn with_timeline(mut self, timeline: PolicyTimeline) -> WorldRecipe {
        self.timeline = timeline;
        self
    }

    /// The scheduled censor reaction policies (control plane).
    pub fn reactions(&self) -> &[ReactionPolicy] {
        &self.reactions
    }

    /// Builder: append an adaptive-censor reaction policy. Like the
    /// policy timeline, reactions are control events: sharded runs
    /// broadcast them verbatim to every shard, which is what keeps
    /// *scheduled* adaptive censors verdict-invariant across shard
    /// counts.
    pub fn with_reaction(mut self, policy: ReactionPolicy) -> WorldRecipe {
        self.reactions.push(policy);
        self
    }

    /// Builder: schedule a shared one-shot world mutation at `at`.
    /// Mutations fire in insertion order at equal times.
    pub fn mutate_at(
        mut self,
        at: SimTime,
        mutation: impl Fn(&mut Network, &mut EncoreSystem) + Send + Sync + 'static,
    ) -> WorldRecipe {
        self.mutations.push((at, Arc::new(mutation)));
        self
    }

    /// Builder: schedule a coordination-strategy swap at `at`.
    pub fn reprioritize_at(mut self, at: SimTime, strategy: SchedulingStrategy) -> WorldRecipe {
        self.reprioritizations.push((at, strategy));
        self
    }

    /// Builder: run session maintenance every `period`.
    pub fn with_maintenance(mut self, period: SimDuration) -> WorldRecipe {
        self.maintenance = Some(period);
        self
    }

    /// Builder: take a collection rollup every `period`.
    pub fn with_rollups(mut self, period: SimDuration) -> WorldRecipe {
        self.rollups = Some(period);
        self
    }

    /// The streaming-analytics spec, if this recipe opts in.
    pub fn streaming(&self) -> Option<&StreamingSpec> {
        self.streaming.as_ref()
    }

    /// Builder: run with constant-memory streaming analytics. Also sets
    /// the rollup cadence to the spec's window if no cadence was chosen
    /// yet — streaming windows close as rollups fire, so a streaming run
    /// without rollups would only fold at the very end.
    pub fn with_streaming(mut self, spec: StreamingSpec) -> WorldRecipe {
        if self.rollups.is_none() {
            self.rollups = Some(spec.config.window);
        }
        self.streaming = Some(spec);
        self
    }
}

/// Mode-specific driver state.
enum Mode {
    Deployment {
        config: DeploymentConfig,
        origins: Vec<OriginSite>,
        arrivals_rng: SimRng,
        visitor_rng: SimRng,
        returning: Vec<BrowserClient>,
        log: Vec<VisitRecord>,
    },
    Batch {
        config: BatchConfig,
        origins: Vec<OriginSite>,
        weights: Vec<f64>,
        gap: Exponential,
        arrivals_rng: SimRng,
        visitor_rng: SimRng,
        pool: Vec<BrowserClient>,
    },
}

/// The event-driven world: one network, one Encore deployment, one
/// audience, and a queue of everything that will happen to them.
///
/// Construct in deployment mode ([`WorldEngine::deployment`], the §6.2
/// Poisson pilot with a full visit log) or batch mode
/// ([`WorldEngine::batch`], the flat-memory throughput driver), layer on
/// scheduled dynamics (`schedule_*`), then [`WorldEngine::run`] to
/// drain the queue. `population::shard` runs one engine per shard: the
/// builder-supplied `Network`/`EncoreSystem` and split RNG streams drop
/// straight in.
pub struct WorldEngine<'a> {
    net: &'a mut Network,
    system: &'a mut EncoreSystem,
    audience: &'a Audience,
    queue: EventQueue<WorldEvent>,
    mode: Mode,
    policy_schedule: Vec<(SimTime, PolicyChange)>,
    policy_applied: usize,
    /// Flattened reaction schedule: `(censor name, control signal)`.
    signal_schedule: Vec<(String, String)>,
    signals_applied: usize,
    mutations: Vec<Option<WorldMutation>>,
    rollups: Vec<Rollup>,
    /// Streaming mode: the spec plus the bounded rollup window that
    /// replaces `rollups`. `None` in exact mode.
    streaming: Option<(StreamingSpec, WindowedRollups)>,
    report: BatchReport,
    /// Arrival events currently in the queue; periodic events stop
    /// rescheduling once traffic is exhausted, which is what terminates
    /// the run.
    arrivals_pending: u64,
}

impl<'a> WorldEngine<'a> {
    fn new(
        net: &'a mut Network,
        system: &'a mut EncoreSystem,
        audience: &'a Audience,
        mode: Mode,
    ) -> WorldEngine<'a> {
        WorldEngine {
            net,
            system,
            audience,
            queue: EventQueue::new(),
            mode,
            policy_schedule: Vec::new(),
            policy_applied: 0,
            signal_schedule: Vec::new(),
            signals_applied: 0,
            mutations: Vec::new(),
            rollups: Vec::new(),
            streaming: None,
            report: BatchReport::default(),
            arrivals_pending: 0,
        }
    }

    /// A deployment-mode world: Poisson arrivals at every origin over
    /// `config.duration`, a returning-visitor pool, and a full visit
    /// log — the engine behind [`crate::driver::run_deployment`].
    pub fn deployment(
        net: &'a mut Network,
        system: &'a mut EncoreSystem,
        audience: &'a Audience,
        config: &DeploymentConfig,
        rng: &mut SimRng,
    ) -> WorldEngine<'a> {
        let arrivals_rng = rng.fork("deployment-arrivals");
        let visitor_rng = rng.fork("deployment-visitors");
        let origins = system.origins.clone();
        WorldEngine::new(
            net,
            system,
            audience,
            Mode::Deployment {
                config: *config,
                origins,
                arrivals_rng,
                visitor_rng,
                returning: Vec::new(),
                log: Vec::new(),
            },
        )
    }

    /// A batch-mode world: `config.visits` self-scheduling arrivals, a
    /// bounded warm-session client pool, and flat-memory counters — the
    /// engine behind [`crate::batch::run_visit_batch`].
    pub fn batch(
        net: &'a mut Network,
        system: &'a mut EncoreSystem,
        audience: &'a Audience,
        config: &BatchConfig,
        rng: &mut SimRng,
    ) -> WorldEngine<'a> {
        let arrivals_rng = rng.fork("batch-arrivals");
        let visitor_rng = rng.fork("batch-visitors");
        let origins = system.origins.clone();
        let weights: Vec<f64> = origins.iter().map(|o| o.popularity_weight).collect();
        let gap = Exponential::from_mean(config.mean_gap.as_millis_f64());
        WorldEngine::new(
            net,
            system,
            audience,
            Mode::Batch {
                config: *config,
                origins,
                weights,
                gap,
                arrivals_rng,
                visitor_rng,
                pool: Vec::new(),
            },
        )
    }

    /// Materialise a [`WorldRecipe`] against a concrete world: construct
    /// the engine in the recipe's mode, then replay the recipe's control
    /// schedules in the canonical order — timeline, censor reactions,
    /// mutations, re-prioritisations, maintenance, rollups. Equivalent
    /// imperative
    /// `schedule_*` calls in that order produce a bit-identical run, and
    /// `tests/world_shard_equivalence.rs` holds `run_sharded_world` at
    /// one shard to exactly this serial replay.
    pub fn from_recipe(
        net: &'a mut Network,
        system: &'a mut EncoreSystem,
        audience: &'a Audience,
        recipe: &WorldRecipe,
        rng: &mut SimRng,
    ) -> WorldEngine<'a> {
        let mut engine = match recipe.mode {
            RunMode::Deployment(config) => {
                WorldEngine::deployment(net, system, audience, &config, rng)
            }
            RunMode::Batch(config) => WorldEngine::batch(net, system, audience, &config, rng),
        };
        engine.schedule_timeline(recipe.timeline.clone());
        for policy in &recipe.reactions {
            engine.schedule_reactions(policy);
        }
        for (at, mutation) in &recipe.mutations {
            let mutation = mutation.clone();
            engine.schedule_mutation(*at, move |net, sys| mutation(net, sys));
        }
        for (at, strategy) in &recipe.reprioritizations {
            engine.schedule_reprioritization(*at, *strategy);
        }
        if let Some(period) = recipe.maintenance {
            engine.schedule_maintenance(period);
        }
        if let Some(period) = recipe.rollups {
            engine.schedule_rollups(period);
        }
        if let Some(spec) = &recipe.streaming {
            engine.enable_streaming(spec.clone(), rng);
        }
        engine
    }

    /// Switch this run to constant-memory streaming analytics: the
    /// collection server starts sketching instead of logging, and the
    /// engine keeps only the spec's resident rollup window, folding
    /// older points away. Must be called before any traffic arrives.
    ///
    /// `rng.fork` is a pure derivation (it consumes no parent state), so
    /// enabling streaming never perturbs the exact-mode visit streams.
    pub fn enable_streaming(&mut self, spec: StreamingSpec, rng: &mut SimRng) {
        self.system.collection.enable_streaming(
            &spec.config,
            spec.sketch_seed,
            rng.fork("streaming-reservoir"),
        );
        let windowed = WindowedRollups::new(spec.resident_rollups);
        self.streaming = Some((spec, windowed));
    }

    /// Schedule every **not-yet-applied** change of a [`PolicyTimeline`]
    /// as events on the queue — a timeline whose prefix was already
    /// replayed into the network via
    /// [`PolicyTimeline::apply_through`] contributes only its remaining
    /// entries, never a duplicate of the past. Changes scheduled for the
    /// same instant as an arrival fire before it (configuration precedes
    /// traffic at equal times).
    pub fn schedule_timeline(&mut self, timeline: PolicyTimeline) {
        let base = self.policy_schedule.len();
        for (offset, (at, change)) in timeline.entries()[timeline.applied()..].iter().enumerate() {
            self.queue.schedule(
                *at,
                WorldEvent::PolicyChange {
                    index: base + offset,
                },
            );
            self.policy_schedule.push((*at, change.clone()));
        }
    }

    /// Schedule every step of a [`ReactionPolicy`] as control-signal
    /// events on the queue: at each step's instant the engine delivers
    /// the signal to the named middlebox
    /// ([`netsim::network::Network::signal_middlebox`]). Signals
    /// scheduled for the same instant as an arrival fire before it
    /// (configuration precedes traffic at equal times), and a signal no
    /// middlebox understands is a counted-nowhere no-op — the reactive
    /// analogue of lifting an uninstalled censor.
    pub fn schedule_reactions(&mut self, policy: &ReactionPolicy) {
        for (at, reaction) in policy.steps() {
            self.schedule_control_signal(*at, policy.censor.clone(), reaction.signal());
        }
    }

    /// Schedule one raw control signal for the named middlebox at `at` —
    /// the escape hatch under [`WorldEngine::schedule_reactions`] for
    /// signal vocabularies the `censor::adaptive` ladder doesn't model.
    pub fn schedule_control_signal(&mut self, at: SimTime, censor: String, signal: String) {
        let index = self.signal_schedule.len();
        self.signal_schedule.push((censor, signal));
        self.queue.schedule(at, WorldEvent::CensorSignal { index });
    }

    /// Schedule an arbitrary one-shot world mutation at `at` — the
    /// escape hatch for dynamics the policy timeline doesn't model
    /// (standing up a collector mirror, swapping the coordination task
    /// pool, reconfiguring fault injection).
    ///
    /// The *arrival plan* is fixed at run start: the engine snapshots
    /// the origin list (and batch weights) when constructed, so
    /// mutating `system.origins` mid-run does not add or retire traffic
    /// sources — it only affects what later visits observe.
    pub fn schedule_mutation(
        &mut self,
        at: SimTime,
        mutation: impl FnOnce(&mut Network, &mut EncoreSystem) + 'static,
    ) {
        let index = self.mutations.len();
        self.mutations.push(Some(Box::new(mutation)));
        self.queue.schedule(at, WorldEvent::Mutation { index });
    }

    /// Schedule a mid-run swap of the coordination server's scheduling
    /// strategy (e.g. to [`SchedulingStrategy::CoordinatedBursts`] once
    /// a block is suspected).
    pub fn schedule_reprioritization(&mut self, at: SimTime, strategy: SchedulingStrategy) {
        self.queue
            .schedule(at, WorldEvent::Reprioritize { strategy });
    }

    /// Schedule periodic session maintenance every `period`: expired
    /// DNS entries and dead keep-alive connections are pruned from every
    /// pooled client. Behaviour-neutral (the fetch path never serves
    /// expired state); keeps month-long worlds' memory bounded.
    pub fn schedule_maintenance(&mut self, period: SimDuration) {
        assert!(period > SimDuration::ZERO, "maintenance period must be > 0");
        self.queue.schedule(
            SimTime::ZERO + period,
            WorldEvent::MaintenanceTick { period },
        );
    }

    /// Schedule periodic collection rollups every `period` — progress
    /// snapshots a longitudinal experiment reads instead of re-scanning
    /// the collection store per window.
    pub fn schedule_rollups(&mut self, period: SimDuration) {
        assert!(period > SimDuration::ZERO, "rollup period must be > 0");
        self.queue.schedule(
            SimTime::ZERO + period,
            WorldEvent::CollectionRollup { period },
        );
    }

    /// Drain the queue: run the world to completion and return what it
    /// produced.
    pub fn run(mut self) -> WorldOutcome {
        self.schedule_arrivals();
        while let Some((now, event)) = self.queue.pop() {
            match event {
                WorldEvent::DeploymentArrival { origin_index } => {
                    self.arrivals_pending -= 1;
                    self.on_deployment_arrival(now, origin_index);
                }
                WorldEvent::BatchArrival { seq } => {
                    self.arrivals_pending -= 1;
                    self.on_batch_arrival(now, seq);
                }
                WorldEvent::PolicyChange { index } => {
                    if self.policy_schedule[index].1.apply(self.net) {
                        self.policy_applied += 1;
                    }
                }
                WorldEvent::CensorSignal { index } => {
                    let (censor, signal) = &self.signal_schedule[index];
                    if self.net.signal_middlebox(censor, signal, now) {
                        self.signals_applied += 1;
                    }
                }
                WorldEvent::Mutation { index } => {
                    if let Some(mutation) = self.mutations[index].take() {
                        mutation(self.net, self.system);
                    }
                }
                WorldEvent::Reprioritize { strategy } => {
                    self.system.coordination.set_strategy(strategy);
                }
                WorldEvent::MaintenanceTick { period } => {
                    let pool = match &mut self.mode {
                        Mode::Deployment { returning, .. } => returning,
                        Mode::Batch { pool, .. } => pool,
                    };
                    for client in pool.iter_mut() {
                        client.session.prune_expired(now);
                    }
                    if self.arrivals_pending > 0 {
                        self.queue
                            .schedule(now + period, WorldEvent::MaintenanceTick { period });
                    }
                }
                WorldEvent::CollectionRollup { period } => {
                    // Streaming mode folds as time advances: every
                    // analytics window that closed before this rollup is
                    // reduced to its count matrix now, so peak resident
                    // collection state stays O(open window), not O(run).
                    if self.streaming.is_some() {
                        let alloc = &self.net.allocator;
                        self.system
                            .collection
                            .close_windows(now, |ip| alloc.country_of(ip));
                    }
                    let rollup = Rollup {
                        at: now,
                        visits: self.report.visits,
                        collected: self.system.collection.len(),
                    };
                    match &mut self.streaming {
                        Some((_, windowed)) => windowed.push(rollup),
                        None => self.rollups.push(rollup),
                    }
                    if self.arrivals_pending > 0 {
                        self.queue
                            .schedule(now + period, WorldEvent::CollectionRollup { period });
                    }
                }
            }
        }
        self.finish()
    }

    /// Enqueue the traffic. Runs after all configuration events so that
    /// same-instant ties resolve configuration-first.
    fn schedule_arrivals(&mut self) {
        match &mut self.mode {
            Mode::Deployment {
                config,
                origins,
                arrivals_rng,
                ..
            } => {
                // Per-origin Poisson streams, scheduled origin-by-origin:
                // the queue's insertion tie-break then reproduces the
                // legacy driver's (time, origin_index) sort exactly.
                for (idx, origin) in origins.iter().enumerate() {
                    let rate_per_day = config.visits_per_day_per_weight * origin.popularity_weight;
                    if rate_per_day <= 0.0 {
                        continue;
                    }
                    let mean_gap_secs = 86_400.0 / rate_per_day;
                    let gap = Exponential::from_mean(mean_gap_secs);
                    let mut t = SimTime::ZERO;
                    loop {
                        let dt = SimDuration::from_millis_f64(gap.sample(arrivals_rng) * 1_000.0);
                        t += dt;
                        if t.since(SimTime::ZERO) >= config.duration {
                            break;
                        }
                        self.queue
                            .schedule(t, WorldEvent::DeploymentArrival { origin_index: idx });
                        self.arrivals_pending += 1;
                    }
                }
            }
            Mode::Batch {
                config,
                gap,
                arrivals_rng,
                ..
            } => {
                if config.visits > 0 {
                    let t = SimTime::ZERO + SimDuration::from_millis_f64(gap.sample(arrivals_rng));
                    self.queue.schedule(t, WorldEvent::BatchArrival { seq: 1 });
                    self.arrivals_pending += 1;
                }
            }
        }
    }

    fn on_deployment_arrival(&mut self, at: SimTime, origin_index: usize) {
        let Mode::Deployment {
            config,
            origins,
            visitor_rng,
            returning,
            log,
            ..
        } = &mut self.mode
        else {
            unreachable!("deployment arrival fired in batch mode");
        };
        let (visitor, country, outcome) = execute_arrival(
            self.net,
            self.system,
            self.audience,
            &mut self.report,
            visitor_rng,
            &origins[origin_index],
            returning,
            config.returning_pool,
            config.repeat_visitor_rate,
            at,
        );
        self.report.sim_span = at.since(SimTime::ZERO);
        log.push(VisitRecord {
            at,
            origin_index,
            country,
            dwell: visitor.dwell,
            is_crawler: visitor.is_crawler,
            outcome,
        });
    }

    /// Run a *cohort* of batch arrivals. One queue pop lands here; the
    /// loop then executes consecutive arrivals inline for as long as no
    /// other scheduled event (policy change, censor signal, maintenance
    /// tick, …) is due first, yielding back to the queue — by scheduling
    /// `BatchArrival { seq + 1 }` exactly as the one-event-per-visit form
    /// did — the moment one is. Event interleaving, RNG draw order, and
    /// the simulated clock are byte-identical to popping the queue once
    /// per visit; only the per-visit heap traffic disappears.
    fn on_batch_arrival(&mut self, at: SimTime, seq: u64) {
        let Mode::Batch {
            config,
            origins,
            weights,
            gap,
            arrivals_rng,
            visitor_rng,
            pool,
        } = &mut self.mode
        else {
            unreachable!("batch arrival fired in deployment mode");
        };
        let (mut at, mut seq) = (at, seq);
        loop {
            // The span covers every drawn gap, including a final arrival
            // that halts below — matching the legacy driver's clock.
            self.report.sim_span = at.since(SimTime::ZERO);

            let Some(origin_idx) = visitor_rng.pick_weighted(weights) else {
                // All origins weightless: nothing would ever be visited,
                // so the arrival process halts here.
                return;
            };
            execute_arrival(
                self.net,
                self.system,
                self.audience,
                &mut self.report,
                visitor_rng,
                &origins[origin_idx],
                pool,
                config.client_pool,
                config.repeat_visitor_rate,
                at,
            );

            if seq >= config.visits {
                return;
            }
            let next = at + SimDuration::from_millis_f64(gap.sample(arrivals_rng));
            match self.queue.peek_time() {
                // Another event fires at or before the next arrival:
                // yield so it interleaves exactly as before. (On a time
                // tie the other event was enqueued first and still wins
                // the queue's insertion-order tie-break.)
                Some(due) if due <= next => {
                    self.queue
                        .schedule(next, WorldEvent::BatchArrival { seq: seq + 1 });
                    self.arrivals_pending += 1;
                    return;
                }
                // Queue is quiet until `next`: run the arrival inline.
                _ => {
                    at = next;
                    seq += 1;
                }
            }
        }
    }

    fn finish(self) -> WorldOutcome {
        // Streaming mode: close every still-open analytics window (the
        // tail past the last rollup) before snapshotting, then decompose
        // the bounded rollup window into its resident tail + fold.
        let (rollups, streaming) = match self.streaming {
            Some((spec, windowed)) => {
                let alloc = &self.net.allocator;
                self.system
                    .collection
                    .close_all_windows(|ip| alloc.country_of(ip));
                let (resident, evicted) = windowed.into_parts();
                let summary = StreamSummary {
                    window: spec.resident_rollups as u64,
                    evicted,
                    drops: self.system.collection.drops(),
                    accepted: self.system.collection.len() as u64,
                };
                (resident, Some(summary))
            }
            None => (RollupSeries(self.rollups), None),
        };
        let mut report = self.report;
        let log = match self.mode {
            Mode::Deployment { returning, log, .. } => {
                for client in &returning {
                    report.absorb_session(client);
                }
                log
            }
            Mode::Batch { pool, .. } => {
                for client in &pool {
                    report.absorb_session(client);
                }
                Vec::new()
            }
        };
        WorldOutcome {
            log,
            report,
            rollups,
            policy_changes_applied: self.policy_applied,
            control_signals_applied: self.signals_applied,
            streaming,
        }
    }
}

/// Execute one visit: sample the visitor, acquire a client (pooled
/// returning visitor or a fresh browser), run the Figure-2 flow, fold
/// the classified outcome into the report, and retire the client into
/// the bounded pool (banking its session stats on eviction). Shared
/// verbatim by both arrival handlers so the acquire/run/retire
/// accounting — and therefore the bit-equivalence contract — can never
/// diverge between modes. Returns what the deployment log needs: the
/// sampled visitor, the client's actual country, and the visit outcome.
#[allow(clippy::too_many_arguments)]
fn execute_arrival(
    net: &mut Network,
    system: &mut EncoreSystem,
    audience: &Audience,
    report: &mut BatchReport,
    visitor_rng: &mut SimRng,
    origin: &OriginSite,
    pool: &mut Vec<BrowserClient>,
    pool_cap: usize,
    repeat_visitor_rate: f64,
    at: SimTime,
) -> (Visitor, CountryCode, VisitOutcome) {
    let visitor = audience.sample(visitor_rng);

    // Returning visitor with a warm cache, or a fresh client.
    let reuse = !pool.is_empty() && visitor_rng.chance(repeat_visitor_rate);
    let mut client = if reuse {
        report.clients_reused += 1;
        let idx = visitor_rng.index(pool.len());
        pool.swap_remove(idx)
    } else {
        report.clients_created += 1;
        BrowserClient::new(
            net,
            visitor.country,
            visitor.isp,
            visitor.engine,
            visitor_rng,
        )
    };

    let ua = visitor.user_agent(client.engine);
    let effective_dwell = visitor.effective_dwell(visitor_rng);
    let outcome = system.run_visit(net, &mut client, origin, effective_dwell, at, ua);
    report.record_visit(&tally_outcome(&outcome));

    let country = client.host.country;
    if pool.len() < pool_cap {
        pool.push(client);
    } else {
        // Evicted client: bank its session statistics before dropping.
        report.absorb_session(&client);
    }
    (visitor, country, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::RollupFold;
    use censor::policy::{CensorPolicy, Mechanism};
    use censor::timeline::CensorSpec;
    use encore::coordination::SchedulingStrategy;
    use encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
    use netsim::geo::{country, World};
    use netsim::http::{ContentType, HttpResponse};
    use netsim::network::ConstHandler;

    fn deployment_world() -> (Network, EncoreSystem) {
        let mut net = Network::ideal(World::builtin());
        net.add_server(
            "target.example",
            country("US"),
            Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
        );
        let tasks = vec![MeasurementTask {
            id: MeasurementId(0),
            spec: TaskSpec::Image {
                url: "http://target.example/favicon.ico".into(),
            },
        }];
        let sys = EncoreSystem::deploy(
            &mut net,
            tasks,
            SchedulingStrategy::RoundRobin,
            vec![OriginSite::academic("prof.example")],
            country("US"),
        );
        (net, sys)
    }

    fn week() -> DeploymentConfig {
        DeploymentConfig {
            duration: SimDuration::from_days(7),
            visits_per_day_per_weight: 30.0,
            ..DeploymentConfig::default()
        }
    }

    #[test]
    fn neutral_events_do_not_perturb_the_visit_stream() {
        let audience = Audience::academic();
        let base = {
            let (mut net, mut sys) = deployment_world();
            let mut rng = SimRng::new(0xABBA);
            let engine = WorldEngine::deployment(&mut net, &mut sys, &audience, &week(), &mut rng);
            engine.run().log
        };
        let with_noise = {
            let (mut net, mut sys) = deployment_world();
            let mut rng = SimRng::new(0xABBA);
            let mut engine =
                WorldEngine::deployment(&mut net, &mut sys, &audience, &week(), &mut rng);
            engine.schedule_maintenance(SimDuration::from_secs(3_600));
            engine.schedule_rollups(SimDuration::from_days(1));
            engine.schedule_mutation(SimTime::from_secs(1_000), |_, _| {});
            engine.run().log
        };
        assert_eq!(
            base, with_noise,
            "maintenance/rollup/no-op events must be RNG- and behaviour-neutral"
        );
    }

    #[test]
    fn rollups_fire_periodically_and_monotonically() {
        let (mut net, mut sys) = deployment_world();
        let audience = Audience::academic();
        let mut rng = SimRng::new(7);
        let mut engine = WorldEngine::deployment(&mut net, &mut sys, &audience, &week(), &mut rng);
        engine.schedule_rollups(SimDuration::from_days(1));
        let out = engine.run();
        assert!(out.rollups.len() >= 6, "rollups: {}", out.rollups.len());
        for w in out.rollups.windows(2) {
            assert!(w[0].at < w[1].at);
            assert!(w[0].visits <= w[1].visits);
            assert!(w[0].collected <= w[1].collected);
        }
        let last = out.rollups.last().unwrap();
        assert!(last.visits <= out.report.visits);
    }

    #[test]
    fn deployment_report_tallies_match_the_log() {
        let (mut net, mut sys) = deployment_world();
        let audience = Audience::academic();
        let mut rng = SimRng::new(0x11);
        let out = WorldEngine::deployment(&mut net, &mut sys, &audience, &week(), &mut rng).run();
        assert_eq!(out.report.visits as usize, out.log.len());
        let origin_loads = out.log.iter().filter(|v| v.outcome.origin_loaded).count();
        assert_eq!(out.report.origin_loads as usize, origin_loads);
        assert_eq!(
            out.report.clients_created + out.report.clients_reused,
            out.report.visits
        );
        assert_eq!(
            out.report.sim_span,
            out.log.last().unwrap().at.since(SimTime::ZERO)
        );
    }

    #[test]
    fn timeline_events_toggle_censorship_mid_run() {
        let run = |with_block: bool| {
            let (mut net, mut sys) = deployment_world();
            let audience = Audience::academic();
            let mut rng = SimRng::new(0x70 + u64::from(with_block));
            let mut engine =
                WorldEngine::deployment(&mut net, &mut sys, &audience, &week(), &mut rng);
            if with_block {
                let spec = CensorSpec::new(
                    country("US"),
                    CensorPolicy::named("mid-run-block")
                        .block_domain("target.example", Mechanism::DnsNxDomain),
                );
                engine.schedule_timeline(
                    PolicyTimeline::new()
                        .at(SimTime::from_secs(2 * 86_400), PolicyChange::Install(spec))
                        .at(
                            SimTime::from_secs(5 * 86_400),
                            PolicyChange::Lift {
                                name: "mid-run-block".into(),
                            },
                        ),
                );
            }
            engine.run()
        };
        let blocked = run(true);
        assert_eq!(blocked.policy_changes_applied, 2);
        let failed_mid = blocked
            .log
            .iter()
            .filter(|v| {
                let day = v.at.as_secs() / 86_400;
                (2..5).contains(&day) && tally_outcome(&v.outcome).tasks_failed > 0
            })
            .count();
        assert!(failed_mid > 5, "block window saw {failed_mid} failures");
        // Outside the window the target stays reachable.
        let failed_outside = blocked
            .log
            .iter()
            .filter(|v| {
                let day = v.at.as_secs() / 86_400;
                !(2..6).contains(&day) && tally_outcome(&v.outcome).tasks_failed > 0
            })
            .count();
        assert_eq!(failed_outside, 0, "failures outside the block window");

        let open = run(false);
        assert_eq!(open.policy_changes_applied, 0);
        assert!(open
            .log
            .iter()
            .all(|v| tally_outcome(&v.outcome).tasks_failed == 0));
    }

    #[test]
    fn pre_applied_timeline_prefix_is_not_replayed() {
        let spec = || {
            CensorSpec::new(
                country("US"),
                CensorPolicy::named("pre-run-block")
                    .block_domain("target.example", Mechanism::DnsNxDomain),
            )
        };
        let timeline = || {
            PolicyTimeline::new()
                .at(SimTime::ZERO, PolicyChange::Install(spec()))
                .at(
                    SimTime::from_secs(3 * 86_400),
                    PolicyChange::Lift {
                        name: "pre-run-block".into(),
                    },
                )
        };
        let (mut net, mut sys) = deployment_world();
        let audience = Audience::academic();
        // The caller replays the t=0 install themselves before the run…
        let mut tl = timeline();
        tl.apply_through(&mut net, SimTime::ZERO);
        assert_eq!(net.middleboxes().len(), 1);
        let mut rng = SimRng::new(0x42);
        let mut engine = WorldEngine::deployment(&mut net, &mut sys, &audience, &week(), &mut rng);
        // …then hands the same timeline to the engine: only the lift may
        // fire, and no duplicate censor may ever stack up.
        engine.schedule_timeline(tl);
        let out = engine.run();
        assert_eq!(
            out.policy_changes_applied, 1,
            "only the unapplied suffix runs"
        );
        assert!(
            net.middleboxes().is_empty(),
            "the lift removed the one censor"
        );
    }

    #[test]
    fn reaction_events_drive_adaptive_censors() {
        use censor::adaptive::{AdaptiveSpec, Reaction, ReactionPolicy, Stage};
        let run = |with_reactions: bool| {
            let (mut net, mut sys) = deployment_world();
            // A standing adaptive censor, watching the measurement
            // target from its passive rung.
            let spec = AdaptiveSpec::new(
                "us-adaptive",
                country("US"),
                vec!["target.example".to_string()],
            );
            net.add_middlebox(Box::new(spec.build(&net.dns)));
            let audience = Audience::academic();
            let mut rng = SimRng::new(0x5160 + u64::from(with_reactions));
            let mut recipe = WorldRecipe::deployment(week());
            if with_reactions {
                recipe = recipe.with_reaction(
                    ReactionPolicy::new("us-adaptive")
                        .at(
                            SimTime::from_secs(2 * 86_400),
                            Reaction::SetStage(Stage::IpBlock),
                        )
                        .at(SimTime::from_secs(5 * 86_400), Reaction::StandDown),
                );
            }
            WorldEngine::from_recipe(&mut net, &mut sys, &audience, &recipe, &mut rng).run()
        };

        let reactive = run(true);
        assert_eq!(reactive.control_signals_applied, 2);
        let failed_mid = reactive
            .log
            .iter()
            .filter(|v| {
                let day = v.at.as_secs() / 86_400;
                (2..5).contains(&day) && tally_outcome(&v.outcome).tasks_failed > 0
            })
            .count();
        assert!(failed_mid > 5, "IP-block window saw {failed_mid} failures");
        let failed_outside = reactive
            .log
            .iter()
            .filter(|v| {
                let day = v.at.as_secs() / 86_400;
                !(2..5).contains(&day) && tally_outcome(&v.outcome).tasks_failed > 0
            })
            .count();
        assert_eq!(failed_outside, 0, "failures outside the reaction window");

        let passive = run(false);
        assert_eq!(passive.control_signals_applied, 0);
        assert!(passive
            .log
            .iter()
            .all(|v| tally_outcome(&v.outcome).tasks_failed == 0));
    }

    #[test]
    fn signals_to_unknown_or_stateless_middleboxes_are_uncounted_noops() {
        use censor::adaptive::{Reaction, ReactionPolicy};
        let (mut net, mut sys) = deployment_world();
        let audience = Audience::academic();
        let mut rng = SimRng::new(0xD0);
        let recipe = WorldRecipe::deployment(week())
            // Addressed to a name that is never installed…
            .with_reaction(
                ReactionPolicy::new("nobody-home").at(SimTime::from_secs(100), Reaction::Escalate),
            );
        let out = WorldEngine::from_recipe(&mut net, &mut sys, &audience, &recipe, &mut rng).run();
        assert_eq!(out.control_signals_applied, 0);
        assert!(out
            .log
            .iter()
            .all(|v| tally_outcome(&v.outcome).tasks_failed == 0));
    }

    #[test]
    fn reprioritization_switches_strategy_mid_run() {
        let (mut net, mut sys) = deployment_world();
        let audience = Audience::academic();
        let mut rng = SimRng::new(0x21);
        let mut engine = WorldEngine::deployment(&mut net, &mut sys, &audience, &week(), &mut rng);
        let burst = SchedulingStrategy::CoordinatedBursts {
            window: SimDuration::from_secs(60),
        };
        engine.schedule_reprioritization(SimTime::from_secs(3 * 86_400), burst);
        engine.run();
        assert_eq!(sys.coordination.strategy(), burst);
    }

    #[test]
    fn mutation_events_can_rewire_the_world() {
        let (mut net, mut sys) = deployment_world();
        let audience = Audience::academic();
        let mut rng = SimRng::new(0x31);
        let mut engine = WorldEngine::deployment(&mut net, &mut sys, &audience, &week(), &mut rng);
        engine.schedule_mutation(SimTime::from_secs(86_400), |net, _| {
            net.clear_middleboxes(); // no-op here, but proves &mut access
        });
        engine.schedule_mutation(SimTime::from_secs(2 * 86_400), |_, sys| {
            sys.max_tasks_per_visit = 1;
        });
        engine.run();
        assert_eq!(sys.max_tasks_per_visit, 1);
    }

    #[test]
    fn recipe_is_thread_shareable() {
        fn check<T: Send + Sync + Clone>() {}
        check::<WorldRecipe>();
        check::<RunMode>();
    }

    #[test]
    fn recipe_replay_matches_imperative_schedule_calls() {
        let audience = Audience::academic();
        let timeline = || {
            PolicyTimeline::new()
                .at(
                    SimTime::from_secs(2 * 86_400),
                    PolicyChange::Install(CensorSpec::new(
                        country("US"),
                        CensorPolicy::named("recipe-block")
                            .block_domain("target.example", Mechanism::DnsNxDomain),
                    )),
                )
                .at(
                    SimTime::from_secs(5 * 86_400),
                    PolicyChange::Lift {
                        name: "recipe-block".into(),
                    },
                )
        };
        let burst = SchedulingStrategy::CoordinatedBursts {
            window: SimDuration::from_secs(60),
        };
        let reactions = || {
            censor::adaptive::ReactionPolicy::new("nobody-home").at(
                SimTime::from_secs(86_000),
                censor::adaptive::Reaction::Escalate,
            )
        };

        // Imperative: schedule_* calls in the canonical order.
        let imperative = {
            let (mut net, mut sys) = deployment_world();
            let mut rng = SimRng::new(0xC0FFEE);
            let mut engine =
                WorldEngine::deployment(&mut net, &mut sys, &audience, &week(), &mut rng);
            engine.schedule_timeline(timeline());
            engine.schedule_reactions(&reactions());
            engine.schedule_mutation(SimTime::from_secs(86_400), |_, sys| {
                sys.max_tasks_per_visit = 2;
            });
            engine.schedule_reprioritization(SimTime::from_secs(3 * 86_400), burst);
            engine.schedule_maintenance(SimDuration::from_secs(3_600));
            engine.schedule_rollups(SimDuration::from_days(1));
            engine.run()
        };

        // Declarative: the same run as a recipe.
        let recipe = WorldRecipe::deployment(week())
            .with_timeline(timeline())
            .with_reaction(reactions())
            .mutate_at(SimTime::from_secs(86_400), |_, sys| {
                sys.max_tasks_per_visit = 2;
            })
            .reprioritize_at(SimTime::from_secs(3 * 86_400), burst)
            .with_maintenance(SimDuration::from_secs(3_600))
            .with_rollups(SimDuration::from_days(1));
        let declarative = {
            let (mut net, mut sys) = deployment_world();
            let mut rng = SimRng::new(0xC0FFEE);
            WorldEngine::from_recipe(&mut net, &mut sys, &audience, &recipe, &mut rng).run()
        };

        assert_eq!(
            imperative, declarative,
            "from_recipe must replay bit-identically to imperative scheduling"
        );
        assert_eq!(declarative.policy_changes_applied, 2);
        assert!(!declarative.rollups.is_empty());
    }

    #[test]
    fn recipe_can_be_replayed_twice_from_one_description() {
        // A recipe is reusable (Fn mutations, cloneable timeline): two
        // fresh worlds driven by the same recipe agree byte for byte.
        let recipe = WorldRecipe::deployment(week())
            .mutate_at(SimTime::from_secs(1_000), |_, sys| {
                sys.max_tasks_per_visit = 1;
            })
            .with_rollups(SimDuration::from_days(2));
        let audience = Audience::academic();
        let go = || {
            let (mut net, mut sys) = deployment_world();
            let mut rng = SimRng::new(7);
            WorldEngine::from_recipe(&mut net, &mut sys, &audience, &recipe, &mut rng).run()
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn streaming_recipe_bounds_rollups_and_matches_exact() {
        let audience = Audience::academic();
        let exact_recipe = WorldRecipe::deployment(week()).with_rollups(SimDuration::from_days(1));
        // with_streaming inherits the spec's window as the rollup
        // cadence, so both runs roll up daily.
        let streaming_recipe = WorldRecipe::deployment(week()).with_streaming(StreamingSpec {
            resident_rollups: 2,
            ..StreamingSpec::with_window(SimDuration::from_days(1))
        });
        let go = |recipe: &WorldRecipe| {
            let (mut net, mut sys) = deployment_world();
            let mut rng = SimRng::new(0xFEED);
            let out =
                WorldEngine::from_recipe(&mut net, &mut sys, &audience, recipe, &mut rng).run();
            (out, sys.collection.len())
        };
        let (exact, exact_collected) = go(&exact_recipe);
        let (streamed, _) = go(&streaming_recipe);

        // Enabling streaming never perturbs the visit stream: same
        // arrivals, same outcomes, same report, byte for byte.
        assert_eq!(exact.log, streamed.log);
        assert_eq!(exact.report, streamed.report);

        // Rollups stay bounded; the resident tail is the exact series'
        // tail, and fold + tail reconstructs the full series' fold.
        let summary = streamed.streaming.expect("streaming summary present");
        assert!(exact.rollups.len() >= 6, "need evictions to test against");
        assert_eq!(streamed.rollups.len(), 2);
        let tail_start = exact.rollups.len() - streamed.rollups.len();
        assert_eq!(streamed.rollups.0, exact.rollups.0[tail_start..]);
        assert_eq!(
            summary.evicted,
            RollupFold::of_series(&exact.rollups.0[..tail_start])
        );
        let mut total = summary.evicted;
        for r in &streamed.rollups.0 {
            total.absorb(*r);
        }
        assert_eq!(total, RollupFold::of_series(&exact.rollups.0));

        // This gentle world never sheds: every submission the exact
        // store logged was accepted by the streaming store.
        assert_eq!(summary.drops.total(), 0);
        assert_eq!(summary.accepted as usize, exact_collected);
        assert!(exact_collected > 0);

        // Exact mode carries no summary.
        assert_eq!(exact.streaming, None);
    }

    #[test]
    fn batch_mode_is_deterministic_under_housekeeping() {
        let go = |housekeeping: bool| {
            let (mut net, mut sys) = deployment_world();
            let mut rng = SimRng::new(5);
            let config = BatchConfig {
                visits: 500,
                ..BatchConfig::default()
            };
            let audience = Audience::academic();
            let mut engine = WorldEngine::batch(&mut net, &mut sys, &audience, &config, &mut rng);
            if housekeeping {
                engine.schedule_maintenance(SimDuration::from_secs(600));
                engine.schedule_rollups(SimDuration::from_secs(600));
            }
            (engine.run().report, sys.collection.len())
        };
        assert_eq!(go(false).0, go(true).0);
        assert_eq!(go(true), go(true));
    }
}
