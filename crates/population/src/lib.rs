//! # population — client populations and deployment simulation
//!
//! Encore's vantage points are "the set of users who happen to visit a
//! Web site that has installed an Encore script" (paper §6.3). This crate
//! models that population and drives whole deployments:
//!
//! * [`audience`] — who visits an origin site: country mix, browser mix,
//!   access-network mix, dwell times, crawler fraction. Two calibrated
//!   audiences are provided: the §6.2 academic-homepage audience and a
//!   world audience for the §7 seven-month run.
//! * [`world`] — the discrete-event world engine: client arrivals,
//!   scheduled policy changes ([`censor::timeline::PolicyTimeline`]),
//!   world mutations, coordination re-prioritisation, session
//!   maintenance, and collection rollups are all events on one
//!   [`sim_core::queue::EventQueue`]. Every driver below is a thin
//!   wrapper over it, and a whole run — arrivals plus control plane —
//!   can be described as a `Send + Sync` [`world::WorldRecipe`] that
//!   drives serial ([`world::WorldEngine::from_recipe`]) and sharded
//!   ([`shard::run_sharded_world`]) execution alike.
//! * [`driver`] — Poisson visit arrivals over a time span; each visit
//!   instantiates a browser client and runs the full Figure 2 flow
//!   through [`encore::EncoreSystem`].
//! * [`batch`] — the throughput-oriented batched driver: incremental
//!   arrivals, a persistent client pool whose transport sessions stay
//!   warm across visits, and flat-memory aggregate reporting.
//! * [`shard`] — the multi-core engine: a world recipe's control events
//!   broadcast to every OS thread, its arrivals thinned 1/N, each shard
//!   running one private event-driven world with a split RNG stream,
//!   merged in shard order through the associative [`analytics::Merge`]
//!   path so the parallel run is provably equivalent to the serial one.
//! * [`analytics`] — the Google-Analytics-style report of §6.2, the
//!   shared visit-outcome classification every driver tallies with, and
//!   the single merge path ([`analytics::Merge`]) every sharded output
//!   folds through.
//! * [`reorder`] — the canonical reorder buffer: shard outputs fold in
//!   *arrival* order while producing exactly the shard-index-order
//!   merge, keeping coordinator memory O(1) folded aggregates.
//! * [`transport`] — the distributed backends behind
//!   [`transport::ShardTransport`]: in-process threads, or worker
//!   *processes* speaking the length-prefixed [`sim_core::frame`]
//!   protocol over OS pipes with streaming incremental merge.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analytics;
pub mod audience;
pub mod batch;
pub mod driver;
pub mod reorder;
pub mod shard;
pub mod transport;
pub mod world;

pub use analytics::{
    merge_in_order, tally_outcome, Analytics, Merge, Rollup, RollupFold, RollupSeries,
    StreamSummary, VisitTally, WindowedRollups,
};
pub use audience::Audience;
pub use batch::{run_visit_batch, BatchConfig, BatchReport};
pub use driver::{run_deployment, DeploymentConfig, VisitRecord};
pub use reorder::ReorderBuffer;
pub use shard::{
    run_sharded_batch, run_sharded_world, shard_recipe, ShardContext, ShardedBatchConfig,
    ShardedRun, ShardedWorldRun,
};
pub use transport::{
    sibling_worker, worker_main, ProcessTransport, ShardTransport, ThreadTransport, TransportError,
    TransportKind, TransportStats, WorldSpec,
};
pub use world::{RunMode, StreamingSpec, WorldEngine, WorldEvent, WorldOutcome, WorldRecipe};
