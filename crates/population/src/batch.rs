//! Batched multi-client execution: amortise session state across a whole
//! audience.
//!
//! The Poisson driver in [`crate::driver`] is faithful to the §6.2 pilot
//! but allocates per-visit state eagerly: it materialises the entire
//! arrival schedule up front and logs every visit, which is exactly what a
//! production-scale run (the ROADMAP's "millions of users") cannot afford.
//! The batch driver is the throughput-oriented counterpart:
//!
//! * arrivals are generated **incrementally** (no schedule vector);
//! * browser clients — and therefore their [`netsim::FetchSession`]s,
//!   with compiled censor pipelines, DNS host caches, and keep-alive
//!   pools — persist in a bounded pool across visits, so the substrate
//!   cost per visit amortises the way real repeat traffic does;
//! * results aggregate into counters instead of a per-visit log, keeping
//!   memory flat no matter how many visits run.
//!
//! Everything still flows through the session layer: the batch driver
//! never touches DNS/TCP/HTTP stages itself, it only orchestrates
//! [`encore::system::EncoreSystem::run_visit`] calls.
//!
//! Since the event-engine refactor, [`run_visit_batch`] is a thin
//! wrapper over [`crate::world::WorldEngine`] in batch mode: arrivals
//! are self-scheduling events on the world's queue. The wrapper is
//! bit-identical to the pre-engine loop for any fixed seed
//! (`tests/world_engine_equivalence.rs` enforces this against a
//! verbatim copy of the legacy implementation).

use crate::analytics::VisitTally;
use crate::audience::Audience;
use crate::world::WorldEngine;
use browser::BrowserClient;
use encore::system::EncoreSystem;
use netsim::network::Network;
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimRng};

/// Batch-driver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Number of visits to execute.
    pub visits: u64,
    /// Mean inter-arrival gap between visits (Poisson process).
    pub mean_gap: SimDuration,
    /// Probability a visit comes from a pooled returning client (warm
    /// HTTP cache, warm DNS, live keep-alive connections) rather than a
    /// fresh one.
    pub repeat_visitor_rate: f64,
    /// Cap on the persistent client pool (bounds memory).
    pub client_pool: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            visits: 10_000,
            // ~25 visits/minute: a busy origin.
            mean_gap: SimDuration::from_millis(2_400),
            repeat_visitor_rate: 0.35,
            client_pool: 512,
        }
    }
}

/// Aggregated outcome of a batch run. Counters only — per-visit records
/// are deliberately not retained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Visits executed.
    pub visits: u64,
    /// Visits whose origin page loaded.
    pub origin_loads: u64,
    /// Visits that obtained at least one measurement task.
    pub visits_with_tasks: u64,
    /// Measurement tasks executed in total.
    pub tasks_executed: u64,
    /// Results that reached the collection server.
    pub results_delivered: u64,
    /// Fresh clients created.
    pub clients_created: u64,
    /// Visits served by a pooled returning client.
    pub clients_reused: u64,
    /// Session-layer DNS cache hits summed over all clients.
    pub dns_cache_hits: u64,
    /// Session-layer connection reuses summed over all clients.
    pub connections_reused: u64,
    /// Total fetches issued through the session layer.
    pub session_fetches: u64,
    /// Simulated time span covered by the batch.
    pub sim_span: SimDuration,
}

impl BatchReport {
    pub(crate) fn absorb_session(&mut self, client: &BrowserClient) {
        let s = client.session.stats();
        self.dns_cache_hits += s.dns_cache_hits;
        self.connections_reused += s.connections_reused;
        self.session_fetches += s.fetches;
    }

    /// Fold one classified visit ([`crate::analytics::tally_outcome`])
    /// into the counters — the only place a visit outcome turns into
    /// report arithmetic.
    pub fn record_visit(&mut self, tally: &VisitTally) {
        self.visits += 1;
        self.origin_loads += u64::from(tally.origin_loaded);
        self.visits_with_tasks += u64::from(tally.got_task);
        self.tasks_executed += tally.tasks_executed;
        self.results_delivered += tally.results_delivered;
    }

    /// Combine two reports: counters add, spans take the maximum (shards
    /// run concurrently over the same simulated window, so the union's
    /// span is the longest shard's, not the sum).
    ///
    /// `merge` is associative and commutative with
    /// [`BatchReport::default`] as the identity element — the algebra the
    /// sharded runner relies on to make merged output independent of
    /// thread completion order. The arithmetic itself lives in the one
    /// shared merge path, [`crate::analytics::Merge`]; this is a
    /// convenience wrapper.
    pub fn merge(self, other: &BatchReport) -> BatchReport {
        crate::analytics::Merge::merge(self, *other)
    }
}

/// Run `config.visits` visits against `system`, drawing visitors from
/// `audience` and amortising client/session state across the whole batch.
///
/// Origins are chosen per visit in proportion to their popularity weight.
/// Crawler visits behave as in the Poisson driver: most never execute
/// JavaScript (zero effective dwell), a minority are headless browsers
/// that do contribute measurements.
///
/// This is a thin wrapper over the event engine: each visit is a
/// self-scheduling [`crate::world::WorldEvent::BatchArrival`] on the
/// world's queue. Construct the [`WorldEngine`] directly to layer
/// scheduled dynamics (policy timelines, mutations, maintenance) onto
/// the same run.
pub fn run_visit_batch(
    net: &mut Network,
    system: &mut EncoreSystem,
    audience: &Audience,
    config: &BatchConfig,
    rng: &mut SimRng,
) -> BatchReport {
    WorldEngine::batch(net, system, audience, config, rng)
        .run()
        .report
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore::coordination::SchedulingStrategy;
    use encore::delivery::OriginSite;
    use encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
    use netsim::geo::{country, World};
    use netsim::http::{ContentType, HttpResponse};
    use netsim::network::ConstHandler;

    fn deployment() -> (Network, EncoreSystem) {
        let mut net = Network::ideal(World::builtin());
        net.add_server(
            "target.example",
            country("US"),
            Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
        );
        let tasks = vec![MeasurementTask {
            id: MeasurementId(0),
            spec: TaskSpec::Image {
                url: "http://target.example/favicon.ico".into(),
            },
        }];
        let origin = OriginSite::academic("prof.example");
        let sys = EncoreSystem::deploy(
            &mut net,
            tasks,
            SchedulingStrategy::RoundRobin,
            vec![origin],
            country("US"),
        );
        (net, sys)
    }

    #[test]
    fn batch_produces_measurements_and_amortises_sessions() {
        let (mut net, mut sys) = deployment();
        let mut rng = SimRng::new(0xBA7C);
        let config = BatchConfig {
            visits: 2_000,
            ..BatchConfig::default()
        };
        let report = run_visit_batch(&mut net, &mut sys, &Audience::academic(), &config, &mut rng);

        assert_eq!(report.visits, 2_000);
        assert!(report.origin_loads > 1_800, "origins load: {report:?}");
        assert!(report.tasks_executed > 400, "tasks: {report:?}");
        assert!(report.results_delivered > 400, "results: {report:?}");
        assert!(!sys.collection.is_empty(), "collector saw traffic");

        // The whole point of the batch driver: repeat visitors actually
        // amortise transport state.
        assert!(report.clients_reused > 300, "reuse: {report:?}");
        assert!(report.dns_cache_hits > 0, "warm DNS: {report:?}");
        assert!(report.connections_reused > 0, "keep-alive: {report:?}");
        assert_eq!(
            report.clients_created + report.clients_reused,
            report.visits
        );
    }

    #[test]
    fn batch_is_deterministic() {
        let run = |seed: u64| {
            let (mut net, mut sys) = deployment();
            let mut rng = SimRng::new(seed);
            let config = BatchConfig {
                visits: 500,
                ..BatchConfig::default()
            };
            let r = run_visit_batch(&mut net, &mut sys, &Audience::academic(), &config, &mut rng);
            (r, sys.collection.len())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn zero_weight_origins_short_circuit() {
        let mut net = Network::ideal(World::builtin());
        let origin = OriginSite::academic("ghost.example").with_popularity(0.0);
        let mut sys = EncoreSystem::deploy(
            &mut net,
            vec![],
            SchedulingStrategy::Random,
            vec![origin],
            country("US"),
        );
        let mut rng = SimRng::new(1);
        let report = run_visit_batch(
            &mut net,
            &mut sys,
            &Audience::academic(),
            &BatchConfig::default(),
            &mut rng,
        );
        assert_eq!(report.visits, 0);
    }

    #[test]
    fn pool_respects_cap() {
        let (mut net, mut sys) = deployment();
        let mut rng = SimRng::new(9);
        let config = BatchConfig {
            visits: 300,
            client_pool: 8,
            repeat_visitor_rate: 0.0,
            ..BatchConfig::default()
        };
        let report = run_visit_batch(&mut net, &mut sys, &Audience::academic(), &config, &mut rng);
        assert_eq!(report.clients_created, 300);
        assert_eq!(report.clients_reused, 0);
        // Session stats from evicted clients are still banked: every visit
        // fetched at least the origin page.
        assert!(report.session_fetches >= report.origin_loads);
    }
}
