//! Umbrella crate for the Encore reproduction workspace.
//!
//! Re-exports every member crate so the examples and cross-crate
//! integration tests in this repository can use one dependency. See
//! README.md for the tour and DESIGN.md for the system inventory.

pub use browser;
pub use censor;
pub use encore;
pub use netsim;
pub use population;
pub use sim_core;
pub use websim;
