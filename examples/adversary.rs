//! The adversary's playbook (§8) and Encore's counters:
//!
//! 1. **Block the coordination server** — kills tag-installed origins;
//!    server-side-inline origins keep measuring.
//! 2. **Block the collection server** — results are lost until a mirror
//!    in another domain picks them up.
//! 3. **Poison the data** — flood forged failure reports from one
//!    address; the detector's per-IP cap blunts it.
//!
//! ```sh
//! cargo run --example adversary
//! ```

use encore_repro::browser::{BrowserClient, Engine};
use encore_repro::censor::national::NationalCensor;
use encore_repro::censor::policy::{CensorPolicy, Mechanism};
use encore_repro::encore::coordination::SchedulingStrategy;
use encore_repro::encore::delivery::{InstallMethod, OriginSite};
use encore_repro::encore::system::EncoreSystem;
use encore_repro::encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
use encore_repro::netsim::geo::{country, IspClass, World};
use encore_repro::netsim::http::{ContentType, HttpResponse};
use encore_repro::netsim::network::{ConstHandler, Network};
use encore_repro::sim_core::{SimDuration, SimRng, SimTime};

fn tasks() -> Vec<MeasurementTask> {
    vec![MeasurementTask {
        id: MeasurementId(0),
        spec: TaskSpec::Image {
            url: "http://target.example/favicon.ico".into(),
        },
    }]
}

fn network_with_target() -> Network {
    let mut net = Network::ideal(World::builtin());
    net.add_server(
        "target.example",
        country("US"),
        Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
    );
    net
}

fn visit(
    net: &mut Network,
    sys: &mut EncoreSystem,
    origin: &OriginSite,
    cc: &str,
) -> encore_repro::encore::system::VisitOutcome {
    let root = SimRng::new(0xAD5E);
    let mut client = BrowserClient::new(
        net,
        country(cc),
        IspClass::Residential,
        Engine::Chrome,
        &root,
    );
    sys.run_visit(
        net,
        &mut client,
        origin,
        SimDuration::from_secs(30),
        SimTime::from_secs(60),
        "Chrome",
    )
}

fn main() {
    // --- Attack 1: block the coordination server -------------------------
    println!("== attack 1: censor blocks coordinator.encore-repro.net ==");
    let mut net = network_with_target();
    let block_coord = CensorPolicy::named("anti-encore")
        .block_domain("coordinator.encore-repro.net", Mechanism::DnsNxDomain);
    net.add_middlebox(Box::new(NationalCensor::new(country("PK"), block_coord)));

    let tag_origin = OriginSite::academic("tag-install.example");
    let inline_origin = OriginSite::academic("inline-install.example")
        .with_install(InstallMethod::ServerSideInline);
    let mut sys = EncoreSystem::deploy(
        &mut net,
        tasks(),
        SchedulingStrategy::RoundRobin,
        vec![tag_origin.clone(), inline_origin.clone()],
        country("US"),
    );
    let tag_visit = visit(&mut net, &mut sys, &tag_origin, "PK");
    let inline_visit = visit(&mut net, &mut sys, &inline_origin, "PK");
    println!(
        "  tag install:    got task = {}  (blocked: client must reach the coordinator)",
        tag_visit.got_task
    );
    println!(
        "  inline install: got task = {}  (webmaster proxies the task, §8)",
        inline_visit.got_task
    );
    assert!(!tag_visit.got_task && inline_visit.got_task);

    // --- Attack 2: block the collection server ---------------------------
    println!("\n== attack 2: censor blocks collector.encore-repro.net ==");
    let mut net = network_with_target();
    let block_collector = CensorPolicy::named("anti-collector")
        .block_domain("collector.encore-repro.net", Mechanism::DnsNxDomain);
    net.add_middlebox(Box::new(NationalCensor::new(
        country("PK"),
        block_collector,
    )));

    let origin = OriginSite::academic("origin.example");
    let mut sys = EncoreSystem::deploy(
        &mut net,
        tasks(),
        SchedulingStrategy::RoundRobin,
        vec![origin.clone()],
        country("US"),
    );
    let lost = visit(&mut net, &mut sys, &origin, "PK");
    println!(
        "  without mirror: results delivered = {} (measurement lost)",
        lost.results_delivered
    );
    assert_eq!(lost.results_delivered, 0);

    // Add a mirror hosted in another domain (shared-hosting collateral).
    sys.add_collector_mirror(&mut net, "cdn-mirror.shared-hosting.example", country("DE"));
    let saved = visit(&mut net, &mut sys, &origin, "PK");
    println!(
        "  with mirror:    results delivered = {} (fallback worked)",
        saved.results_delivered
    );
    assert_eq!(saved.results_delivered, 1);

    // --- Attack 3: poisoned submissions ----------------------------------
    println!("\n== attack 3: forged failure reports from one address ==");
    use encore_repro::encore::collection::{Submission, SubmissionPhase};
    use encore_repro::encore::tasks::{TaskOutcome, TaskType};
    use encore_repro::encore::{DetectorConfig, FilteringDetector, GeoDb};
    use encore_repro::netsim::http::HttpRequest;

    // Honest clients in two countries first.
    for cc in ["US", "DE"] {
        for _ in 0..25 {
            let v = visit(&mut net, &mut sys, &origin, cc);
            assert!(v.results_delivered > 0);
        }
    }
    // The attacker floods 400 forged failures from a single BR address.
    let attacker = net.add_client(country("BR"), IspClass::Datacenter);
    let mut rng = SimRng::new(9);
    for i in 0..400u64 {
        let forged = Submission {
            measurement_id: MeasurementId(900_000 + i),
            phase: SubmissionPhase::Result,
            outcome: Some(TaskOutcome::Failure),
            elapsed_ms: 100,
            task_type: TaskType::Image,
            target_url: "http://target.example/favicon.ico".into(),
            user_agent: "Chrome".into(),
            congested: false,
        };
        let url = sys.collection.submit_url(&forged);
        net.fetch(
            &attacker,
            &HttpRequest::get(&url),
            SimTime::from_secs(1),
            &mut rng,
        );
    }
    let geo = GeoDb::from_allocator(&net.allocator);
    let naive = FilteringDetector::new(DetectorConfig {
        max_per_ip: None,
        ..DetectorConfig::default()
    });
    let hardened = FilteringDetector::new(DetectorConfig {
        max_per_ip: Some(10),
        min_measurements: 20,
        ..DetectorConfig::default()
    });
    println!(
        "  naive detector:    {} detection(s) — the attacker forged censorship in BR",
        sys.detect(&geo, &naive).len()
    );
    println!(
        "  per-IP-capped:     {} detection(s) — flood from one address discounted",
        sys.detect(&geo, &hardened).len()
    );
    assert!(sys.detect(&geo, &naive).len() > sys.detect(&geo, &hardened).len());
    println!("\nadversary example OK");
}
