//! The §7.2 scenario end to end: the 2014 national censors (China's
//! forged-DNS + RST firewall, Iran's block pages, Pakistan's YouTube DNS
//! sinkhole) measured by a seventeen-origin Encore deployment under the
//! ethics-staged favicon-only task list.
//!
//! ```sh
//! cargo run --release --example national_firewall
//! ```

use encore_repro::censor::registry::{ground_truth, install_world_censors, SAFE_TARGETS};
use encore_repro::encore::coordination::SchedulingStrategy;
use encore_repro::encore::delivery::OriginSite;
use encore_repro::encore::system::EncoreSystem;
use encore_repro::encore::targets::EthicsStage;
use encore_repro::encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
use encore_repro::encore::{FilteringDetector, GeoDb};
use encore_repro::netsim::geo::{country, World};
use encore_repro::netsim::http::{ContentType, HttpResponse};
use encore_repro::netsim::network::{ConstHandler, Network};
use encore_repro::population::{run_deployment, Audience, DeploymentConfig};
use encore_repro::sim_core::{SimDuration, SimRng};

fn main() {
    let world = World::with_long_tail(170);
    let mut net = Network::new(world.clone());

    for d in SAFE_TARGETS {
        net.add_server(
            d,
            country("US"),
            Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 500))),
        );
    }
    install_world_censors(&mut net);

    // The ethics-staged task pool.
    let tasks: Vec<MeasurementTask> = SAFE_TARGETS
        .iter()
        .enumerate()
        .map(|(i, d)| MeasurementTask {
            id: MeasurementId(i as u64),
            spec: TaskSpec::Image {
                url: format!("http://{d}/favicon.ico"),
            },
        })
        .collect();
    assert!(tasks
        .iter()
        .all(|t| EthicsStage::FaviconsFewSites.permits(t)));

    let origins: Vec<OriginSite> = (0..17)
        .map(|i| {
            OriginSite::academic(format!("volunteer-{i}.example")).with_popularity(if i < 3 {
                6.0
            } else {
                1.0
            })
        })
        .collect();

    let mut sys = EncoreSystem::deploy(
        &mut net,
        tasks,
        SchedulingStrategy::CoordinatedBursts {
            window: SimDuration::from_secs(60),
        },
        origins,
        country("US"),
    );

    let mut rng = SimRng::new(7);
    let audience = Audience::world(&world);
    let config = DeploymentConfig {
        duration: SimDuration::from_days(14),
        visits_per_day_per_weight: 25.0,
        ..DeploymentConfig::default()
    };
    println!("running a 14-day deployment across 17 origin sites…");
    let log = run_deployment(&mut net, &mut sys, &audience, &config, &mut rng);
    println!(
        "visits: {}   submissions: {}   distinct IPs: {}",
        log.len(),
        sys.collection.len(),
        sys.collection.distinct_ips()
    );

    let geo = GeoDb::from_allocator(&net.allocator);
    let detections = sys.detect(&geo, &FilteringDetector::default());

    println!("\ndetections:");
    for d in &detections {
        println!(
            "  {} filtered in {}  (n={}, successes={}, p={:.2e})",
            d.domain, d.country, d.n, d.x, d.p_value
        );
    }

    let truth = ground_truth();
    let found = truth
        .iter()
        .filter(|t| {
            detections
                .iter()
                .any(|d| d.domain == t.domain && d.country == t.country)
        })
        .count();
    println!("\nground truth recovered: {found}/{}", truth.len());
    let false_pos = detections
        .iter()
        .filter(|d| {
            !truth
                .iter()
                .any(|t| t.domain == d.domain && t.country == d.country)
        })
        .count();
    println!("false detections: {false_pos}");
}
