//! Quickstart: measure Web filtering with Encore in ~60 lines.
//!
//! Builds a small simulated Internet, installs a censor that blocks
//! `blocked.example` for clients in Pakistan, deploys Encore on a
//! volunteer origin site, lets thirty clients visit, and runs the
//! detector.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use encore_repro::browser::BrowserClient;
use encore_repro::censor::national::NationalCensor;
use encore_repro::censor::policy::{CensorPolicy, Mechanism};
use encore_repro::encore::coordination::SchedulingStrategy;
use encore_repro::encore::delivery::OriginSite;
use encore_repro::encore::system::EncoreSystem;
use encore_repro::encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
use encore_repro::encore::{FilteringDetector, GeoDb};
use encore_repro::netsim::geo::{country, IspClass, World};
use encore_repro::netsim::http::{ContentType, HttpResponse};
use encore_repro::netsim::network::{ConstHandler, Network};
use encore_repro::sim_core::{SimDuration, SimRng, SimTime};

fn main() {
    // 1. A simulated Internet with a measurement target.
    let mut net = Network::new(World::builtin());
    net.add_server(
        "blocked.example",
        country("US"),
        Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
    );

    // 2. A national censor: Pakistan forges NXDOMAIN for the target.
    let policy = CensorPolicy::named("pta").block_domain("blocked.example", Mechanism::DnsNxDomain);
    net.add_middlebox(Box::new(NationalCensor::new(country("PK"), policy)));

    // 3. Deploy Encore: one favicon measurement task, one origin site.
    let tasks = vec![MeasurementTask {
        id: MeasurementId(0),
        spec: TaskSpec::Image {
            url: "http://blocked.example/favicon.ico".into(),
        },
    }];
    let origin = OriginSite::academic("volunteer.example");
    let mut sys = EncoreSystem::deploy(
        &mut net,
        tasks,
        SchedulingStrategy::RoundRobin,
        vec![origin.clone()],
        country("US"),
    );

    // 4. Thirty clients visit the origin page: half in Pakistan, half in
    //    Germany. Each visit runs the full Figure 2 flow.
    let root = SimRng::new(42);
    for i in 0..30 {
        let cc = if i % 2 == 0 { "PK" } else { "DE" };
        let engine = *browser_mix().sample(&mut root.fork_indexed("engine", i));
        let mut client =
            BrowserClient::new(&mut net, country(cc), IspClass::Residential, engine, &root);
        sys.run_visit(
            &mut net,
            &mut client,
            &origin,
            SimDuration::from_secs(45),
            SimTime::from_secs(i * 60),
            "Chrome",
        );
    }

    // 5. Detect filtering from the collected measurements.
    let geo = GeoDb::from_allocator(&net.allocator);
    let detections = sys.detect(&geo, &FilteringDetector::default());

    println!("collected {} submissions", sys.collection.len());
    for d in &detections {
        println!(
            "FILTERED: {} in {} ({} measurements, {} succeeded, p = {:.2e})",
            d.domain, d.country, d.n, d.x, d.p_value
        );
    }
    assert_eq!(detections.len(), 1, "expected exactly the PK detection");
    assert_eq!(detections[0].country, country("PK"));
    println!("quickstart OK");
}

fn browser_mix() -> encore_repro::sim_core::dist::Empirical<encore_repro::browser::Engine> {
    encore_repro::browser::Engine::market_distribution()
}
