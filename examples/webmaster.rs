//! The webmaster's view: what installing Encore on your site actually
//! involves, and what your visitors' browsers end up doing.
//!
//! Walks through §5.4/§6.3: the one-line snippet, the measurement-task
//! JavaScript the coordination server would serve, the byte overhead per
//! visit, and the full task-generation pipeline (Figure 3) that turns a
//! target list into tasks.
//!
//! ```sh
//! cargo run --example webmaster
//! ```

use encore_repro::browser::{BrowserClient, Engine};
use encore_repro::encore::delivery::{render_snippet, render_task_js, InstallMethod, OriginSite};
use encore_repro::encore::pipeline::{
    GenerationConfig, PatternExpander, TargetFetcher, TaskGenerator,
};
use encore_repro::encore::targets::TargetList;
use encore_repro::netsim::geo::{country, IspClass, World};
use encore_repro::netsim::network::Network;
use encore_repro::sim_core::{SimRng, SimTime};
use encore_repro::websim::generator::{SyntheticWeb, WebConfig};
use encore_repro::websim::SearchIndex;

fn main() {
    // --- 1. What you add to your page -----------------------------------
    let snippet = render_snippet("coordinator.encore-repro.net");
    println!(
        "Add this one line to your page ({} bytes):\n  {snippet}\n",
        snippet.len()
    );
    println!("Prefer not to let clients contact Encore directly? Use the");
    println!("server-side install (a WordPress-plugin-style proxy):");
    let robust = OriginSite::academic("my-blog.example")
        .with_install(InstallMethod::ServerSideInline)
        .with_referer_stripping();
    println!("  {:?}\n", robust.install_method);

    // --- 2. What the coordination server sends your visitors ------------
    // Build a small web corpus and run the Figure 3 pipeline over it.
    let mut rng = SimRng::new(1);
    let web = SyntheticWeb::generate(&WebConfig::small(), &mut rng);
    let mut net = Network::new(World::builtin());
    web.install(&mut net, &mut rng);
    let index = SearchIndex::build(&web);

    let targets = TargetList::herdict_style(&web.domains()[..4]);
    println!(
        "target list: {} patterns from {:?}",
        targets.len(),
        targets.source
    );

    let expander = PatternExpander::new(&index);
    let urls = expander.expand_all(&targets.patterns);
    println!("pattern expander: {} URLs (<=50 per domain)", urls.len());

    let root = SimRng::new(2);
    let browser = BrowserClient::new(
        &mut net,
        country("US"),
        IspClass::Academic,
        Engine::Chrome,
        &root,
    );
    let mut fetcher = TargetFetcher::new(browser);
    let hars = fetcher.fetch_all(&mut net, &urls, SimTime::ZERO);
    println!("target fetcher: {} HARs recorded", hars.len());

    let mut generator = TaskGenerator::new(GenerationConfig {
        max_image_bytes: 5_000,
        ..GenerationConfig::default()
    });
    let tasks = generator.generate_all(&hars, |_| true);
    println!("task generator: {} measurement tasks\n", tasks.len());

    // --- 3. The JavaScript one of those tasks compiles to ---------------
    if let Some(task) = tasks.first() {
        let js = render_task_js(task, "collector.encore-repro.net");
        println!(
            "a generated {} task ({} bytes of JS):\n{js}\n",
            task.spec.task_type(),
            js.len()
        );
    }

    // --- 4. What it costs your visitors ---------------------------------
    let mut by_type = std::collections::BTreeMap::new();
    for t in &tasks {
        *by_type
            .entry(t.spec.task_type().to_string())
            .or_insert(0usize) += 1;
    }
    println!("task mix: {by_type:?}");
    println!("per-visit overhead: one coordination fetch (~3 KB of JS),");
    println!("one cross-origin resource (typically a <1 KB favicon), and");
    println!("two beacon GETs to the collector — invisible next to a");
    println!("typical half-megabyte page load.");
}
