//! Golden snapshot of the congestion-vs-censorship world.
//!
//! `bench::congested_fixture` runs 30 days over a routed scale-free AS
//! topology: Turkey's path to the US-hosted target crosses a transit
//! hotspot that browns out from day 8 to day 14, and a real DNS block
//! lands on day 10 — two days *into* the brownout. The scenario pins
//! three things:
//!
//! 1. **Golden byte-identity** — the serial (1-shard) run's day-by-day
//!    detector verdict (plus the per-day congestion-signal counts)
//!    serializes byte-identically to
//!    `tests/golden/congested_world.json` (regenerate with
//!    `ENCORE_BLESS=1 cargo test --test congested_world`).
//! 2. **Congestion is not censorship** — days 8–9 lose fetches to
//!    shedding and carry visible congestion signals, yet are *never*
//!    flagged; the detector localises onset exactly at day 10, when the
//!    real block lands.
//! 3. **Shard invariance** — a 2-shard run of the same recipe reaches
//!    the identical verdict, because `build_shard` scales hotspot
//!    capacity with the shard count and the brownout mutations broadcast
//!    to every shard.

use bench::congested_fixture::{
    self, build, censor_country, BLOCK_LIFT, BLOCK_ONSET, BROWNOUT_END, BROWNOUT_START, TARGET,
};
use encore_repro::encore::{FilteringDetector, GeoDb, StoredMeasurement};
use encore_repro::netsim::geo::{CountryCode, World};
use encore_repro::population::{run_sharded_world, Audience, ShardedWorldRun};
use encore_repro::sim_core::SimDuration;
use serde::Serialize;

const SEED: u64 = 0xC0_46E5;
const DAYS: u64 = 30;
const RATE: f64 = 300.0;

/// The golden artifact: the §7.2 windowed verdict over the routed run,
/// plus the per-day congestion-signal counts that show the brownout was
/// both real and correctly discounted.
#[derive(Debug, Clone, PartialEq, Serialize)]
struct CongestedTimeline {
    seed: u64,
    topology_seed: u64,
    days: u64,
    visits: u64,
    policy_changes_applied: usize,
    /// `(day, result records from the censoring country,
    /// congestion-signaled failures among them, flagged)`.
    day_rows: Vec<(u64, usize, usize, bool)>,
    onset_day: Option<u64>,
    lift_day: Option<u64>,
}

struct CongestedVerdict {
    rows: Vec<(u64, usize, usize, bool)>,
    onset: Option<u64>,
    lift: Option<u64>,
}

/// Per-day record counts, congestion-signal counts, and the flag series
/// for `cc:TARGET` — the fixture's single verdict definition.
fn judge(records: &[StoredMeasurement], geo: &GeoDb, cc: CountryCode) -> CongestedVerdict {
    let day = SimDuration::from_days(1);
    let reports = FilteringDetector::default().detect_windows(records, geo, day);
    let rows: Vec<(u64, usize, usize, bool)> = reports
        .iter()
        .map(|r| {
            let flagged = r
                .detections
                .iter()
                .any(|d| d.country == cc && d.domain == TARGET);
            let day_cc: Vec<&StoredMeasurement> = records
                .iter()
                .filter(|rec| {
                    rec.received_at.as_micros() / day.as_micros() == r.window
                        && rec.submission.phase == encore_repro::encore::SubmissionPhase::Result
                        && geo.lookup(rec.client_ip) == Some(cc)
                })
                .collect();
            let signaled = day_cc.iter().filter(|rec| rec.submission.congested).count();
            (r.window, day_cc.len(), signaled, flagged)
        })
        .collect();
    let (onset, lift) =
        encore_repro::encore::localise_transitions(rows.iter().map(|&(w, _, _, f)| (w, f)));
    CongestedVerdict { rows, onset, lift }
}

fn run(shards: usize) -> (ShardedWorldRun, CongestedVerdict) {
    let recipe = congested_fixture::recipe(DAYS, RATE);
    let audience = Audience::world(&World::builtin());
    let run = run_sharded_world(&build, &audience, &recipe, shards, SEED);
    let verdict = judge(&run.collection.records, &run.geo, censor_country());
    (run, verdict)
}

#[test]
fn congested_timeline_matches_golden_and_is_shard_invariant() {
    let (serial, verdict) = run(1);
    assert_eq!(
        serial.outcome.policy_changes_applied, 2,
        "install and lift must both land"
    );

    let artifact = CongestedTimeline {
        seed: SEED,
        topology_seed: congested_fixture::TOPOLOGY_SEED,
        days: DAYS,
        visits: serial.outcome.report.visits,
        policy_changes_applied: serial.outcome.policy_changes_applied,
        day_rows: verdict.rows.clone(),
        onset_day: verdict.onset,
        lift_day: verdict.lift,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("artifact serializes");

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/congested_world.json"
    );
    if std::env::var("ENCORE_BLESS").is_ok() {
        std::fs::write(golden_path, &json).expect("write golden");
        eprintln!("[blessed {golden_path}]");
    }
    let golden = std::fs::read_to_string(golden_path).expect(
        "golden snapshot missing — regenerate with ENCORE_BLESS=1 cargo test --test congested_world",
    );
    assert_eq!(
        json, golden,
        "congested timeline drifted from tests/golden/congested_world.json \
         (regenerate with ENCORE_BLESS=1 if the change is intentional)"
    );

    // Semantic checks on top of the byte pin — the trap must actually be
    // armed and the detector must actually step over it.
    for (d, _, signaled, flagged) in &verdict.rows {
        // Before the brownout: clear and signal-free.
        if *d < BROWNOUT_START {
            assert!(!flagged, "day {d}: pre-brownout day flagged");
            assert_eq!(*signaled, 0, "day {d}: congestion signal before brownout");
        }
        // The brownout-only prefix days are the trap: sheds happen
        // (signals visible), yet no verdict.
        if (BROWNOUT_START..BLOCK_ONSET).contains(d) {
            assert!(
                !flagged,
                "day {d}: congestion-only day must never be flagged"
            );
            assert!(
                *signaled > 0,
                "day {d}: the brownout should visibly shed fetches"
            );
        }
        // Every blocked day is decisively flagged despite the brownout.
        if (BLOCK_ONSET..BLOCK_LIFT).contains(d) {
            assert!(flagged, "day {d}: real block on a congested path missed");
        }
        // After block lift and brownout clear: quiet again.
        if *d >= BROWNOUT_END {
            assert!(!flagged, "day {d}: flag survived the lift");
            assert_eq!(*signaled, 0, "day {d}: congestion signal after brownout");
        }
    }
    assert_eq!(
        verdict.onset,
        Some(BLOCK_ONSET),
        "onset must localise to the real block, not the brownout"
    );
    assert_eq!(verdict.lift, Some(BLOCK_LIFT), "lift must localise exactly");

    // Shard invariance: the 2-shard run reaches the identical verdict.
    let (sharded, verdict2) = run(2);
    assert_eq!(
        sharded.outcome.policy_changes_applied, 2,
        "policy changes must land on every shard"
    );
    assert_eq!(verdict2.onset, verdict.onset, "2-shard onset differs");
    assert_eq!(verdict2.lift, verdict.lift, "2-shard lift differs");
    let flags = |v: &CongestedVerdict| -> Vec<u64> {
        v.rows
            .iter()
            .filter(|(_, _, _, f)| *f)
            .map(|(d, _, _, _)| *d)
            .collect()
    };
    assert_eq!(
        flags(&verdict2),
        flags(&verdict),
        "2-shard flag series differs from serial"
    );
}
