//! The transport-equivalence harness: the distributed world is the
//! same experiment as the in-process one.
//!
//! `population::transport` runs a sharded world either on OS threads
//! (shared memory, zero-copy) or on worker *processes* speaking the
//! length-prefixed frame protocol over pipes. The process backend is
//! only admissible if it is provably invisible: same merged outcome,
//! same collection store, same GeoIP database, byte for byte. Three
//! levels are enforced here, on the `bench::world_fixture`
//! Turkey-timeline scenario (the same fixture `timeline` and
//! `transport_scale` gate on in CI):
//!
//! 1. **Lockstep with the serial engine** — a 1-shard process-backend
//!    run is byte-identical to `WorldEngine::from_recipe(..).run()` on
//!    the same recipe, down to serialized JSON.
//! 2. **Backend equivalence** — at 2 and 8 shards the process backend
//!    reproduces the thread backend exactly: merged outcome, per-shard
//!    reports, collection snapshot, serialized GeoIP database, and the
//!    serialized JSON of the whole outcome.
//! 3. **Typed failure paths** — a missing worker binary, a worker that
//!    exits without streaming, and a worker that writes garbage all
//!    surface as typed `TransportError`s, never a panic or a hang.
//!
//! The worker binary is `bench`'s `shard_worker`, located next to this
//! test executable the same way the production coordinator locates it.

use bench::specs::{BenchWorldSpec, SHARD_WORKER};
use encore_repro::population::transport::{
    sibling_worker, ProcessTransport, ShardTransport, ThreadTransport, TransportError, WorldSpec,
};
use encore_repro::population::{ShardContext, WorldEngine};
use encore_repro::sim_core::SimRng;

const SEED: u64 = 0x7A_57;
const DAYS: u64 = 6;

fn spec() -> BenchWorldSpec {
    BenchWorldSpec::Timeline {
        days: DAYS,
        rate: 150.0,
        streaming: false,
    }
}

/// The production worker-discovery path, with a clear failure if the
/// worker binary has not been built (`cargo build -p bench --bins`, or
/// any workspace-wide build/test, produces it next to this test).
fn process_transport() -> ProcessTransport {
    let worker = sibling_worker(SHARD_WORKER).unwrap_or_else(|| {
        panic!(
            "shard_worker binary not found next to the test executable; \
             build it first: cargo build -p bench --bins"
        )
    });
    ProcessTransport::new(worker)
}

#[test]
fn one_shard_process_locksteps_the_serial_engine() {
    let spec = spec();

    // Serial: the engine replaying the recipe on the serial build.
    let audience = spec.audience();
    let recipe = spec.recipe();
    let (mut net, mut sys) = spec.build(ShardContext {
        index: 0,
        shards: 1,
    });
    let mut rng = SimRng::new(SEED);
    let serial = WorldEngine::from_recipe(&mut net, &mut sys, &audience, &recipe, &mut rng).run();
    let serial_snapshot = sys.collection.snapshot();

    // Distributed at N = 1: one worker process, full frame protocol.
    let run = process_transport()
        .run(&spec, 1, SEED)
        .expect("1-shard process transport runs");

    assert_eq!(
        run.outcome, serial,
        "1-shard process outcome must be bit-identical to the serial engine"
    );
    assert_eq!(
        run.collection, serial_snapshot,
        "1-shard process collection store must be identical to the serial engine"
    );
    // WorldOutcome itself has no Serialize (the transport streams its
    // fields separately); its report and rollups are the JSON surface.
    assert_eq!(
        serde_json::to_string(&run.outcome.report).unwrap(),
        serde_json::to_string(&serial.report).unwrap(),
        "serialized report JSON must agree byte for byte"
    );
    assert_eq!(
        serde_json::to_string(&run.outcome.rollups).unwrap(),
        serde_json::to_string(&serial.rollups).unwrap(),
        "serialized rollup JSON must agree byte for byte"
    );
}

#[test]
fn process_backend_matches_threads_at_2_and_8_shards() {
    let spec = spec();
    let process = process_transport();
    for shards in [2usize, 8] {
        let threads_run = ThreadTransport
            .run(&spec, shards, SEED)
            .expect("thread transport runs");
        let process_run = process
            .run(&spec, shards, SEED)
            .expect("process transport runs");

        assert_eq!(
            process_run.outcome, threads_run.outcome,
            "merged outcome diverged at {shards} shards"
        );
        assert_eq!(
            process_run.per_shard, threads_run.per_shard,
            "per-shard reports diverged at {shards} shards"
        );
        assert_eq!(
            process_run.collection, threads_run.collection,
            "collection store diverged at {shards} shards"
        );
        // GeoDb has no PartialEq; its serialized image is the equality
        // the goldens use.
        assert_eq!(
            serde_json::to_string(&process_run.geo).unwrap(),
            serde_json::to_string(&threads_run.geo).unwrap(),
            "GeoIP database diverged at {shards} shards"
        );
        assert_eq!(
            serde_json::to_string(&process_run.outcome.report).unwrap(),
            serde_json::to_string(&threads_run.outcome.report).unwrap(),
            "serialized report JSON diverged at {shards} shards"
        );
        assert_eq!(
            serde_json::to_string(&process_run.outcome.rollups).unwrap(),
            serde_json::to_string(&threads_run.outcome.rollups).unwrap(),
            "serialized rollup JSON diverged at {shards} shards"
        );
    }
}

#[test]
fn audience_is_transport_invariant() {
    // The spec rebuilds its audience inside each worker process; the
    // coordinator never ships it. Equal worlds require equal audiences.
    let spec = spec();
    let run = process_transport()
        .run(&spec, 2, SEED)
        .expect("process transport runs");
    let again = process_transport()
        .run(&spec, 2, SEED)
        .expect("process transport runs twice");
    assert_eq!(
        run.outcome, again.outcome,
        "same (seed, shards) must reproduce byte-identically across process runs"
    );
    assert_eq!(run.collection, again.collection);
}

#[test]
fn missing_worker_binary_is_a_typed_error() {
    let bogus = ProcessTransport::new("/nonexistent/encore-shard-worker".into());
    let err = bogus
        .run(&spec(), 2, SEED)
        .expect_err("spawning a nonexistent binary must fail");
    assert!(
        matches!(err, TransportError::Spawn { .. }),
        "expected Spawn error, got: {err}"
    );
}

#[test]
fn worker_that_exits_without_streaming_is_a_typed_error() {
    // `/bin/true` exits 0 without speaking the protocol: the coordinator
    // must report a worker exit (EOF before FINAL) or a broken pipe —
    // never panic or hang.
    let silent = ProcessTransport::new("/bin/true".into());
    let err = silent
        .run(&spec(), 1, SEED)
        .expect_err("a protocol-silent worker must fail the run");
    assert!(
        matches!(
            err,
            TransportError::WorkerExit { .. } | TransportError::Protocol(_)
        ),
        "expected WorkerExit or Protocol error, got: {err}"
    );
}

#[test]
fn worker_that_writes_garbage_is_a_typed_error() {
    // `/bin/echo` writes non-frame bytes and exits: the frame decoder
    // must reject the stream with a typed error.
    let garbage = ProcessTransport::new("/bin/echo".into());
    let err = garbage
        .run(&spec(), 1, SEED)
        .expect_err("a garbage-writing worker must fail the run");
    assert!(
        matches!(
            err,
            TransportError::Frame { .. }
                | TransportError::WorkerExit { .. }
                | TransportError::Protocol(_)
        ),
        "expected a frame/protocol error, got: {err}"
    );
}
