//! Event-engine equivalence harness.
//!
//! The world-engine refactor (`population::world::WorldEngine`) replaced
//! the hand-rolled loops of `run_deployment` and `run_visit_batch` with
//! a discrete-event queue. That refactor is only admissible if it is
//! invisible: for any fixed seed, the engine-backed wrappers must
//! produce **bit-identical** output to the pre-engine drivers. This file
//! keeps verbatim copies of the legacy implementations (they used only
//! public APIs) and pins the wrappers against them across censored and
//! uncensored worlds and multiple seeds.
//!
//! If an intentional behaviour change ever lands in the engine, update
//! these reference copies in the same commit and say why in the message.

use encore_repro::browser::BrowserClient;
use encore_repro::censor::registry::install_world_censors;
use encore_repro::encore::coordination::SchedulingStrategy;
use encore_repro::encore::delivery::OriginSite;
use encore_repro::encore::system::EncoreSystem;
use encore_repro::encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
use encore_repro::netsim::geo::{country, World};
use encore_repro::netsim::http::{ContentType, HttpResponse};
use encore_repro::netsim::network::{ConstHandler, Network};
use encore_repro::population::{
    run_deployment, run_visit_batch, Audience, BatchConfig, BatchReport, DeploymentConfig,
    VisitRecord,
};
use encore_repro::sim_core::dist::{Exponential, Sample};
use encore_repro::sim_core::{SimDuration, SimRng, SimTime};

// ---------------------------------------------------------------------
// Verbatim legacy drivers (pre-engine implementations).
// ---------------------------------------------------------------------

/// The Poisson deployment driver exactly as it stood before the
/// event-engine refactor.
fn legacy_run_deployment(
    net: &mut Network,
    system: &mut EncoreSystem,
    audience: &Audience,
    config: &DeploymentConfig,
    rng: &mut SimRng,
) -> Vec<VisitRecord> {
    let mut arrivals_rng = rng.fork("deployment-arrivals");
    let mut visitor_rng = rng.fork("deployment-visitors");

    let origins: Vec<OriginSite> = system.origins.clone();
    let mut schedule: Vec<(SimTime, usize)> = Vec::new();
    for (idx, origin) in origins.iter().enumerate() {
        let rate_per_day = config.visits_per_day_per_weight * origin.popularity_weight;
        if rate_per_day <= 0.0 {
            continue;
        }
        let mean_gap_secs = 86_400.0 / rate_per_day;
        let gap = Exponential::from_mean(mean_gap_secs);
        let mut t = SimTime::ZERO;
        loop {
            let dt = SimDuration::from_millis_f64(gap.sample(&mut arrivals_rng) * 1_000.0);
            t += dt;
            if t.since(SimTime::ZERO) >= config.duration {
                break;
            }
            schedule.push((t, idx));
        }
    }
    schedule.sort_by_key(|&(t, idx)| (t, idx));

    let mut returning: Vec<BrowserClient> = Vec::new();
    let mut log = Vec::with_capacity(schedule.len());

    for (at, origin_index) in schedule {
        let visitor = audience.sample(&mut visitor_rng);
        let origin = &origins[origin_index];

        let reuse = !returning.is_empty() && visitor_rng.chance(config.repeat_visitor_rate);
        let mut client = if reuse {
            let idx = visitor_rng.index(returning.len());
            returning.swap_remove(idx)
        } else {
            BrowserClient::new(
                net,
                visitor.country,
                visitor.isp,
                visitor.engine,
                &visitor_rng,
            )
        };

        let ua = visitor.user_agent(client.engine);
        let effective_dwell = visitor.effective_dwell(&mut visitor_rng);
        let outcome = system.run_visit(net, &mut client, origin, effective_dwell, at, ua);

        log.push(VisitRecord {
            at,
            origin_index,
            country: client.host.country,
            dwell: visitor.dwell,
            is_crawler: visitor.is_crawler,
            outcome,
        });

        if returning.len() < config.returning_pool {
            returning.push(client);
        }
    }
    log
}

/// The batched driver exactly as it stood before the event-engine
/// refactor.
fn legacy_run_visit_batch(
    net: &mut Network,
    system: &mut EncoreSystem,
    audience: &Audience,
    config: &BatchConfig,
    rng: &mut SimRng,
) -> BatchReport {
    let mut arrivals_rng = rng.fork("batch-arrivals");
    let mut visitor_rng = rng.fork("batch-visitors");

    let origins = system.origins.clone();
    let weights: Vec<f64> = origins.iter().map(|o| o.popularity_weight).collect();
    let gap = Exponential::from_mean(config.mean_gap.as_millis_f64());

    let mut pool: Vec<BrowserClient> = Vec::new();
    let mut report = BatchReport::default();
    let mut t = SimTime::ZERO;

    for _ in 0..config.visits {
        t += SimDuration::from_millis_f64(gap.sample(&mut arrivals_rng));
        let Some(origin_idx) = visitor_rng.pick_weighted(&weights) else {
            break;
        };
        let origin = &origins[origin_idx];
        let visitor = audience.sample(&mut visitor_rng);

        let reuse = !pool.is_empty() && visitor_rng.chance(config.repeat_visitor_rate);
        let mut client = if reuse {
            report.clients_reused += 1;
            let idx = visitor_rng.index(pool.len());
            pool.swap_remove(idx)
        } else {
            report.clients_created += 1;
            BrowserClient::new(
                net,
                visitor.country,
                visitor.isp,
                visitor.engine,
                &visitor_rng,
            )
        };

        let ua = visitor.user_agent(client.engine);
        let effective_dwell = visitor.effective_dwell(&mut visitor_rng);
        let outcome = system.run_visit(net, &mut client, origin, effective_dwell, t, ua);

        report.visits += 1;
        report.origin_loads += u64::from(outcome.origin_loaded);
        report.visits_with_tasks += u64::from(outcome.got_task);
        report.tasks_executed += outcome.executed.len() as u64;
        report.results_delivered += outcome.results_delivered as u64;

        if pool.len() < config.client_pool {
            pool.push(client);
        } else {
            let s = client.session.stats();
            report.dns_cache_hits += s.dns_cache_hits;
            report.connections_reused += s.connections_reused;
            report.session_fetches += s.fetches;
        }
    }

    for client in &pool {
        let s = client.session.stats();
        report.dns_cache_hits += s.dns_cache_hits;
        report.connections_reused += s.connections_reused;
        report.session_fetches += s.fetches;
    }
    report.sim_span = t.since(SimTime::ZERO);
    report
}

// ---------------------------------------------------------------------
// Fixtures.
// ---------------------------------------------------------------------

fn favicon_world(censored: bool, origins: Vec<OriginSite>) -> (Network, EncoreSystem) {
    let mut net = Network::new(World::builtin());
    for domain in ["twitter.com", "youtube.com", "facebook.com"] {
        net.add_server(
            domain,
            country("US"),
            Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 500))),
        );
    }
    if censored {
        install_world_censors(&mut net);
    }
    let tasks: Vec<MeasurementTask> = ["twitter.com", "youtube.com", "facebook.com"]
        .iter()
        .enumerate()
        .map(|(i, d)| MeasurementTask {
            id: MeasurementId(i as u64),
            spec: TaskSpec::Image {
                url: format!("http://{d}/favicon.ico"),
            },
        })
        .collect();
    let sys = EncoreSystem::deploy(
        &mut net,
        tasks,
        SchedulingStrategy::RoundRobin,
        origins,
        country("US"),
    );
    (net, sys)
}

fn multi_origin() -> Vec<OriginSite> {
    vec![
        OriginSite::academic("origin-a.example").with_popularity(3.0),
        OriginSite::academic("origin-b.example").with_popularity(1.0),
        OriginSite::academic("origin-c.example").with_popularity(0.5),
    ]
}

// ---------------------------------------------------------------------
// Equivalence assertions.
// ---------------------------------------------------------------------

#[test]
fn deployment_wrapper_is_bit_identical_to_legacy_driver() {
    let audience = Audience::world(&World::builtin());
    let config = DeploymentConfig {
        duration: SimDuration::from_days(5),
        visits_per_day_per_weight: 25.0,
        ..DeploymentConfig::default()
    };
    for (seed, censored) in [(0xE7C0u64, true), (0xE7C1, false), (42, true)] {
        let (mut net_a, mut sys_a) = favicon_world(censored, multi_origin());
        let mut rng_a = SimRng::new(seed);
        let legacy = legacy_run_deployment(&mut net_a, &mut sys_a, &audience, &config, &mut rng_a);

        let (mut net_b, mut sys_b) = favicon_world(censored, multi_origin());
        let mut rng_b = SimRng::new(seed);
        let engine = run_deployment(&mut net_b, &mut sys_b, &audience, &config, &mut rng_b);

        assert_eq!(
            legacy.len(),
            engine.len(),
            "visit counts diverged (seed {seed:#x}, censored={censored})"
        );
        assert_eq!(
            legacy, engine,
            "visit logs diverged (seed {seed:#x}, censored={censored})"
        );
        assert_eq!(
            sys_a.collection.snapshot(),
            sys_b.collection.snapshot(),
            "collection stores diverged (seed {seed:#x}, censored={censored})"
        );
        // The wrapper must also leave the caller's RNG in the same state.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }
}

#[test]
fn batch_wrapper_is_bit_identical_to_legacy_driver() {
    let audience = Audience::world(&World::builtin());
    let config = BatchConfig {
        visits: 3_000,
        mean_gap: SimDuration::from_millis(1_500),
        ..BatchConfig::default()
    };
    for (seed, censored) in [(0xBA7Cu64, true), (0xBA7D, false), (7, true)] {
        let (mut net_a, mut sys_a) = favicon_world(censored, multi_origin());
        let mut rng_a = SimRng::new(seed);
        let legacy = legacy_run_visit_batch(&mut net_a, &mut sys_a, &audience, &config, &mut rng_a);

        let (mut net_b, mut sys_b) = favicon_world(censored, multi_origin());
        let mut rng_b = SimRng::new(seed);
        let engine = run_visit_batch(&mut net_b, &mut sys_b, &audience, &config, &mut rng_b);

        assert_eq!(
            legacy, engine,
            "batch reports diverged (seed {seed:#x}, censored={censored})"
        );
        assert_eq!(
            serde_json::to_string(&legacy).unwrap(),
            serde_json::to_string(&engine).unwrap()
        );
        assert_eq!(
            sys_a.collection.snapshot(),
            sys_b.collection.snapshot(),
            "collection stores diverged (seed {seed:#x}, censored={censored})"
        );
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }
}

#[test]
fn batch_wrapper_matches_legacy_on_degenerate_configs() {
    let audience = Audience::academic();
    // Zero visits, zero pool, weightless origins: every early-exit path.
    let configs = [
        BatchConfig {
            visits: 0,
            ..BatchConfig::default()
        },
        BatchConfig {
            visits: 200,
            client_pool: 0,
            repeat_visitor_rate: 0.0,
            ..BatchConfig::default()
        },
    ];
    for config in configs {
        let (mut net_a, mut sys_a) = favicon_world(false, multi_origin());
        let mut rng_a = SimRng::new(3);
        let legacy = legacy_run_visit_batch(&mut net_a, &mut sys_a, &audience, &config, &mut rng_a);
        let (mut net_b, mut sys_b) = favicon_world(false, multi_origin());
        let mut rng_b = SimRng::new(3);
        let engine = run_visit_batch(&mut net_b, &mut sys_b, &audience, &config, &mut rng_b);
        assert_eq!(legacy, engine, "diverged on {config:?}");
    }

    // All origins weightless: the arrival process halts after one draw.
    let ghost = vec![OriginSite::academic("ghost.example").with_popularity(0.0)];
    let (mut net_a, mut sys_a) = favicon_world(false, ghost.clone());
    let mut rng_a = SimRng::new(4);
    let legacy = legacy_run_visit_batch(
        &mut net_a,
        &mut sys_a,
        &audience,
        &BatchConfig::default(),
        &mut rng_a,
    );
    let (mut net_b, mut sys_b) = favicon_world(false, ghost);
    let mut rng_b = SimRng::new(4);
    let engine = run_visit_batch(
        &mut net_b,
        &mut sys_b,
        &audience,
        &BatchConfig::default(),
        &mut rng_b,
    );
    assert_eq!(legacy.visits, 0);
    assert_eq!(legacy, engine, "weightless-origin halt diverged");
}

#[test]
fn deployment_wrapper_matches_legacy_with_zero_weight_origins() {
    let audience = Audience::academic();
    let config = DeploymentConfig {
        duration: SimDuration::from_days(3),
        visits_per_day_per_weight: 20.0,
        ..DeploymentConfig::default()
    };
    // A weightless origin interleaved between active ones exercises the
    // per-origin scheduling skip exactly as the legacy loop did.
    let origins = vec![
        OriginSite::academic("active-a.example").with_popularity(2.0),
        OriginSite::academic("ghost.example").with_popularity(0.0),
        OriginSite::academic("active-b.example").with_popularity(1.0),
    ];
    let (mut net_a, mut sys_a) = favicon_world(false, origins.clone());
    let mut rng_a = SimRng::new(9);
    let legacy = legacy_run_deployment(&mut net_a, &mut sys_a, &audience, &config, &mut rng_a);
    let (mut net_b, mut sys_b) = favicon_world(false, origins);
    let mut rng_b = SimRng::new(9);
    let engine = run_deployment(&mut net_b, &mut sys_b, &audience, &config, &mut rng_b);
    assert_eq!(legacy, engine);
    assert!(legacy.iter().all(|v| v.origin_index != 1));
}
