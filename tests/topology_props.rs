//! Property tests for the scale-free AS topology and its
//! congestion-vs-control-plane contract.
//!
//! Satellite properties of the routed-world tentpole:
//!
//! * **generator soundness** — degree structure (heavier tails under a
//!   smaller exponent), connectivity/symmetry of the precomputed route
//!   tables, and byte-identical regeneration from the same seed;
//! * **memo invalidation** — `regenerate` strictly bumps the generation
//!   counter (the key every route memo and warm session validates
//!   against) while rebuilding deterministically;
//! * **data-plane isolation** — a hotspot brownout sheds fetches but
//!   never changes a DNS verdict, the middlebox set, or any
//!   pipeline-compilation counter. The isolation check is
//!   mutation-verified: control-plane tampering dressed up as a
//!   "brownout" (a topology regenerate, a middlebox flush) must be
//!   caught by the very observables the property asserts on.

use encore_repro::netsim::geo::{country, IspClass};
use encore_repro::netsim::http::HttpRequest;
use encore_repro::netsim::network::{FailureStage, FetchError, Network};
use encore_repro::netsim::scenario::WorldScenario;
use encore_repro::netsim::topology::TopologyConfig;
use encore_repro::netsim::AsTopology;
use encore_repro::sim_core::{SimRng, SimTime};
use proptest::prelude::*;

/// Countries exercised by the routing properties — a spread of regions
/// from the built-in world table.
const PROBE_COUNTRIES: [&str; 8] = ["US", "CN", "TR", "DE", "BR", "IN", "IR", "JP"];

/// Share of all edge endpoints owned by the highest-degree AS, averaged
/// over `reps` seeds derived from `seed` — the tail-heaviness statistic
/// the generator's exponent knob must move.
fn max_degree_share(seed: u64, gamma: f64, reps: u64) -> f64 {
    let mut total = 0.0;
    for i in 0..reps {
        let t = AsTopology::generate(TopologyConfig {
            seed: encore_repro::sim_core::splitmix_mix(seed ^ i),
            ases: 128,
            degree_exponent: gamma,
            ..TopologyConfig::default()
        });
        let max = t.degrees().iter().copied().max().unwrap_or(0) as f64;
        let sum: u32 = t.degrees().iter().sum();
        total += max / sum.max(1) as f64;
    }
    total / reps as f64
}

proptest! {
    // ------------------------------------------ generator structure

    #[test]
    fn same_seed_regenerates_byte_identically(seed in 0u64..1u64 << 48) {
        let a = AsTopology::generate(TopologyConfig::with_seed(seed));
        let b = AsTopology::generate(TopologyConfig::with_seed(seed));
        prop_assert_eq!(&a, &b);
        // Byte-level, not just structural: the path tables serialize to
        // identical JSON, so any persisted route artifact reproduces.
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn degrees_are_a_valid_multigraph_free_cover(seed in 0u64..1u64 << 48) {
        let t = AsTopology::generate(TopologyConfig::with_seed(seed));
        // Every AS attached with at least one link, and the degree
        // vector is exactly the links' endpoint multiset.
        prop_assert!(t.degrees().iter().all(|&d| d >= 1));
        let endpoint_sum: u32 = t.degrees().iter().sum();
        prop_assert_eq!(endpoint_sum as usize, 2 * t.links().len());
        // Links connect distinct ASes (no self-loops to hide in).
        prop_assert!(t.links().iter().all(|l| l.a != l.b));
    }

    #[test]
    fn routes_are_connected_and_symmetric(seed in 0u64..1u64 << 48) {
        let t = AsTopology::generate(TopologyConfig::with_seed(seed));
        let n = t.ases() as u32;
        for a in PROBE_COUNTRIES {
            for b in PROBE_COUNTRIES {
                let hops = t.hops_between(country(a), country(b));
                // BFS distance: bounded by the graph size (reachable),
                // zero only within one AS.
                prop_assert!(hops < n, "{a}->{b} unreachable");
                prop_assert_eq!(
                    hops,
                    t.hops_between(country(b), country(a)),
                    "shortest-path length must be symmetric"
                );
                if a == b {
                    prop_assert_eq!(hops, 0);
                }
            }
        }
    }

    #[test]
    fn smaller_exponent_means_heavier_degree_tail(seed in 0u64..1u64 << 40) {
        // γ = 2.1 (heavy tail) must concentrate more endpoints on the
        // top AS than γ = 3.0 (pure preferential attachment), averaged
        // over derived seeds to wash out single-draw noise.
        let heavy = max_degree_share(seed, 2.1, 6);
        let light = max_degree_share(seed.wrapping_add(0x5EED), 3.0, 6);
        prop_assert!(
            heavy > light,
            "tail heaviness did not increase: share(2.1)={heavy:.4} <= share(3.0)={light:.4}"
        );
    }

    // ------------------------------------------ memo invalidation

    #[test]
    fn regenerate_bumps_generation_and_rebuilds_deterministically(
        seed_a in 0u64..1u64 << 48,
        seed_b in 0u64..1u64 << 48,
    ) {
        let fresh = AsTopology::generate(TopologyConfig::with_seed(seed_a));
        // Starts at 1: warm sessions (which start at 0) must revalidate
        // their route memos on first contact.
        prop_assert_eq!(fresh.generation(), 1);

        let mut t = fresh.clone();
        t.regenerate(seed_b);
        prop_assert_eq!(t.generation(), 2, "regenerate must bump the memo key");
        t.regenerate(seed_a);
        prop_assert_eq!(t.generation(), 3, "every regenerate bumps, even back to an old seed");
        // Rebuilding from the original seed reproduces the graph and
        // path tables exactly — only the generation (the invalidation
        // key) differs.
        prop_assert_eq!(t.links(), fresh.links());
        prop_assert_eq!(t.degrees(), fresh.degrees());
        for a in PROBE_COUNTRIES {
            for b in PROBE_COUNTRIES {
                prop_assert_eq!(
                    t.route_between(country(a), country(b)),
                    fresh.route_between(country(a), country(b))
                );
            }
        }
    }

    // ------------------------------------------ data-plane isolation

    #[test]
    fn shedding_never_changes_dns_verdicts_or_middlebox_coverage(
        seed in 0u64..1u64 << 40,
        level in 0.72f64..0.95,
    ) {
        // Baseline net and a browned-out twin, both: routed topology
        // (TR↔US hotspot forced), standing CN DNS censor.
        let (mut base, base_obs) = routed_censored_net(None);
        let (mut brown, brown_obs) = routed_censored_net(Some(level));
        prop_assert_eq!(&base_obs, &brown_obs, "builds must start identical");

        let (base_verdicts, _) = drive(&mut base, seed);
        let (brown_verdicts, sheds) = drive(&mut brown, seed);

        // The property: congestion may shed any fetch, but every DNS
        // verdict — censored or clean — is identical fetch-for-fetch.
        // (DNS censorship precedes transit: a block keeps full failure
        // visibility no matter how congested the path.)
        prop_assert_eq!(&base_verdicts, &brown_verdicts);
        // The CN censor actually fired, so "verdicts equal" is not
        // vacuous; and a hot brownout actually sheds, so the data plane
        // was genuinely under stress while the verdicts held.
        prop_assert!(base_verdicts.iter().any(|v| v.is_some()), "censor never fired");
        if level > 0.80 {
            prop_assert!(sheds > 0, "brownout at level {level:.2} never shed");
        }

        // Control-plane conservation: the brownout flip and the whole
        // shed-laden run left every compilation counter and the
        // middlebox set untouched.
        prop_assert_eq!(&observe(&brown), &brown_obs,
            "a brownout must not move control-plane observables");

        // Mutation verification: the observables must have teeth. A
        // "brownout" that actually regenerates the topology (a
        // control-plane rebuild) or flushes the middlebox set must be
        // caught by the exact checks above.
        let (mut mutant, mutant_obs) = routed_censored_net(Some(level));
        mutant.topology_mut().unwrap().regenerate(seed ^ 1);
        prop_assert!(observe(&mutant) != mutant_obs,
            "topology regenerate slipped past the generation observable");

        let (mut mutant, mutant_obs) = routed_censored_net(Some(level));
        mutant.clear_middleboxes();
        prop_assert!(observe(&mutant) != mutant_obs,
            "middlebox flush slipped past the coverage observable");
    }
}

/// Everything the data-plane isolation property watches: pipeline
/// compilation counters and the middlebox coverage itself.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ControlPlaneObservation {
    middlebox_generation: u64,
    behavior_generation: u64,
    topology_generation: u64,
    middlebox_names: Vec<String>,
}

fn observe(net: &Network) -> ControlPlaneObservation {
    ControlPlaneObservation {
        middlebox_generation: net.middlebox_generation(),
        behavior_generation: net.behavior_generation(),
        topology_generation: net.topology_generation(),
        middlebox_names: net
            .middleboxes()
            .iter()
            .map(|m| m.name().to_string())
            .collect(),
    }
}

/// The congestion fixture's routed world (TR path to the US target
/// crosses a hotspot) with the timeline fixture's standing CN DNS
/// censor, optionally browned out.
fn routed_censored_net(brownout: Option<f64>) -> (Network, ControlPlaneObservation) {
    let scenario = WorldScenario::new(bench::congested_fixture::scenario())
        .with_middlebox(std::sync::Arc::new(bench::world_fixture::standing_censor()));
    let mut net = scenario.build_shard(0, 1);
    if let Some(level) = brownout {
        net.topology_mut()
            .expect("routed world has a topology")
            .set_hotspot_background(level);
    }
    let obs = observe(&net);
    (net, obs)
}

/// Drive the same deterministic fetch sequence (CN and TR clients
/// against the fixture target) and report each fetch's DNS verdict plus
/// how many fetches the transit layer shed. Per-fetch RNGs keep the
/// draw streams aligned between a baseline and a browned-out twin even
/// when sheds consume extra draws.
fn drive(net: &mut Network, seed: u64) -> (Vec<Option<FetchError>>, usize) {
    let cn = net.add_client(country("CN"), IspClass::Residential);
    let tr = net.add_client(country("TR"), IspClass::Residential);
    let url = format!("http://{}/favicon.ico", bench::congested_fixture::TARGET);
    let mut verdicts = Vec::new();
    let mut sheds = 0;
    for i in 0..48u64 {
        let client = if i % 2 == 0 { &cn } else { &tr };
        let mut rng = SimRng::new(seed ^ (i.wrapping_mul(0x9E37_79B9)));
        let out = net.fetch(
            client,
            &HttpRequest::get(&url),
            SimTime::from_secs(i * 30),
            &mut rng,
        );
        verdicts.push(match out.result {
            Err(e) if e.stage() == FailureStage::Dns => Some(e),
            _ => None,
        });
        if out.result == Err(FetchError::Congested) {
            sheds += 1;
        }
    }
    (verdicts, sheds)
}
