//! Full-stack integration test: synthetic web → Figure 3 pipeline →
//! deployment with national censors → §7.2 detection.
//!
//! This is the whole paper in one test: content generation, pattern
//! expansion, HAR capture, task generation, scheduling, delivery,
//! cross-origin measurement through censoring middleboxes, collection,
//! geolocation, and the binomial detector.

use encore_repro::browser::{BrowserClient, Engine};
use encore_repro::censor::national::NationalCensor;
use encore_repro::censor::policy::{CensorPolicy, Mechanism};
use encore_repro::encore::coordination::SchedulingStrategy;
use encore_repro::encore::delivery::OriginSite;
use encore_repro::encore::pipeline::{
    GenerationConfig, PatternExpander, TargetFetcher, TaskGenerator,
};
use encore_repro::encore::system::EncoreSystem;
use encore_repro::encore::{DetectorConfig, FilteringDetector, GeoDb};
use encore_repro::netsim::geo::{country, IspClass, World};
use encore_repro::netsim::network::Network;
use encore_repro::population::{run_deployment, Audience, DeploymentConfig};
use encore_repro::sim_core::{SimDuration, SimRng, SimTime};
use encore_repro::websim::generator::{SyntheticWeb, WebConfig};
use encore_repro::websim::{SearchIndex, UrlPattern};

#[test]
fn pipeline_to_detection_end_to_end() {
    let mut rng = SimRng::new(0xE2E);
    let world = World::builtin();
    let mut net = Network::new(world.clone());

    // 1. The web corpus.
    let web = SyntheticWeb::generate(&WebConfig::small(), &mut rng);
    web.install(&mut net, &mut rng);
    let index = SearchIndex::build(&web);

    // 2. A censor: Iran blocks the first two corpus domains outright.
    let blocked: Vec<String> = web.domains().into_iter().take(2).collect();
    let mut policy = CensorPolicy::named("iran-test");
    for d in &blocked {
        policy = policy.block_domain(d, Mechanism::HttpBlockPage);
    }
    net.add_middlebox(Box::new(NationalCensor::new(country("IR"), policy)));

    // 3. The Figure 3 pipeline (run from an unfiltered US vantage).
    let patterns: Vec<UrlPattern> = web.domains().into_iter().map(UrlPattern::Domain).collect();
    let expander = PatternExpander::new(&index);
    let urls = expander.expand_all(&patterns);
    let root = SimRng::new(1);
    let headless = BrowserClient::new(
        &mut net,
        country("US"),
        IspClass::Academic,
        Engine::Chrome,
        &root,
    );
    let mut fetcher = TargetFetcher::new(headless);
    let hars = fetcher.fetch_all(&mut net, &urls, SimTime::ZERO);
    let mut generator = TaskGenerator::new(GenerationConfig {
        max_image_bytes: 5_000,
        ..GenerationConfig::default()
    });
    let tasks = generator.generate_all(&hars, |_| true);
    assert!(tasks.len() > 20, "pipeline yielded {} tasks", tasks.len());

    // Keep only tasks for the two blocked domains plus two controls, so
    // the deployment concentrates measurements.
    let controls: Vec<String> = web.domains().into_iter().skip(2).take(2).collect();
    let keep: Vec<_> = tasks
        .into_iter()
        .filter(|t| {
            t.spec
                .target_domain()
                .is_some_and(|d| blocked.contains(&d) || controls.contains(&d))
        })
        .collect();
    assert!(!keep.is_empty());

    // 4. Deploy and run two weeks of visits from a world audience.
    let origins = vec![
        OriginSite::academic("origin-a.example").with_popularity(4.0),
        OriginSite::academic("origin-b.example").with_popularity(4.0),
    ];
    let mut sys = EncoreSystem::deploy(
        &mut net,
        keep,
        SchedulingStrategy::CoordinatedBursts {
            window: SimDuration::from_secs(120),
        },
        origins,
        country("US"),
    );
    let audience = Audience::world(&world);
    let config = DeploymentConfig {
        duration: SimDuration::from_days(14),
        visits_per_day_per_weight: 40.0,
        ..DeploymentConfig::default()
    };
    let log = run_deployment(&mut net, &mut sys, &audience, &config, &mut rng);
    assert!(log.len() > 1_000, "only {} visits", log.len());
    assert!(sys.collection.len() > 500);

    // 5. Detect.
    let geo = GeoDb::from_allocator(&net.allocator);
    let detector = FilteringDetector::new(DetectorConfig {
        min_measurements: 5,
        ..DetectorConfig::default()
    });
    let detections = sys.detect(&geo, &detector);

    // Every detection must be a blocked domain in Iran; both blocked
    // domains should surface if they got enough measurements.
    for d in &detections {
        assert_eq!(d.country, country("IR"), "false detection: {d:?}");
        assert!(blocked.contains(&d.domain), "false detection: {d:?}");
        assert_eq!(d.x, 0, "hard blocking admits no successes");
    }
    assert!(
        !detections.is_empty(),
        "expected at least one Iranian detection"
    );
}

#[test]
fn outage_is_not_reported_as_censorship_end_to_end() {
    // A target that goes offline fails for everyone — the cross-region
    // control must suppress it.
    let mut rng = SimRng::new(0x0FF);
    let world = World::builtin();
    let mut net = Network::new(world.clone());

    use encore_repro::encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
    // DNS name registered to an address where nothing listens.
    net.add_dns_alias("dead.example", std::net::Ipv4Addr::new(100, 77, 0, 1));
    let tasks = vec![MeasurementTask {
        id: MeasurementId(0),
        spec: TaskSpec::Image {
            url: "http://dead.example/favicon.ico".into(),
        },
    }];
    let origin = OriginSite::academic("origin.example");
    let mut sys = EncoreSystem::deploy(
        &mut net,
        tasks,
        SchedulingStrategy::RoundRobin,
        vec![origin],
        country("US"),
    );
    let config = DeploymentConfig {
        duration: SimDuration::from_days(3),
        visits_per_day_per_weight: 60.0,
        ..DeploymentConfig::default()
    };
    let log = run_deployment(
        &mut net,
        &mut sys,
        &Audience::world(&world),
        &config,
        &mut rng,
    );
    assert!(log.len() > 100);

    let geo = GeoDb::from_allocator(&net.allocator);
    let detections = sys.detect(&geo, &FilteringDetector::default());
    assert!(
        detections.is_empty(),
        "offline target misreported as filtered: {detections:?}"
    );
}
