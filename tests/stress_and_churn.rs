//! Failure-injection and churn integration tests: Encore's inferences
//! must survive adverse, smoltcp-style network conditions and targets
//! that go offline mid-run.

use encore_repro::censor::national::NationalCensor;
use encore_repro::censor::policy::{CensorPolicy, Mechanism};
use encore_repro::encore::coordination::SchedulingStrategy;
use encore_repro::encore::delivery::OriginSite;
use encore_repro::encore::system::EncoreSystem;
use encore_repro::encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
use encore_repro::encore::{DetectorConfig, FilteringDetector, GeoDb};
use encore_repro::netsim::fault::FaultInjector;
use encore_repro::netsim::geo::{country, World};
use encore_repro::netsim::http::{ContentType, HttpResponse};
use encore_repro::netsim::network::{ConstHandler, Network};
use encore_repro::population::{run_deployment, Audience, DeploymentConfig};
use encore_repro::sim_core::{OneSidedBinomialTest, SimDuration, SimRng};

fn favicon_task(domain: &str, id: u64) -> MeasurementTask {
    MeasurementTask {
        id: MeasurementId(id),
        spec: TaskSpec::Image {
            url: format!("http://{domain}/favicon.ico"),
        },
    }
}

/// Under smoltcp's suggested 15% drop / 15% corrupt stress configuration,
/// a *lenient* detector still distinguishes the really-blocked target
/// from the merely-lossy control — because blocking produces ~0% success
/// while stress produces ~70%.
#[test]
fn detection_survives_smoltcp_stress_conditions() {
    let world = World::builtin();
    let mut net = Network::new(world.clone());
    net.fault = FaultInjector::stress();
    for d in ["blocked.example", "control.example"] {
        net.add_server(
            d,
            country("US"),
            Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
        );
    }
    let policy =
        CensorPolicy::named("censor").block_domain("blocked.example", Mechanism::DnsNxDomain);
    net.add_middlebox(Box::new(NationalCensor::new(country("IR"), policy)));

    let tasks = vec![
        favicon_task("blocked.example", 0),
        favicon_task("control.example", 1),
    ];
    let origin = OriginSite::academic("origin.example").with_popularity(4.0);
    let mut sys = EncoreSystem::deploy(
        &mut net,
        tasks,
        SchedulingStrategy::RoundRobin,
        vec![origin],
        country("US"),
    );
    let mut rng = SimRng::new(0x57E55);
    let config = DeploymentConfig {
        duration: SimDuration::from_days(10),
        visits_per_day_per_weight: 60.0,
        ..DeploymentConfig::default()
    };
    run_deployment(
        &mut net,
        &mut sys,
        &Audience::world(&world),
        &config,
        &mut rng,
    );

    let geo = GeoDb::from_allocator(&net.allocator);
    // The default p = 0.7 null would flag *everything* at 30% ambient
    // loss; a deployment on a lossy substrate must lower the prior —
    // which is exactly the "dynamically tuning model parameters" future
    // work §7.2 sketches. p = 0.5 keeps the control clean.
    let detector = FilteringDetector::new(DetectorConfig {
        test: OneSidedBinomialTest::new(0.5, 0.05),
        min_measurements: 10,
        ..DetectorConfig::default()
    });
    let detections = sys.detect(&geo, &detector);
    assert!(
        detections
            .iter()
            .any(|d| d.domain == "blocked.example" && d.country == country("IR")),
        "stress hid the real block: {detections:?}"
    );
    assert!(
        detections.iter().all(|d| d.domain != "control.example"),
        "stress caused false positives on the control: {detections:?}"
    );
}

/// A target that goes offline partway through the run: windows before
/// the outage are clean, windows after fail *globally* — and the
/// cross-region control keeps every window free of false detections.
#[test]
fn mid_run_outage_never_flagged() {
    let world = World::builtin();
    let mut net = Network::new(world.clone());
    net.add_server(
        "flaky-host.example",
        country("US"),
        Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
    );

    let tasks = vec![favicon_task("flaky-host.example", 0)];
    let origin = OriginSite::academic("origin.example").with_popularity(4.0);
    let mut sys = EncoreSystem::deploy(
        &mut net,
        tasks,
        SchedulingStrategy::RoundRobin,
        vec![origin],
        country("US"),
    );
    let mut rng = SimRng::new(0x0FF1);

    // First half: healthy.
    let config = DeploymentConfig {
        duration: SimDuration::from_days(4),
        visits_per_day_per_weight: 50.0,
        ..DeploymentConfig::default()
    };
    run_deployment(
        &mut net,
        &mut sys,
        &Audience::world(&world),
        &config,
        &mut rng,
    );

    // The site dies: DNS record withdrawn, caches flushed.
    net.dns.unregister("flaky-host.example");
    net.dns.flush_caches();

    // Second half: global failure. (The driver restarts its schedule at
    // t=0; received_at ordering within each half is all the windowed
    // detector needs — we shift attention to detections only.)
    run_deployment(
        &mut net,
        &mut sys,
        &Audience::world(&world),
        &config,
        &mut rng,
    );

    let geo = GeoDb::from_allocator(&net.allocator);
    let detections = sys.detect(&geo, &FilteringDetector::default());
    assert!(
        detections.is_empty(),
        "outage misattributed to censorship: {detections:?}"
    );
    // Sanity: the second half really did fail.
    let records = sys.collection.records();
    let failures = records
        .iter()
        .filter(|r| r.submission.outcome == Some(encore_repro::encore::tasks::TaskOutcome::Failure))
        .count();
    assert!(failures > 100, "expected mass failures, got {failures}");
}
