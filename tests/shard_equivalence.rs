//! The shard-equivalence determinism harness.
//!
//! Parallelising the population is only admissible if the parallel run is
//! provably the same experiment as the serial one (aggregate conclusions
//! from a biased substrate are worthless — the whole point of §7.2's
//! cross-region test is statistical trust in the sampling). Three levels
//! of equivalence are enforced here:
//!
//! 1. **Lockstep** — a 1-shard sharded run *is* the serial batch driver:
//!    bit-identical `BatchReport` counters and collection records for the
//!    same seed.
//! 2. **Reproducibility** — a fixed `(seed, shards)` pair yields
//!    byte-identical merged output on every run, regardless of thread
//!    scheduling.
//! 3. **Verdict equivalence** — the §7.2 detector, run once over the
//!    merged union, reaches identical censored-vs-uncensored verdicts at
//!    1, 2, and 8 shards: exactly the ground-truth (domain, country)
//!    pairs, nothing else.
//!
//! The fixture (censored/uncensored §7.2 worlds over the sharded
//! scenario) is shared with the `scale` bin and its bench via
//! `bench::shard_fixture`, so the scenario CI gates on is exactly the
//! scenario this harness proves equivalent.

use bench::shard_fixture::{batch, build_censored, build_uncensored, verdict_keys};
use encore_repro::censor::registry::ground_truth;
use encore_repro::encore::FilteringDetector;
use encore_repro::netsim::geo::World;
use encore_repro::population::shard::ShardContext;
use encore_repro::population::{run_sharded_batch, run_visit_batch, Audience, ShardedBatchConfig};
use encore_repro::sim_core::SimRng;

fn world_audience() -> Audience {
    Audience::world(&World::builtin())
}

/// Sorted `domain:country` verdict keys from a sharded run.
fn verdicts(shards: usize, seed: u64, visits: u64) -> Vec<String> {
    let config = ShardedBatchConfig {
        shards,
        batch: batch(visits),
    };
    let run = run_sharded_batch(&build_censored, &world_audience(), &config, seed);
    verdict_keys(&run.collection.records, &run.geo)
}

#[test]
fn one_shard_locksteps_the_serial_batch_driver() {
    let seed = 0xD00D;
    let config = batch(2_000);
    let audience = world_audience();

    // Serial: the existing driver over the serial (shard 0 of 1) build.
    let (mut net, mut sys) = build_censored(ShardContext {
        index: 0,
        shards: 1,
    });
    let mut rng = SimRng::new(seed);
    let serial_report = run_visit_batch(&mut net, &mut sys, &audience, &config, &mut rng);
    let serial_snapshot = sys.collection.snapshot();

    // Sharded at N = 1.
    let sharded = run_sharded_batch(
        &build_censored,
        &audience,
        &ShardedBatchConfig {
            shards: 1,
            batch: config,
        },
        seed,
    );

    assert_eq!(
        sharded.report, serial_report,
        "1-shard report must be bit-identical to the serial driver"
    );
    assert_eq!(
        sharded.collection, serial_snapshot,
        "1-shard collection store must be identical to the serial driver"
    );
    // And the serialized artifacts agree byte for byte.
    assert_eq!(
        serde_json::to_string(&sharded.report).unwrap(),
        serde_json::to_string(&serial_report).unwrap()
    );
}

#[test]
fn verdicts_identical_across_shard_counts() {
    let seed = 0xE7C0;
    let visits = 6_000;
    let v1 = verdicts(1, seed, visits);
    let v2 = verdicts(2, seed, visits);
    let v8 = verdicts(8, seed, visits);

    assert_eq!(v1, v2, "1-shard and 2-shard verdicts diverged");
    assert_eq!(v1, v8, "1-shard and 8-shard verdicts diverged");

    // And they are the right verdicts: exactly the paper's ground truth.
    let mut expected: Vec<String> = ground_truth()
        .into_iter()
        .map(|g| format!("{}:{}", g.domain, g.country))
        .collect();
    expected.sort();
    assert_eq!(v1, expected, "verdicts differ from §7.2 ground truth");
}

#[test]
fn uncensored_world_yields_no_verdicts_at_any_shard_count() {
    let audience = world_audience();
    for shards in [1usize, 2, 8] {
        let config = ShardedBatchConfig {
            shards,
            batch: batch(2_000),
        };
        let run = run_sharded_batch(&build_uncensored, &audience, &config, 0xC1EA);
        let detections = FilteringDetector::default().detect(&run.collection.records, &run.geo);
        assert!(
            detections.is_empty(),
            "false detections at {shards} shards: {detections:?}"
        );
    }
}

#[test]
fn fixed_seed_and_shard_count_reproduces_run_to_run() {
    let go = || {
        let run = run_sharded_batch(
            &build_censored,
            &world_audience(),
            &ShardedBatchConfig {
                shards: 4,
                batch: batch(1_500),
            },
            0xBEEF,
        );
        (
            serde_json::to_string(&run.report).unwrap(),
            serde_json::to_string(&run.collection).unwrap(),
        )
    };
    let (report_a, coll_a) = go();
    let (report_b, coll_b) = go();
    assert_eq!(report_a, report_b, "merged report not reproducible");
    assert_eq!(coll_a, coll_b, "merged collection store not reproducible");
}

#[test]
fn different_seeds_diverge_in_detail_but_not_in_verdict() {
    let a = verdicts(2, 1, 4_000);
    let b = verdicts(2, 2, 4_000);
    assert_eq!(a, b, "the science must be seed-invariant");

    let run_a = run_sharded_batch(
        &build_censored,
        &world_audience(),
        &ShardedBatchConfig {
            shards: 2,
            batch: batch(1_000),
        },
        1,
    );
    let run_b = run_sharded_batch(
        &build_censored,
        &world_audience(),
        &ShardedBatchConfig {
            shards: 2,
            batch: batch(1_000),
        },
        2,
    );
    assert_ne!(run_a.report, run_b.report, "seeds should differ in detail");
}

/// Golden snapshot: the merged-report JSON for a fixed scenario is pinned
/// byte for byte. Any change to RNG stream derivation, shard
/// partitioning, merge order, or report field layout shows up here as a
/// loud diff instead of a silent drift.
#[test]
fn merged_report_json_matches_golden_snapshot() {
    let run = run_sharded_batch(
        &build_censored,
        &world_audience(),
        &ShardedBatchConfig {
            shards: 2,
            batch: batch(1_000),
        },
        0x901D,
    );
    let json = serde_json::to_string(&run.report).unwrap();
    let golden = include_str!("golden/merged_report.json").trim();
    assert_eq!(
        json, golden,
        "merged report drifted from tests/golden/merged_report.json — if \
         the change is intentional, regenerate the golden file"
    );
}
