//! The sharded-world equivalence harness.
//!
//! `population::run_sharded_world` executes one longitudinal
//! [`WorldRecipe`] — arrivals *plus* scheduled censorship dynamics — on
//! N OS threads, the way large discrete-event simulators parallelise:
//! control events replicate on every partition, workload events
//! partition 1/N, outputs merge deterministically. That is only
//! admissible if the parallel run is provably the same *experiment* as
//! the serial one. Three levels of equivalence are enforced here, on the
//! `bench::world_fixture` Turkey-timeline scenario (the same fixture the
//! `timeline` and `world_scale` binaries gate on in CI):
//!
//! 1. **Lockstep** — a 1-shard `run_sharded_world` is **byte-identical**
//!    to the serial `WorldEngine::from_recipe(..).run()` on the same
//!    recipe: the merged `WorldOutcome` (visit log, report, rollup
//!    series, policy count) and the collection snapshot, down to their
//!    serialized JSON.
//! 2. **Verdict invariance** — the §7.2 windowed detector localises the
//!    Turkey block's onset (day 10) and lift (day 20) identically at 1,
//!    2, and 8 shards, and censorship verdicts match at every shard
//!    count — including with a *standing* censor pre-installed through
//!    the `netsim::scenario::WorldScenario` middlebox-factory hook.
//! 3. **Reproducibility** — a fixed `(seed, shards)` pair yields
//!    byte-identical merged output on every run, regardless of thread
//!    scheduling.

use bench::world_fixture::{
    self, build, build_with_standing_censor, judge_timeline, LIFT_DAY, ONSET_DAY, TARGET,
};
use encore_repro::netsim::geo::{country, World};
use encore_repro::population::shard::ShardContext;
use encore_repro::population::{run_sharded_world, Audience, WorldEngine};
use encore_repro::sim_core::SimRng;

fn audience() -> Audience {
    Audience::world(&World::builtin())
}

#[test]
fn one_shard_locksteps_the_serial_world_engine() {
    let seed = 0x70_11;
    let recipe = world_fixture::recipe(30, 150.0);

    // Serial: the engine replaying the recipe on the serial build.
    let (mut net, mut sys) = build(ShardContext {
        index: 0,
        shards: 1,
    });
    let mut rng = SimRng::new(seed);
    let serial = WorldEngine::from_recipe(&mut net, &mut sys, &audience(), &recipe, &mut rng).run();
    let serial_snapshot = sys.collection.snapshot();

    // Sharded at N = 1.
    let sharded = run_sharded_world(&build, &audience(), &recipe, 1, seed);

    assert_eq!(
        sharded.outcome, serial,
        "1-shard world outcome must be bit-identical to the serial engine"
    );
    assert_eq!(
        sharded.collection, serial_snapshot,
        "1-shard collection store must be identical to the serial engine's"
    );
    // And the serialized artifacts agree byte for byte (report + the
    // newly serializable rollup series).
    assert_eq!(
        serde_json::to_string(&sharded.outcome.report).unwrap(),
        serde_json::to_string(&serial.report).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&sharded.outcome.rollups).unwrap(),
        serde_json::to_string(&serial.rollups).unwrap()
    );
    // The run actually exercised the dynamics: both policy changes
    // fired, rollups accumulated daily.
    assert_eq!(serial.policy_changes_applied, 2);
    assert!(serial.rollups.len() >= 29, "daily rollups over 30 days");
}

#[test]
fn turkey_verdict_is_invariant_across_shard_counts() {
    let seed = 0xE7_C0;
    let recipe = world_fixture::recipe(30, 150.0);
    let judgments: Vec<_> = [1usize, 2, 8]
        .into_iter()
        .map(|shards| {
            let run = run_sharded_world(&build, &audience(), &recipe, shards, seed);
            // Control events replicate: every shard applied both policy
            // changes, so the merged control-plane count is exactly 2.
            assert_eq!(
                run.outcome.policy_changes_applied, 2,
                "{shards}-shard run lost a broadcast policy change"
            );
            judge_timeline(&run.collection.records, &run.geo, country("TR"), TARGET)
        })
        .collect();

    for (j, shards) in judgments.iter().zip([1usize, 2, 8]) {
        assert_eq!(
            j.onset_day,
            Some(ONSET_DAY),
            "{shards}-shard run mislocalised the onset"
        );
        assert_eq!(
            j.lift_day,
            Some(LIFT_DAY),
            "{shards}-shard run mislocalised the lift"
        );
    }
    // The full per-day flag series agrees too (not just the endpoints):
    // days 10..19 flagged, everything else clear, at every shard count.
    for (j, shards) in judgments.iter().zip([1usize, 2, 8]) {
        for (day, _, flagged) in &j.days {
            assert_eq!(
                *flagged,
                (ONSET_DAY..LIFT_DAY).contains(day),
                "{shards}-shard flag series wrong at day {day}"
            );
        }
    }
}

#[test]
fn standing_censor_worlds_stay_equivalent_across_shards() {
    // A censor already in force at t=0, installed through the
    // WorldScenario middlebox-factory hook on every shard thread, plus
    // the scheduled Turkish block on top.
    let seed = 0x57_AD;
    let recipe = world_fixture::recipe(30, 150.0);
    for shards in [1usize, 2] {
        let run = run_sharded_world(
            &build_with_standing_censor,
            &audience(),
            &recipe,
            shards,
            seed,
        );
        let cn = judge_timeline(&run.collection.records, &run.geo, country("CN"), TARGET);
        // China is blocked the whole run: flagged from the first window,
        // never lifted.
        assert_eq!(cn.onset_day, Some(0), "{shards}-shard CN onset");
        assert_eq!(cn.lift_day, None, "{shards}-shard CN lift");
        assert!(
            cn.days.iter().all(|(_, _, flagged)| *flagged),
            "{shards}-shard run lost the standing CN block in some window"
        );
        // And the scheduled Turkish dynamics are unaffected by the
        // pre-installed middlebox.
        let tr = judge_timeline(&run.collection.records, &run.geo, country("TR"), TARGET);
        assert_eq!(tr.onset_day, Some(ONSET_DAY), "{shards}-shard TR onset");
        assert_eq!(tr.lift_day, Some(LIFT_DAY), "{shards}-shard TR lift");
    }
}

#[test]
fn fixed_seed_and_shard_count_reproduces_byte_for_byte() {
    // A shorter world keeps the doubled run affordable; reproducibility
    // does not depend on the horizon.
    let recipe = world_fixture::recipe(8, 150.0);
    let go = || {
        let run = run_sharded_world(&build, &audience(), &recipe, 4, 0xBEEF);
        (
            serde_json::to_string(&run.outcome.report).unwrap(),
            serde_json::to_string(&run.outcome.rollups).unwrap(),
            serde_json::to_string(&run.collection).unwrap(),
            run.outcome.log,
        )
    };
    let (report_a, rollups_a, coll_a, log_a) = go();
    let (report_b, rollups_b, coll_b, log_b) = go();
    assert_eq!(report_a, report_b, "merged report not reproducible");
    assert_eq!(rollups_a, rollups_b, "merged rollups not reproducible");
    assert_eq!(coll_a, coll_b, "merged collection not reproducible");
    assert_eq!(log_a, log_b, "merged visit log not reproducible");
}

#[test]
fn merged_log_is_time_ordered_and_complete() {
    let recipe = world_fixture::recipe(6, 150.0);
    let run = run_sharded_world(&build, &audience(), &recipe, 3, 0x106);
    assert_eq!(
        run.outcome.log.len() as u64,
        run.outcome.report.visits,
        "merged log must cover every visit the merged report counted"
    );
    for w in run.outcome.log.windows(2) {
        assert!(w[0].at <= w[1].at, "merged log out of order");
    }
    assert_eq!(
        run.per_shard.iter().map(|r| r.visits).sum::<u64>(),
        run.outcome.report.visits
    );
}
