//! Determinism: the whole stack is reproducible from one seed.
//!
//! Two runs with the same seed must produce byte-identical collection
//! records and detections; a different seed must diverge. This is the
//! property that makes every EXPERIMENTS.md number regenerable.

use encore_repro::censor::registry::install_world_censors;
use encore_repro::encore::coordination::SchedulingStrategy;
use encore_repro::encore::delivery::OriginSite;
use encore_repro::encore::system::EncoreSystem;
use encore_repro::encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
use encore_repro::encore::{FilteringDetector, GeoDb};
use encore_repro::netsim::geo::{country, World};
use encore_repro::netsim::http::{ContentType, HttpResponse};
use encore_repro::netsim::network::{ConstHandler, Network};
use encore_repro::population::{run_deployment, Audience, DeploymentConfig};
use encore_repro::sim_core::{SimDuration, SimRng};

fn run(seed: u64) -> (String, Vec<String>) {
    let world = World::builtin();
    let mut net = Network::new(world.clone());
    for d in encore_repro::censor::registry::SAFE_TARGETS {
        net.add_server(
            d,
            country("US"),
            Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 500))),
        );
    }
    install_world_censors(&mut net);
    let tasks: Vec<MeasurementTask> = encore_repro::censor::registry::SAFE_TARGETS
        .iter()
        .enumerate()
        .map(|(i, d)| MeasurementTask {
            id: MeasurementId(i as u64),
            spec: TaskSpec::Image {
                url: format!("http://{d}/favicon.ico"),
            },
        })
        .collect();
    let origins = vec![OriginSite::academic("origin.example").with_popularity(3.0)];
    let mut sys = EncoreSystem::deploy(
        &mut net,
        tasks,
        SchedulingStrategy::RoundRobin,
        origins,
        country("US"),
    );
    let mut rng = SimRng::new(seed);
    let config = DeploymentConfig {
        duration: SimDuration::from_days(12),
        visits_per_day_per_weight: 60.0,
        ..DeploymentConfig::default()
    };
    run_deployment(
        &mut net,
        &mut sys,
        &Audience::world(&world),
        &config,
        &mut rng,
    );

    // Serialise everything observable.
    let records = serde_json::to_string(&sys.collection.records()).unwrap();
    let geo = GeoDb::from_allocator(&net.allocator);
    let detections: Vec<String> = sys
        .detect(&geo, &FilteringDetector::default())
        .into_iter()
        .map(|d| format!("{}:{}:{}:{}", d.domain, d.country, d.n, d.x))
        .collect();
    (records, detections)
}

#[test]
fn same_seed_is_byte_identical() {
    let (rec_a, det_a) = run(1234);
    let (rec_b, det_b) = run(1234);
    assert_eq!(rec_a, rec_b, "collection records diverged");
    assert_eq!(det_a, det_b, "detections diverged");
}

#[test]
fn different_seed_diverges_but_conclusions_hold() {
    let (rec_a, det_a) = run(1234);
    let (rec_b, det_b) = run(5678);
    assert_ne!(rec_a, rec_b, "different seeds should differ in detail");
    // The *science* is seed-invariant: same set of (domain, country)
    // pairs detected.
    let keys = |dets: &[String]| {
        let mut ks: Vec<String> = dets
            .iter()
            .map(|d| d.split(':').take(2).collect::<Vec<_>>().join(":"))
            .collect();
        ks.sort();
        ks.dedup();
        ks
    };
    assert_eq!(keys(&det_a), keys(&det_b), "conclusions changed with seed");
}
