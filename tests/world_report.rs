//! Golden snapshot of the flagship generative-corpus world report.
//!
//! `bench::corpus_fixture` runs 90 days over a seeded
//! `websim::corpus::Corpus` — 12 Zipf-ranked sites with scale-free
//! cross-links, installed identically on every shard because the
//! generated web is `Send + Sync` (`Arc<SiteContent>` throughout) — under
//! four simultaneous censor stories: the standing CN/IR/PK registry
//! regimes, Turkey's scheduled twitter.com block (days 30–60), Russia's
//! adaptive escalation against the corpus' rank-0 site (RST day 20 →
//! DNS poison day 35 → IP block day 50 → stand-down day 75), and three
//! *benign* disruptions against the measured rank-1 site (origin outage
//! days 40–42, cert rotation day 55, permanent redesign day 70).
//!
//! The scenario pins three things:
//!
//! 1. **Golden byte-identity** — the serial run's full artifact
//!    serializes byte-identically to `tests/golden/world_report.json`
//!    (regenerate with `ENCORE_BLESS=1 cargo test --test world_report`).
//!    The `world_report` binary writes the same artifact, so CI's
//!    `diff results/world_report.json tests/golden/world_report.json`
//!    and this test can never disagree.
//! 2. **Zero false positives with localisation** — every censor story is
//!    localised to its ground-truth onset/lift day, while the globally
//!    disrupted domain is *never* detected as censored anywhere, even
//!    though it fails hard on 23 of the 90 days.
//! 3. **Shard invariance** — a 2-shard run reaches the identical verdict
//!    set (every pair's onset, lift, and flag series, and the disruption
//!    soundness counts).

use bench::corpus_fixture::{
    self, build, CERT_ROTATION_DAY, DAYS, OUTAGE_END, OUTAGE_START, RATE, REDESIGN_DAY, RU_RST_DAY,
    RU_STAND_DOWN_DAY, TR_BLOCK_LIFT, TR_BLOCK_ONSET,
};
use encore_repro::population::{run_sharded_world, ShardedWorldRun};

const SEED: u64 = 0x0000_E7C0_2015; // bench::DEFAULT_SEED — the binary's gate engages here.

fn run(shards: usize) -> (ShardedWorldRun, corpus_fixture::WorldReport) {
    let recipe = corpus_fixture::recipe(DAYS, RATE);
    let audience = corpus_fixture::audience();
    let run = run_sharded_world(&build, &audience, &recipe, shards, SEED);
    let report = corpus_fixture::report(&run, shards, DAYS, SEED);
    (run, report)
}

#[test]
fn world_report_matches_golden_and_is_shard_invariant() {
    let (serial, report) = run(1);
    assert_eq!(
        serial.outcome.policy_changes_applied, 2,
        "TR install + lift must both land"
    );
    assert_eq!(
        serial.outcome.control_signals_applied, 4,
        "all four RU escalation reactions must land"
    );

    let json = serde_json::to_string_pretty(&report).expect("artifact serializes");
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/world_report.json"
    );
    if std::env::var("ENCORE_BLESS").is_ok() {
        std::fs::write(golden_path, &json).expect("write golden");
        eprintln!("[blessed {golden_path}]");
    }
    let golden = std::fs::read_to_string(golden_path).expect(
        "golden snapshot missing — regenerate with ENCORE_BLESS=1 cargo test --test world_report",
    );
    assert_eq!(
        json, golden,
        "world report drifted from tests/golden/world_report.json \
         (regenerate with ENCORE_BLESS=1 if the change is intentional)"
    );

    // Semantic checks on top of the byte pin — the corpus world must
    // actually tell its four censor stories and stay silent on the
    // benign one.
    let v = &report.verdicts;
    let pair = |cc: &str, domain: &str| {
        v.pairs
            .iter()
            .find(|p| p.country == cc && p.domain == domain)
            .unwrap_or_else(|| panic!("tracked pair {cc}:{domain} missing"))
    };
    let corpus = corpus_fixture::corpus();
    let rank0 = corpus_fixture::adaptive_target(&corpus);
    let rank1 = corpus_fixture::disrupted_domain(&corpus);

    // Standing registry regimes: flagged from day 0, never lifted.
    for (cc, domain) in [
        ("CN", "twitter.com"),
        ("IR", "twitter.com"),
        ("CN", "youtube.com"),
        ("PK", "youtube.com"),
    ] {
        let p = pair(cc, domain);
        assert_eq!(p.onset_day, Some(0), "{cc}:{domain} onset");
        assert_eq!(p.lift_day, None, "{cc}:{domain} must never lift");
        assert_eq!(
            p.flagged_days.len() as u64,
            DAYS,
            "{cc}:{domain} flagged every day"
        );
    }
    // The scheduled Turkish block localises to its exact onset and lift.
    let tr = pair("TR", "twitter.com");
    assert_eq!(tr.onset_day, Some(TR_BLOCK_ONSET), "TR onset day");
    assert_eq!(tr.lift_day, Some(TR_BLOCK_LIFT), "TR lift day");
    // The adaptive escalation is detected across its whole active window
    // (address-matched RST through IP block), vanishing at stand-down.
    let ru = pair("RU", &rank0);
    assert_eq!(ru.onset_day, Some(RU_RST_DAY), "RU onset at the first rung");
    assert_eq!(
        ru.lift_day,
        Some(RU_STAND_DOWN_DAY),
        "RU lift at stand-down"
    );
    // The disrupted-but-benign domain: hard global failures on the
    // outage, rotation, and post-redesign days…
    let failure_days = &v.disrupted_failure_days;
    for d in OUTAGE_START..OUTAGE_END {
        assert!(
            failure_days.contains(&d),
            "outage day {d} must fail globally"
        );
    }
    assert!(
        failure_days.contains(&CERT_ROTATION_DAY),
        "cert-rotation day must fail globally"
    );
    for d in REDESIGN_DAY..DAYS {
        assert!(
            failure_days.contains(&d),
            "post-redesign day {d} must fail globally"
        );
    }
    // …and yet zero censorship detections anywhere, in any country: the
    // cross-region control absorbs global operational noise.
    assert_eq!(
        v.disrupted_detections, 0,
        "benign disruptions must never be flagged as censorship"
    );
    assert_eq!(v.disrupted_domain, rank1);
    let ru_rank1 = pair("RU", &rank1);
    assert_eq!(ru_rank1.onset_day, None, "no onset for the benign domain");
    assert!(
        ru_rank1.flagged_days.is_empty(),
        "no flags for the benign domain"
    );

    // Shard invariance: the 2-shard run reaches the identical verdicts.
    let (sharded, report2) = run(2);
    assert_eq!(
        sharded.outcome.control_signals_applied, 4,
        "broadcast reactions must land on every shard"
    );
    assert_eq!(
        report2.verdicts, report.verdicts,
        "2-shard verdicts differ from serial"
    );
    assert_eq!(
        report2.corpus_domains, report.corpus_domains,
        "the corpus must be identical on every shard"
    );
}
