//! Property-based tests (proptest) over the public API: parsers never
//! panic, statistics preserve their invariants, addressing stays
//! consistent, and the submission wire format round-trips for all
//! inputs.

use encore_repro::censor::policy::{BlockTarget, CensorPolicy, Mechanism};
use encore_repro::encore::collection::{Submission, SubmissionPhase};
use encore_repro::encore::tasks::{MeasurementId, TaskOutcome, TaskType};
use encore_repro::netsim::http::{host_of, path_of};
use encore_repro::netsim::ip::Ipv4Net;
use encore_repro::sim_core::stats::binomial_cdf;
use encore_repro::sim_core::{Cdf, EventQueue, OneSidedBinomialTest, SimTime};
use encore_repro::websim::UrlPattern;
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    // ---------------- URL handling ----------------

    #[test]
    fn host_and_path_never_panic(s in ".{0,200}") {
        let _ = host_of(&s);
        let _ = path_of(&s);
    }

    #[test]
    fn host_of_wellformed_is_lowercase(host in "[A-Za-z][A-Za-z0-9-]{0,20}(\\.[A-Za-z]{2,6}){1,2}", path in "[a-z0-9/._-]{0,40}") {
        let url = format!("http://{host}/{path}");
        let parsed = host_of(&url).expect("well-formed URL must parse");
        prop_assert_eq!(parsed, host.to_ascii_lowercase());
    }

    #[test]
    fn url_pattern_parse_never_panics(s in ".{0,120}") {
        let p = UrlPattern::parse(&s);
        // Matching against arbitrary text must also be panic-free.
        let _ = p.matches("http://example.com/x");
        let _ = p.matches(&s);
    }

    #[test]
    fn domain_pattern_matches_its_own_pages(
        host in "[a-z][a-z0-9-]{0,15}\\.(com|org|net)",
        path in "[a-z0-9/._-]{0,30}",
    ) {
        let p = UrlPattern::Domain(host.clone());
        let own = format!("http://{host}/{path}");
        let sub = format!("http://www.{host}/{path}");
        let evil = format!("http://evil-{host}.attacker.net/{path}");
        prop_assert!(p.matches(&own));
        prop_assert!(p.matches(&sub));
        prop_assert!(!p.matches(&evil));
    }

    // ---------------- statistics ----------------

    #[test]
    fn cdf_is_monotone_and_bounded(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200), probe in -1e6f64..1e6) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cdf = Cdf::new(xs.clone());
        let f = cdf.fraction_at_most(probe);
        prop_assert!((0.0..=1.0).contains(&f));
        let f2 = cdf.fraction_at_most(probe + 1.0);
        prop_assert!(f2 >= f);
        prop_assert_eq!(cdf.fraction_at_most(xs[xs.len() - 1]), 1.0);
    }

    #[test]
    fn cdf_quantiles_are_order_preserving(xs in proptest::collection::vec(0f64..1e6, 1..100), q1 in 0f64..1.0, q2 in 0f64..1.0) {
        let cdf = Cdf::new(xs);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = cdf.quantile(lo).unwrap();
        let b = cdf.quantile(hi).unwrap();
        prop_assert!(a <= b);
    }

    #[test]
    fn binomial_cdf_bounded_and_monotone(n in 1u64..300, p in 0.0f64..1.0, x in 0u64..300) {
        let x = x.min(n);
        let c = binomial_cdf(n, p, x);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
        if x < n {
            prop_assert!(binomial_cdf(n, p, x + 1) >= c - 1e-12);
        }
        prop_assert!((binomial_cdf(n, p, n) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn detector_never_rejects_perfect_success(n in 1u64..500) {
        let t = OneSidedBinomialTest::default();
        prop_assert!(!t.rejects(n, n));
    }

    #[test]
    fn detector_rejects_total_failure_at_scale(n in 10u64..500) {
        let t = OneSidedBinomialTest::default();
        prop_assert!(t.rejects(n, 0));
    }

    // ---------------- addressing ----------------

    #[test]
    fn ipv4net_contains_every_nth(oct in proptest::array::uniform4(0u8..=255), prefix in 8u8..=30, idx in 0u64..1024) {
        let net = Ipv4Net::new(Ipv4Addr::new(oct[0], oct[1], oct[2], oct[3]), prefix);
        if let Some(addr) = net.nth(idx % net.size()) {
            prop_assert!(net.contains(addr));
        }
    }

    #[test]
    fn ipv4net_size_matches_prefix(prefix in 0u8..=32) {
        let net = Ipv4Net::new(Ipv4Addr::new(10, 0, 0, 0), prefix);
        prop_assert_eq!(net.size(), 1u64 << (32 - prefix));
    }

    // ---------------- event queue ----------------

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(*t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    // ---------------- submission wire format ----------------

    #[test]
    fn submission_roundtrips(
        id in 0u64..u64::MAX,
        success in proptest::bool::ANY,
        congested in proptest::bool::ANY,
        elapsed in 0u64..1_000_000,
        ttype in 0usize..4,
        target in "http://[a-z]{1,12}\\.(com|org)/[a-zA-Z0-9/._%-]{0,40}",
        ua in "[a-zA-Z0-9 ()/.;-]{0,30}",
    ) {
        let sub = Submission {
            measurement_id: MeasurementId(id),
            phase: SubmissionPhase::Result,
            outcome: Some(if success { TaskOutcome::Success } else { TaskOutcome::Failure }),
            elapsed_ms: elapsed,
            task_type: TaskType::ALL[ttype],
            target_url: target,
            user_agent: ua,
            congested,
        };
        let url = format!("http://collector.example/submit?{}", sub.to_query());
        let back = Submission::from_url(&url).expect("roundtrip parse");
        prop_assert_eq!(sub, back);
    }

    #[test]
    fn submission_parser_never_panics(s in ".{0,300}") {
        let _ = Submission::from_url(&s);
        let _ = Submission::from_url(&format!("http://c/submit?{s}"));
    }

    // ---------------- censor policies ----------------

    #[test]
    fn policy_matching_never_panics(
        domain in "[a-z]{1,10}\\.(com|org)",
        url in ".{0,120}",
    ) {
        let p = CensorPolicy::named("prop")
            .block_domain(&domain, Mechanism::DnsNxDomain)
            .with_rule(
                BlockTarget::Keyword("kw".into()),
                Mechanism::HttpReset,
            );
        let _ = p.match_dns(&url);
        let _ = p.targets_host(&url);
    }

    #[test]
    fn domain_rule_blocks_all_its_urls(
        domain in "[a-z]{1,10}\\.(com|org)",
        path in "[a-z0-9/]{0,24}",
    ) {
        let p = CensorPolicy::named("prop").block_domain(&domain, Mechanism::DnsNxDomain);
        let www = format!("www.{domain}");
        let url = format!("http://{domain}/{path}");
        prop_assert!(p.match_dns(&domain).is_some());
        prop_assert!(p.match_dns(&www).is_some());
        // DNS-stage rules never fire at the HTTP stage.
        let req = encore_repro::netsim::http::HttpRequest::get(url);
        prop_assert!(p.match_http_request(&req).is_none());
    }
}
