//! Integration tests for the Table 2 ethics staging and the §8
//! adversary-resistance mechanisms.

use encore_repro::browser::{BrowserClient, Engine};
use encore_repro::censor::national::NationalCensor;
use encore_repro::censor::policy::{CensorPolicy, Mechanism};
use encore_repro::encore::coordination::SchedulingStrategy;
use encore_repro::encore::delivery::{InstallMethod, OriginSite};
use encore_repro::encore::pipeline::{GenerationConfig, TaskGenerator};
use encore_repro::encore::system::EncoreSystem;
use encore_repro::encore::targets::EthicsStage;
use encore_repro::encore::tasks::{MeasurementId, MeasurementTask, TaskSpec, TaskType};
use encore_repro::netsim::geo::{country, IspClass, World};
use encore_repro::netsim::http::{ContentType, HttpResponse};
use encore_repro::netsim::network::{ConstHandler, Network};
use encore_repro::sim_core::{SimDuration, SimRng, SimTime};
use encore_repro::websim::har::{Har, HarEntry};

fn corpus_hars() -> Vec<Har> {
    // Two sites: a social target and an obscure activist site, each with
    // a favicon, a photo, a stylesheet and a nosniff script.
    ["youtube.com", "activist-blog.org"]
        .iter()
        .map(|domain| Har {
            page_url: format!("http://{domain}/page.html"),
            entries: vec![
                HarEntry {
                    url: format!("http://{domain}/page.html"),
                    status: 200,
                    content_type: ContentType::Html,
                    body_bytes: 30_000,
                    cacheable: false,
                    nosniff: false,
                    time: SimDuration::from_millis(60),
                    ok: true,
                },
                HarEntry {
                    url: format!("http://{domain}/favicon.ico"),
                    status: 200,
                    content_type: ContentType::Image,
                    body_bytes: 420,
                    cacheable: true,
                    nosniff: false,
                    time: SimDuration::from_millis(40),
                    ok: true,
                },
                HarEntry {
                    url: format!("http://{domain}/photo.png"),
                    status: 200,
                    content_type: ContentType::Image,
                    body_bytes: 900,
                    cacheable: true,
                    nosniff: false,
                    time: SimDuration::from_millis(40),
                    ok: true,
                },
                HarEntry {
                    url: format!("http://{domain}/style.css"),
                    status: 200,
                    content_type: ContentType::Stylesheet,
                    body_bytes: 2_000,
                    cacheable: true,
                    nosniff: false,
                    time: SimDuration::from_millis(40),
                    ok: true,
                },
                HarEntry {
                    url: format!("http://{domain}/lib.js"),
                    status: 200,
                    content_type: ContentType::Script,
                    body_bytes: 20_000,
                    cacheable: true,
                    nosniff: true,
                    time: SimDuration::from_millis(40),
                    ok: true,
                },
            ],
            page_ok: true,
        })
        .collect()
}

#[test]
fn ethics_stages_progressively_restrict_the_pool() {
    let hars = corpus_hars();
    let mut generator = TaskGenerator::new(GenerationConfig {
        max_image_bytes: 1_000,
        ..GenerationConfig::default()
    });
    let all = generator.generate_all(&hars, |_| true);

    let unrestricted = EthicsStage::Unrestricted.filter(all.clone());
    let favicons = EthicsStage::FaviconsOnly.filter(all.clone());
    let final_stage = EthicsStage::FaviconsFewSites.filter(all.clone());

    assert!(unrestricted.len() > favicons.len());
    assert!(favicons.len() > final_stage.len());

    // Favicon stage: only image tasks on /favicon.ico, but on any site.
    assert!(favicons.iter().all(|t| {
        t.spec.task_type() == TaskType::Image && t.spec.target_url().ends_with("/favicon.ico")
    }));
    assert!(favicons
        .iter()
        .any(|t| t.spec.target_url().contains("activist-blog.org")));

    // Final stage: favicons on the high-collateral trio only.
    assert_eq!(final_stage.len(), 1);
    assert_eq!(
        final_stage[0].spec.target_url(),
        "http://youtube.com/favicon.ico"
    );
}

#[test]
fn inline_install_keeps_measuring_when_coordinator_is_blocked() {
    let mut net = Network::ideal(World::builtin());
    net.add_server(
        "target.example",
        country("US"),
        Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
    );
    let policy = CensorPolicy::named("anti-encore")
        .block_domain("coordinator.encore-repro.net", Mechanism::IpDrop);
    let mut censor = NationalCensor::new(country("IR"), policy);
    // The censor resolves Encore's infrastructure addresses *after*
    // deployment, like a real blacklist compiler would…
    let tag = OriginSite::academic("tag.example");
    let inline =
        OriginSite::academic("inline.example").with_install(InstallMethod::ServerSideInline);
    let mut sys = EncoreSystem::deploy(
        &mut net,
        vec![MeasurementTask {
            id: MeasurementId(0),
            spec: TaskSpec::Image {
                url: "http://target.example/favicon.ico".into(),
            },
        }],
        SchedulingStrategy::RoundRobin,
        vec![tag.clone(), inline.clone()],
        country("US"),
    );
    censor.resolve_ip_rules(&net.dns);
    net.add_middlebox(Box::new(censor));

    let root = SimRng::new(0xE7);
    let mut run = |origin: &OriginSite| {
        let mut c = BrowserClient::new(
            &mut net,
            country("IR"),
            IspClass::Residential,
            Engine::Chrome,
            &root,
        );
        sys.run_visit(
            &mut net,
            &mut c,
            origin,
            SimDuration::from_secs(30),
            SimTime::ZERO,
            "Chrome",
        )
    };
    let tag_outcome = run(&tag);
    let inline_outcome = run(&inline);
    assert!(
        !tag_outcome.got_task,
        "IP-dropped coordinator must block tag installs"
    );
    assert!(inline_outcome.got_task, "inline install is unaffected");
    assert_eq!(inline_outcome.results_delivered, 1);
}

#[test]
fn mirror_restores_collection_under_blocking() {
    let mut net = Network::ideal(World::builtin());
    net.add_server(
        "target.example",
        country("US"),
        Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
    );
    let policy = CensorPolicy::named("anti-collector")
        .block_domain("collector.encore-repro.net", Mechanism::DnsDrop);
    net.add_middlebox(Box::new(NationalCensor::new(country("CN"), policy)));

    let origin = OriginSite::academic("origin.example");
    let mut sys = EncoreSystem::deploy(
        &mut net,
        vec![MeasurementTask {
            id: MeasurementId(0),
            spec: TaskSpec::Image {
                url: "http://target.example/favicon.ico".into(),
            },
        }],
        SchedulingStrategy::RoundRobin,
        vec![origin.clone()],
        country("US"),
    );

    let root = SimRng::new(0x111);
    let visit = |sys: &mut EncoreSystem, net: &mut Network| {
        let mut c = BrowserClient::new(
            net,
            country("CN"),
            IspClass::Residential,
            Engine::Chrome,
            &root,
        );
        sys.run_visit(
            net,
            &mut c,
            &origin,
            SimDuration::from_secs(30),
            SimTime::ZERO,
            "Chrome",
        )
    };

    let before = visit(&mut sys, &mut net);
    assert_eq!(before.results_delivered, 0, "collector blocked");
    assert!(!before.executed.is_empty(), "measurement still ran");

    sys.add_collector_mirror(&mut net, "mirror.aws-like.example", country("SG"));
    let after = visit(&mut sys, &mut net);
    assert_eq!(after.results_delivered, 1, "mirror failover");
    assert!(sys.collection.len() >= 2, "mirror shares the store");
}
