//! The generative differential harness, at tier-1 scale.
//!
//! CI runs the full budget (`cargo run --release -p bench --bin
//! simcheck -- --cases 200`); this suite keeps a smaller always-on
//! budget inside `cargo test` so the invariants are exercised on every
//! local run too, plus proptest-driven spot properties over the
//! generator/oracle pair.

use proptest::prelude::*;
use simcheck::generator::{CaseClass, CaseStrategy, WorldCase};
use simcheck::{check_case, run_budget, SimCheckConfig};

#[test]
fn small_budget_upholds_all_invariants() {
    // 12 worlds (3 detector-class, 1 congestion-class, 1 corpus-class,
    // 3 transport-differenced, 3 streaming-differenced): enough to
    // execute every oracle — including the routed congestion oracles,
    // the generative-corpus benignity oracle, the threads-vs-process
    // transport oracle, and the exact-vs-streaming analytics oracle —
    // on every run without dominating tier-1 time. The root seed
    // differs from the CI bin's default so the two sweeps cover
    // disjoint cases.
    let config = SimCheckConfig {
        cases: 12,
        detector_every: 5,
        congestion_every: 6,
        corpus_every: 7,
        transport_every: 4,
        streaming_every: 4,
        root_seed: 0x7157_C0DE,
        regression_path: None,
    };
    let report = run_budget(&config);
    assert_eq!(report.cases_run, 12);
    assert_eq!(report.detector_cases, 3);
    assert_eq!(report.congestion_cases, 1);
    assert_eq!(report.corpus_cases, 1);
    assert_eq!(
        report.streaming_cases, 3,
        "the streaming oracle must run on every 4th case"
    );
    assert_eq!(
        report.transport_cases, 3,
        "the transport oracle must run (is the case_worker binary built?)"
    );
    assert!(
        report.censored_cases >= 3,
        "the generator should censor most worlds ({} of 10)",
        report.censored_cases
    );
    assert!(
        report.passed(),
        "invariant violations: {:#?}",
        report.violations
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Each drawn equivalence-class world upholds the exact-replay
    // oracles (lockstep, reproducibility, merge algebra) — the
    // proptest-macro entry point into the same oracle the budgeted
    // runner uses.
    #[test]
    fn arbitrary_equivalence_worlds_uphold_exact_replay(
        case in CaseStrategy { class: CaseClass::Equivalence },
    ) {
        let violations = check_case(&case);
        prop_assert!(
            violations.is_empty(),
            "case seed {:#x}: {violations:#?}",
            case.seed
        );
    }

    // Case generation is a pure function of (class, seed): the embedded
    // seed always regenerates the identical world.
    #[test]
    fn cases_regenerate_from_their_embedded_seed(
        case in CaseStrategy { class: CaseClass::Detector },
    ) {
        prop_assert_eq!(WorldCase::from_seed(case.class, case.seed), case);
    }

    // Each drawn routed congestion world upholds the full oracle stack:
    // the exact-replay algebra plus congestion soundness (no false
    // positive from a brownout, exact localisation through one).
    #[test]
    fn arbitrary_congestion_worlds_uphold_their_oracles(
        case in CaseStrategy { class: CaseClass::Congestion },
    ) {
        let violations = check_case(&case);
        prop_assert!(
            violations.is_empty(),
            "case seed {:#x}: {violations:#?}",
            case.seed
        );
    }
}
