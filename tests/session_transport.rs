//! Session-layer integration: the whole stack issues its traffic through
//! `netsim`'s `FetchSession`, and the session semantics survive end-to-end
//! through `encore::system`'s Figure-2 visit flow.

use encore_repro::browser::{BrowserClient, Engine};
use encore_repro::censor::national::NationalCensor;
use encore_repro::censor::policy::{CensorPolicy, Mechanism};
use encore_repro::encore::coordination::SchedulingStrategy;
use encore_repro::encore::delivery::OriginSite;
use encore_repro::encore::system::EncoreSystem;
use encore_repro::encore::tasks::{MeasurementId, MeasurementTask, TaskOutcome, TaskSpec};
use encore_repro::netsim::geo::{country, IspClass, World};
use encore_repro::netsim::http::{ContentType, HttpRequest, HttpResponse};
use encore_repro::netsim::network::{ConstHandler, Network};
use encore_repro::netsim::session::{FetchSession, SessionConfig};
use encore_repro::sim_core::{SimDuration, SimRng, SimTime};

fn deployment(censored: bool) -> (Network, EncoreSystem, OriginSite) {
    let mut net = Network::ideal(World::builtin());
    net.add_server(
        "target.example",
        country("US"),
        Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
    );
    if censored {
        let policy =
            CensorPolicy::named("blocker").block_domain("target.example", Mechanism::DnsNxDomain);
        net.add_middlebox(Box::new(NationalCensor::new(country("PK"), policy)));
    }
    let tasks = vec![MeasurementTask {
        id: MeasurementId(0),
        spec: TaskSpec::Image {
            url: "http://target.example/favicon.ico".into(),
        },
    }];
    let origin = OriginSite::academic("prof.example");
    let sys = EncoreSystem::deploy(
        &mut net,
        tasks,
        SchedulingStrategy::RoundRobin,
        vec![origin.clone()],
        country("US"),
    );
    (net, sys, origin)
}

/// Same seed ⇒ identical fetch outcomes through an explicit cold
/// `FetchSession` and through the legacy `Network::fetch` wrapper — the
/// two paths are one pipeline.
#[test]
fn cold_session_and_legacy_fetch_agree_across_the_world() {
    for cc in ["US", "CN", "PK", "BR", "JP", "IR"] {
        let build = || {
            let mut net = Network::new(World::builtin());
            net.add_server(
                "site.example",
                country("DE"),
                Box::new(ConstHandler(HttpResponse::ok(ContentType::Html, 9_000))),
            );
            let client = net.add_client(country(cc), IspClass::Mobile);
            (net, client)
        };
        let req = HttpRequest::get("http://site.example/page");

        let (mut n1, c1) = build();
        let mut rng1 = SimRng::new(0xC0FFEE);
        let legacy = n1.fetch(&c1, &req, SimTime::ZERO, &mut rng1);

        let (mut n2, c2) = build();
        let mut rng2 = SimRng::new(0xC0FFEE);
        let mut session = FetchSession::with_config(c2, SessionConfig::cold());
        let via_session = session.fetch(&mut n2, &req, SimTime::ZERO, &mut rng2);

        assert_eq!(legacy, via_session, "divergence for client in {cc}");
    }
}

/// A full Figure-2 visit in an uncensored country: the measurement
/// succeeds, and the visit itself exercised the session layer (repeat
/// fetches to Encore's own infrastructure were amortised).
#[test]
fn uncensored_visit_succeeds_and_warms_the_session() {
    let (mut net, mut sys, origin) = deployment(false);
    let root = SimRng::new(0x5E55);
    let mut client = BrowserClient::new(
        &mut net,
        country("DE"),
        IspClass::Residential,
        Engine::Chrome,
        &root,
    );
    let out = sys.run_visit(
        &mut net,
        &mut client,
        &origin,
        SimDuration::from_secs(30),
        SimTime::ZERO,
        "Chrome",
    );
    assert!(out.origin_loaded);
    assert_eq!(out.executed.len(), 1);
    assert_eq!(out.executed[0].1.outcome, TaskOutcome::Success);
    assert_eq!(out.results_delivered, 1);

    // The init beacon and the result submission hit the same collector:
    // the second one must have reused session state.
    let stats = client.session.stats();
    assert!(
        stats.fetches >= 4,
        "visit flows through the session: {stats:?}"
    );
    assert!(
        stats.dns_cache_hits >= 1,
        "repeat collector fetch warm: {stats:?}"
    );
    assert!(stats.connections_reused >= 1, "keep-alive used: {stats:?}");
}

/// The same visit from behind a DNS-censoring country fails the
/// measurement but still delivers the failure report — and the detector
/// distinguishes the two countries.
#[test]
fn censored_vs_uncensored_visits_diverge_only_at_the_target() {
    let (mut net, mut sys, origin) = deployment(true);
    let root = SimRng::new(0x5E55);

    let mut blocked = BrowserClient::new(
        &mut net,
        country("PK"),
        IspClass::Residential,
        Engine::Chrome,
        &root,
    );
    let out_blocked = sys.run_visit(
        &mut net,
        &mut blocked,
        &origin,
        SimDuration::from_secs(30),
        SimTime::ZERO,
        "Chrome",
    );

    let mut free = BrowserClient::new(
        &mut net,
        country("DE"),
        IspClass::Residential,
        Engine::Chrome,
        &root,
    );
    let out_free = sys.run_visit(
        &mut net,
        &mut free,
        &origin,
        SimDuration::from_secs(30),
        SimTime::ZERO,
        "Chrome",
    );

    // Both visits complete the flow; only the measurement differs.
    assert!(out_blocked.origin_loaded && out_free.origin_loaded);
    assert_eq!(out_blocked.executed[0].1.outcome, TaskOutcome::Failure);
    assert_eq!(out_free.executed[0].1.outcome, TaskOutcome::Success);
    assert_eq!(out_blocked.results_delivered, 1, "failure still reported");
    assert_eq!(out_free.results_delivered, 1);
}

/// Whole-visit determinism through the session-backed stack: same seed,
/// same collection records.
#[test]
fn session_backed_visits_are_deterministic() {
    let run = |seed: u64| {
        let (mut net, mut sys, origin) = deployment(true);
        let root = SimRng::new(seed);
        for cc in ["PK", "DE", "PK", "US"] {
            let mut client = BrowserClient::new(
                &mut net,
                country(cc),
                IspClass::Residential,
                Engine::Chrome,
                &root,
            );
            sys.run_visit(
                &mut net,
                &mut client,
                &origin,
                SimDuration::from_secs(90),
                SimTime::from_secs(5),
                "Chrome",
            );
        }
        serde_json::to_string(&sys.collection.records()).unwrap()
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}
