//! Soundness matrix: every (task type × engine × filtering variety) cell
//! behaves per Table 1, as assertions rather than a printed table.

use encore_repro::browser::{BrowserClient, Engine};
use encore_repro::censor::testbed::{FilterVariety, Testbed};
use encore_repro::encore::tasks::{
    execute_task, MeasurementId, MeasurementTask, TaskOutcome, TaskSpec, TaskType,
    IFRAME_CACHE_THRESHOLD,
};
use encore_repro::netsim::geo::{country, IspClass, World};
use encore_repro::netsim::network::Network;
use encore_repro::sim_core::{SimRng, SimTime};

fn run_cell(task_type: TaskType, engine: Engine, variety: FilterVariety) -> Option<TaskOutcome> {
    let mut net = Network::ideal(World::builtin());
    let tb = Testbed::install(&mut net);
    let root = SimRng::new(0x50F7);
    let mut client = BrowserClient::new(
        &mut net,
        country("NL"),
        IspClass::Residential,
        engine,
        &root,
    );
    let spec = match task_type {
        TaskType::Image => TaskSpec::Image {
            url: tb.favicon_url(variety),
        },
        TaskType::Stylesheet => TaskSpec::Stylesheet {
            url: tb.style_url(variety),
        },
        TaskType::Script => TaskSpec::Script {
            url: tb.script_url(variety),
        },
        TaskType::Iframe => TaskSpec::Iframe {
            page_url: tb.page_url(variety),
            probe_image_url: format!("http://{}/embedded.png", variety.hostname()),
            threshold: IFRAME_CACHE_THRESHOLD,
        },
    };
    if !spec.compatible_with(engine) {
        return None;
    }
    let exec = execute_task(
        &MeasurementTask {
            id: MeasurementId(0),
            spec,
        },
        &mut client,
        &mut net,
        SimTime::ZERO,
    );
    assert!(
        !exec.executed_untrusted_code,
        "{task_type}/{engine}/{variety:?} executed untrusted code"
    );
    Some(exec.outcome)
}

#[test]
fn all_tasks_succeed_on_control_on_all_engines() {
    for engine in Engine::ALL {
        for task_type in TaskType::ALL {
            if let Some(outcome) = run_cell(task_type, engine, FilterVariety::Control) {
                assert_eq!(
                    outcome,
                    TaskOutcome::Success,
                    "{task_type} on {engine} failed on the unfiltered control"
                );
            }
        }
    }
}

#[test]
fn image_and_stylesheet_detect_every_variety_on_every_engine() {
    for engine in Engine::ALL {
        for task_type in [TaskType::Image, TaskType::Stylesheet] {
            for variety in FilterVariety::filtering() {
                let outcome = run_cell(task_type, engine, variety).expect("always compatible");
                assert_eq!(
                    outcome,
                    TaskOutcome::Failure,
                    "{task_type} on {engine} missed {variety:?}"
                );
            }
        }
    }
}

#[test]
fn iframe_detects_every_variety() {
    for variety in FilterVariety::filtering() {
        let outcome = run_cell(TaskType::Iframe, Engine::Chrome, variety).unwrap();
        assert_eq!(outcome, TaskOutcome::Failure, "iframe missed {variety:?}");
    }
}

#[test]
fn script_task_only_schedulable_on_chrome() {
    for engine in [Engine::Firefox, Engine::Safari, Engine::InternetExplorer] {
        assert!(
            run_cell(TaskType::Script, engine, FilterVariety::Control).is_none(),
            "script task must not run on {engine}"
        );
    }
    assert!(run_cell(TaskType::Script, Engine::Chrome, FilterVariety::Control).is_some());
}

#[test]
fn script_task_blind_spot_is_http_200_block_pages() {
    // A documented limitation, faithfully reproduced: Chrome's script
    // onload fires on *any* HTTP 200, so a censor that answers with a
    // 200-status block page is invisible to the script task…
    let outcome = run_cell(
        TaskType::Script,
        Engine::Chrome,
        FilterVariety::HttpBlockPage,
    )
    .unwrap();
    assert_eq!(outcome, TaskOutcome::Success, "(expected blind spot)");
    // …while the image task sees straight through it.
    let img = run_cell(
        TaskType::Image,
        Engine::Chrome,
        FilterVariety::HttpBlockPage,
    )
    .unwrap();
    assert_eq!(img, TaskOutcome::Failure);
    // And the script task still detects the six network-level varieties.
    for variety in FilterVariety::filtering().filter(|v| *v != FilterVariety::HttpBlockPage) {
        let o = run_cell(TaskType::Script, Engine::Chrome, variety).unwrap();
        assert_eq!(o, TaskOutcome::Failure, "script missed {variety:?}");
    }
}
