//! Golden snapshot of the adversarial adaptive-censor world.
//!
//! `bench::adaptive_fixture` runs 30 days under an escalating
//! [`censor::adaptive::AdaptiveCensor`]: Iran watches twitter.com, then
//! injects RSTs (day 6), poisons DNS with a lying TTL (day 12),
//! null-routes (day 18), **retaliates against the Encore collection
//! server itself** (day 24), and stands down (day 27). The scenario
//! pins three things:
//!
//! 1. **Golden byte-identity** — the serial (1-shard) run's day-by-day
//!    detector verdict serializes byte-identically to
//!    `tests/golden/adaptive_timeline.json` (regenerate with
//!    `ENCORE_BLESS=1 cargo test --test adaptive_world`).
//! 2. **Shard invariance** — a 2-shard run of the same recipe reaches
//!    the identical verdict (flag series, onset, lift) and applies the
//!    same five control signals, because reactions broadcast to every
//!    shard.
//! 3. **Retaliation blinds the detector** — while the censor blocks the
//!    collection server, Iranian measurements stop *arriving* rather
//!    than failing: the per-day record count collapses and the flag
//!    clears without the block being lifted — exactly the §8 threat the
//!    paper warns about.

use bench::adaptive_fixture::{
    self, build, censor_country, RETALIATE_DAY, RST_DAY, STAND_DOWN_DAY, TARGET,
};
use encore_repro::encore::{FilteringDetector, GeoDb, StoredMeasurement};
use encore_repro::netsim::geo::{CountryCode, World};
use encore_repro::population::{run_sharded_world, Audience, ShardedWorldRun};
use encore_repro::sim_core::SimDuration;
use serde::Serialize;

const SEED: u64 = 0xADA7_71FE;
const DAYS: u64 = 30;
const RATE: f64 = 150.0;

/// The golden artifact: the §7.2 windowed verdict over the escalating
/// run, plus the per-day record counts that expose the retaliation
/// blackout.
#[derive(Debug, Clone, PartialEq, Serialize)]
struct AdaptiveTimeline {
    seed: u64,
    days: u64,
    visits: u64,
    control_signals_applied: usize,
    /// `(day, result measurements from the censoring country, flagged)`.
    day_rows: Vec<(u64, usize, bool)>,
    onset_day: Option<u64>,
    lift_day: Option<u64>,
}

/// Count result-phase records geolocated to `cc` per day, and the flag
/// series for `cc:TARGET` — the fixture's single verdict definition.
fn judge(records: &[StoredMeasurement], geo: &GeoDb, cc: CountryCode) -> AdaptiveTimelineVerdict {
    let day = SimDuration::from_days(1);
    let reports = FilteringDetector::default().detect_windows(records, geo, day);
    let rows: Vec<(u64, usize, bool)> = reports
        .iter()
        .map(|r| {
            let flagged = r
                .detections
                .iter()
                .any(|d| d.country == cc && d.domain == TARGET);
            let cc_results = records
                .iter()
                .filter(|rec| {
                    rec.received_at.as_micros() / day.as_micros() == r.window
                        && rec.submission.phase == encore_repro::encore::SubmissionPhase::Result
                        && geo.lookup(rec.client_ip) == Some(cc)
                })
                .count();
            (r.window, cc_results, flagged)
        })
        .collect();
    // The one shared localisation rule (also used by the fuzz oracle
    // and the Turkey fixture).
    let (onset, lift) =
        encore_repro::encore::localise_transitions(rows.iter().map(|&(w, _, f)| (w, f)));
    AdaptiveTimelineVerdict { rows, onset, lift }
}

struct AdaptiveTimelineVerdict {
    rows: Vec<(u64, usize, bool)>,
    onset: Option<u64>,
    lift: Option<u64>,
}

fn run(shards: usize) -> (ShardedWorldRun, AdaptiveTimelineVerdict) {
    let recipe = adaptive_fixture::recipe(DAYS, RATE);
    let audience = Audience::world(&World::builtin());
    let run = run_sharded_world(&build, &audience, &recipe, shards, SEED);
    let verdict = judge(&run.collection.records, &run.geo, censor_country());
    (run, verdict)
}

#[test]
fn adaptive_timeline_matches_golden_and_is_shard_invariant() {
    let (serial, verdict) = run(1);
    assert_eq!(
        serial.outcome.control_signals_applied, 5,
        "all five scheduled reactions must land"
    );

    let artifact = AdaptiveTimeline {
        seed: SEED,
        days: DAYS,
        visits: serial.outcome.report.visits,
        control_signals_applied: serial.outcome.control_signals_applied,
        day_rows: verdict.rows.clone(),
        onset_day: verdict.onset,
        lift_day: verdict.lift,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("artifact serializes");

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/adaptive_timeline.json"
    );
    if std::env::var("ENCORE_BLESS").is_ok() {
        std::fs::write(golden_path, &json).expect("write golden");
        eprintln!("[blessed {golden_path}]");
    }
    let golden = std::fs::read_to_string(golden_path).expect(
        "golden snapshot missing — regenerate with ENCORE_BLESS=1 cargo test --test adaptive_world",
    );
    assert_eq!(
        json, golden,
        "adaptive timeline drifted from tests/golden/adaptive_timeline.json \
         (regenerate with ENCORE_BLESS=1 if the change is intentional)"
    );

    // Semantic checks on top of the byte pin — the ladder must actually
    // tell its story. Passive watching: clear.
    for (d, _, flagged) in &verdict.rows {
        if *d < RST_DAY {
            assert!(!flagged, "day {d}: watch stage must not interfere");
        }
        // Every hard rung up to retaliation is decisively flagged.
        if (RST_DAY..RETALIATE_DAY).contains(d) {
            assert!(flagged, "day {d}: escalated censor must be detected");
        }
        // After stand-down the block is gone (the 1-hour lying TTL may
        // bleed a few failures into day 27, but not a verdict).
        if *d >= STAND_DOWN_DAY {
            assert!(!flagged, "day {d}: stood-down censor still flagged");
        }
    }
    assert_eq!(
        verdict.onset,
        Some(RST_DAY),
        "onset localises to the first rung"
    );
    assert_eq!(
        verdict.lift,
        Some(RETALIATE_DAY),
        "the flag clears when retaliation silences the country, not when the block lifts"
    );
    // Retaliation blackout: while the collection server is blocked, the
    // country's records collapse instead of failing.
    let clear_days: Vec<usize> = verdict
        .rows
        .iter()
        .filter(|(d, _, _)| *d < RST_DAY)
        .map(|(_, n, _)| *n)
        .collect();
    let mean_clear = clear_days.iter().sum::<usize>() as f64 / clear_days.len() as f64;
    for (d, n, _) in &verdict.rows {
        if (RETALIATE_DAY..STAND_DOWN_DAY).contains(d) {
            assert!(
                (*n as f64) < mean_clear * 0.2,
                "day {d}: retaliation should silence the country ({n} records vs \
                 ~{mean_clear:.0} on clear days)"
            );
        }
    }

    // Shard invariance: the 2-shard run reaches the identical verdict.
    let (sharded, verdict2) = run(2);
    assert_eq!(
        sharded.outcome.control_signals_applied, 5,
        "broadcast reactions must land on every shard"
    );
    assert_eq!(verdict2.onset, verdict.onset, "2-shard onset differs");
    assert_eq!(verdict2.lift, verdict.lift, "2-shard lift differs");
    let flags = |v: &AdaptiveTimelineVerdict| -> Vec<u64> {
        v.rows
            .iter()
            .filter(|(_, _, f)| *f)
            .map(|(d, _, _)| *d)
            .collect()
    };
    assert_eq!(
        flags(&verdict2),
        flags(&verdict),
        "2-shard flag series differs from serial"
    );
}
