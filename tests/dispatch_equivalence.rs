//! Property test for the flat middlebox dispatch tables.
//!
//! A [`FetchSession`] compiles the network's middlebox chain into a
//! per-client pipeline and memoises per-host DNS verdicts (the flat
//! dispatch tables of the data-oriented hot path). These properties pin
//! the equivalence contract that makes the compilation safe:
//!
//! 1. A long-lived session whose tables are warm must classify every
//!    fetch exactly like a brand-new session that walks the middlebox
//!    set from scratch (the legacy per-fetch pattern walk).
//! 2. The memoised verdict must agree with a direct walk over
//!    `Network::middleboxes()` filtered by `applies_to` — the
//!    first non-`Pass` answer in installation order wins.
//! 3. Both must keep holding after `remove_middlebox` bumps the
//!    generation and forces warm sessions to recompile.

use encore_repro::censor::{CensorPolicy, Mechanism, NationalCensor};
use encore_repro::netsim::geo::{country, IspClass, World};
use encore_repro::netsim::http::HttpRequest;
use encore_repro::netsim::middlebox::{DnsAction, StageContext};
use encore_repro::netsim::network::{FetchError, Network};
use encore_repro::netsim::session::{FetchSession, SessionConfig};
use encore_repro::sim_core::{SimRng, SimTime};
use proptest::prelude::*;
use std::net::Ipv4Addr;

const HOSTS: [&str; 4] = [
    "news.example.com",
    "blog.example.org",
    "video.example.net",
    "mail.example.io",
];
const CLIENT_COUNTRIES: [&str; 4] = ["CN", "IR", "PK", "US"];
const SERVER_COUNTRIES: [&str; 4] = ["US", "DE", "JP", "NL"];

/// One generated censor: which country it covers, and per-host an
/// optional mechanism index.
#[derive(Debug, Clone)]
struct CensorSpec {
    country_idx: usize,
    /// `mech[h]` = None (host unfiltered) or Some(mechanism index).
    mech: Vec<Option<usize>>,
}

fn mechanism(idx: usize, sink: Ipv4Addr) -> Mechanism {
    match idx % 5 {
        0 => Mechanism::DnsNxDomain,
        1 => Mechanism::DnsRedirect(sink),
        2 => Mechanism::DnsDrop,
        3 => Mechanism::TcpReset,
        _ => Mechanism::IpDrop,
    }
}

fn censor_spec() -> impl Strategy<Value = CensorSpec> {
    // 0..5 = mechanism index, 5 = "host unfiltered".
    let maybe_mech = (0..6usize).prop_map(|x| (x < 5).then_some(x));
    (
        0..CLIENT_COUNTRIES.len(),
        proptest::collection::vec(maybe_mech, HOSTS.len()..HOSTS.len() + 1),
    )
        .prop_map(|(country_idx, mech)| CensorSpec { country_idx, mech })
}

/// Build the world: one server per host, one sinkhole address for DNS
/// redirects, and the generated censors installed in order.
fn build_network(censors: &[CensorSpec]) -> (Network, Ipv4Addr) {
    let mut net = Network::ideal(World::builtin());
    let mut sink = Ipv4Addr::new(0, 0, 0, 0);
    for (i, host) in HOSTS.iter().enumerate() {
        let h = net.add_server(
            host,
            country(SERVER_COUNTRIES[i % SERVER_COUNTRIES.len()]),
            Box::new(encore_repro::netsim::network::ConstHandler(
                encore_repro::netsim::http::HttpResponse::ok(
                    encore_repro::netsim::http::ContentType::Image,
                    1_000,
                ),
            )),
        );
        if i == 0 {
            // Reuse the first server as the redirect sink so forged
            // answers land on a real (wrong) host, as block pages do.
            sink = h.ip;
        }
    }
    for (n, spec) in censors.iter().enumerate() {
        let mut policy = CensorPolicy::named(format!("censor-{n}"));
        for (h, m) in spec.mech.iter().enumerate() {
            if let Some(m) = m {
                policy = policy.block_domain(HOSTS[h], mechanism(*m, sink));
            }
        }
        net.add_middlebox(Box::new(NationalCensor::new(
            country(CLIENT_COUNTRIES[spec.country_idx]),
            policy,
        )));
    }
    (net, sink)
}

/// The legacy per-fetch pattern walk, straight over the public API:
/// first non-`Pass` DNS answer from an applicable middlebox wins.
fn legacy_dns_walk(
    net: &Network,
    client: &encore_repro::netsim::host::Host,
    host: &str,
) -> DnsAction {
    let ctx = StageContext {
        client,
        now: SimTime::ZERO,
    };
    for mb in net.middleboxes() {
        if mb.applies_to(client) {
            match mb.on_dns(host, &ctx) {
                DnsAction::Pass => continue,
                act => return act,
            }
        }
    }
    DnsAction::Pass
}

/// Classify an outcome by everything the dispatch tables may influence:
/// success carries the resolved server, failure carries the error kind.
fn classify(
    out: &encore_repro::netsim::network::FetchOutcome,
) -> (Result<u16, FetchError>, Option<Ipv4Addr>) {
    let r = match &out.result {
        Ok(resp) => Ok(resp.status.0),
        Err(e) => Err(*e),
    };
    (r, out.server_ip)
}

/// Check that the memoised DNS verdict is consistent with the direct
/// walk, given the observed fetch classification.
fn verdict_consistent(
    action: &DnsAction,
    class: &(Result<u16, FetchError>, Option<Ipv4Addr>),
    sink: Ipv4Addr,
) -> bool {
    match action {
        DnsAction::NxDomain => class.0 == Err(FetchError::DnsNxDomain),
        DnsAction::Drop => class.0 == Err(FetchError::DnsTimeout),
        DnsAction::Redirect(ip) | DnsAction::Poison { ip, .. } => {
            // The fetch proceeds against the forged address (the sink is
            // a real server here, so it answers) — or fails later at
            // TCP/HTTP if another rule also covers the host.
            *ip == sink && class.1.is_none_or(|got| got == *ip)
        }
        DnsAction::Pass => true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Warm compiled tables ≡ fresh per-fetch walk, over arbitrary
    /// middlebox sets, before and after a `remove_middlebox` bump.
    #[test]
    fn dispatch_tables_match_legacy_walk(
        censors in proptest::collection::vec(censor_spec(), 0..4),
        client_picks in proptest::collection::vec((0..CLIENT_COUNTRIES.len(), 0..3usize), 1..4),
        remove_idx in 0..4usize,
    ) {
        let (mut net, sink) = build_network(&censors);
        let isps = [IspClass::Residential, IspClass::Mobile, IspClass::Academic];
        let clients: Vec<_> = client_picks
            .iter()
            .map(|&(c, i)| net.add_client(country(CLIENT_COUNTRIES[c]), isps[i]))
            .collect();

        // Long-lived sessions with caches off: every fetch exercises the
        // compiled dispatch (pipeline + DNS-verdict memo) rather than the
        // session's DNS/TCP caches, so the comparison isolates the tables.
        let mut warm: Vec<FetchSession> = clients
            .iter()
            .map(|c| FetchSession::with_config(c.clone(), SessionConfig::cold()))
            .collect();
        // Age the tables: two passes over every host fill and then replay
        // the per-host verdict memo.
        let mut rng = SimRng::new(0xD15BA7C4);
        for pass in 0..2u64 {
            for (s, _) in warm.iter_mut().zip(&clients) {
                for host in HOSTS {
                    let req = HttpRequest::get(format!("http://{host}/x.png"));
                    let _ = s.fetch(&mut net, &req, SimTime::from_secs(pass), &mut rng);
                }
            }
        }

        let mut check_all = |net: &mut Network, warm: &mut [FetchSession], at: SimTime| {
            for (s, c) in warm.iter_mut().zip(&clients) {
                for host in HOSTS {
                    let req = HttpRequest::get(format!("http://{host}/x.png"));
                    let warm_out = s.fetch(net, &req, at, &mut rng);
                    let mut fresh =
                        FetchSession::with_config(c.clone(), SessionConfig::cold());
                    let fresh_out = fresh.fetch(net, &req, at, &mut rng);
                    let (wc, fc) = (classify(&warm_out), classify(&fresh_out));
                    prop_assert_eq!(
                        &wc, &fc,
                        "warm dispatch diverged from fresh walk for {} @ {:?}",
                        host, c
                    );
                    let action = legacy_dns_walk(net, c, host);
                    prop_assert!(
                        verdict_consistent(&action, &wc, sink),
                        "verdict {:?} inconsistent with outcome {:?} for {}",
                        action, wc, host
                    );
                }
            }
            Ok(())
        };

        check_all(&mut net, &mut warm, SimTime::from_secs(10))?;

        // Lift one censor (if any are installed): the generation bump
        // must force warm sessions to recompile, and the equivalence must
        // hold against the *new* set.
        let installed: Vec<String> =
            (0..censors.len()).map(|n| format!("censor-{n}")).collect();
        if !installed.is_empty() {
            let name = &installed[remove_idx % installed.len()];
            prop_assert!(net.remove_middlebox(name));
            check_all(&mut net, &mut warm, SimTime::from_secs(20))?;
        }
    }
}
